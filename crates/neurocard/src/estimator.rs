//! The public estimator API: build (or load) once per schema, estimate any query.
//!
//! Since PR 4 the estimator has two lives:
//!
//! * **Training-backed** ([`NeuroCard::build`]): owns the training database and a live
//!   [`Trainer`] (with its sampler worker pool), supports incremental updates and
//!   snapshot ingestion, and can export its state as a [`ModelArtifact`].
//! * **Artifact-backed** ([`NeuroCard::from_artifact`]): reconstructed from a persisted
//!   artifact, no database anywhere in sight.  Estimation is bit-identical to the
//!   estimator that wrote the artifact; training APIs panic with a clear message.
//!
//! [`NeuroCard::train`] is the one-shot "train → artifact" path the serving layer and CI
//! use; [`NeuroCard::core`] hands out the `Send + Sync` estimation engine
//! ([`EstimatorCore`]) that `nc-serve` shares across worker threads.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use nc_nn::ResMade;
use nc_sampler::{BiasedSampler, JoinCounts, JoinSampler, WideLayout};
use nc_schema::{JoinSchema, Query};
use nc_storage::Database;

use crate::artifact::{ArtifactLoadError, ModelArtifact};
use crate::config::NeuroCardConfig;
use crate::core::{derive_query_seed, EstimatorCore};
use crate::encoding::EncodedLayout;
use crate::infer::{EstimateError, ProgressiveSampler, SamplerScratch};
use crate::train::{TrainProgress, Trainer, TrainingSource};

/// Construction and size statistics of a built estimator (the "Size" / timing columns of
/// the paper's tables and Figure 7c).
#[derive(Debug, Clone)]
pub struct EstimatorStats {
    /// Number of scalar model parameters.
    pub num_params: usize,
    /// Model size in bytes (4 bytes per parameter).
    pub model_bytes: usize,
    /// Rows of the augmented full outer join (`|J|`).
    pub full_join_rows: u128,
    /// Wall-clock time spent computing join counts (sampler preparation).
    pub prepare_time: Duration,
    /// Wall-clock time spent sampling training tuples.
    pub sampling_time: Duration,
    /// Wall-clock time spent on gradient computation.
    pub training_time: Duration,
    /// Total training tuples consumed.
    pub tuples_trained: usize,
    /// Training loss of the last mini-batch (nats/tuple).
    pub final_loss: f32,
}

/// Options that deviate from the plain `build` path (ablations and update experiments).
#[derive(Debug, Clone, Default)]
pub struct BuildOptions {
    /// Build dictionaries from this database instead of the sampled one (update
    /// experiments keep the token space fixed across snapshots).
    pub dictionary_db: Option<Arc<Database>>,
    /// Train from the biased IBJS-style sampler instead of the Exact Weight sampler
    /// (ablation Table 5 row A).
    pub biased_sampler: bool,
}

/// What backs the estimator: a live trainer or a loaded artifact.
enum Backend {
    /// Built against a live database; can keep training.
    Training { db: Arc<Database>, trainer: Trainer },
    /// Loaded from a [`ModelArtifact`]; estimation only, shareable across threads.
    Artifact(Arc<EstimatorCore>),
}

/// A trained NeuroCard estimator for one join schema.
pub struct NeuroCard {
    schema: Arc<JoinSchema>,
    encoded: Arc<EncodedLayout>,
    config: NeuroCardConfig,
    full_join_rows: u128,
    stats: EstimatorStats,
    backend: Backend,
}

impl NeuroCard {
    /// Builds (trains) an estimator over `db` with the default options.
    pub fn build(db: Arc<Database>, schema: Arc<JoinSchema>, config: &NeuroCardConfig) -> Self {
        Self::build_with(db, schema, config, BuildOptions::default())
    }

    /// Trains an estimator and exports it as a self-contained [`ModelArtifact`] in one
    /// step — the "train once, serve anywhere" entry point.  Equivalent to
    /// `NeuroCard::build(..).to_artifact()`.
    pub fn train(
        db: Arc<Database>,
        schema: Arc<JoinSchema>,
        config: &NeuroCardConfig,
    ) -> ModelArtifact {
        Self::train_with(db, schema, config, BuildOptions::default())
    }

    /// [`NeuroCard::train`] with explicit [`BuildOptions`].
    pub fn train_with(
        db: Arc<Database>,
        schema: Arc<JoinSchema>,
        config: &NeuroCardConfig,
        options: BuildOptions,
    ) -> ModelArtifact {
        Self::build_with(db, schema, config, options).to_artifact()
    }

    /// Reconstructs an estimation-only `NeuroCard` from a parsed [`ModelArtifact`].
    ///
    /// The returned estimator needs no database and produces **bit-identical** estimates
    /// to the estimator that exported the artifact, for any fixed `(query, seed)`.
    /// Training APIs ([`NeuroCard::update_incremental`], [`NeuroCard::ingest_snapshot`],
    /// [`NeuroCard::database`]) panic on it.
    pub fn from_artifact(artifact: &ModelArtifact) -> Result<Self, ArtifactLoadError> {
        let core = Arc::new(artifact.to_core()?);
        let manifest = artifact.manifest();
        let stats = EstimatorStats {
            num_params: core.model().num_params(),
            model_bytes: core.model().size_bytes(),
            full_join_rows: artifact.full_join_rows(),
            prepare_time: Duration::ZERO,
            sampling_time: Duration::ZERO,
            training_time: Duration::ZERO,
            tuples_trained: manifest.tuples_trained,
            final_loss: manifest.final_loss,
        };
        Ok(NeuroCard {
            schema: core.schema().clone(),
            encoded: core.encoded().clone(),
            config: core.config().clone(),
            full_join_rows: artifact.full_join_rows(),
            stats,
            backend: Backend::Artifact(core),
        })
    }

    /// [`NeuroCard::from_artifact`] straight from container bytes.
    pub fn from_artifact_bytes(bytes: &[u8]) -> Result<Self, ArtifactLoadError> {
        Self::from_artifact(&ModelArtifact::from_bytes(bytes)?)
    }

    /// Exports the current model state as a self-contained [`ModelArtifact`].
    pub fn to_artifact(&self) -> ModelArtifact {
        ModelArtifact::from_parts(
            self.config.clone(),
            self.schema.clone(),
            self.encoded.clone(),
            self.full_join_rows,
            self.model(),
            self.stats.tuples_trained,
            self.stats.final_loss,
        )
    }

    /// The `Send + Sync` estimation engine over the current model state.
    ///
    /// For an artifact-backed estimator this is the shared engine itself (cheap `Arc`
    /// clone).  For a training-backed estimator it is a **snapshot**: the model weights
    /// are copied, so later [`NeuroCard::update_incremental`] calls do not show up in a
    /// core handed out earlier.
    pub fn core(&self) -> Arc<EstimatorCore> {
        match &self.backend {
            Backend::Artifact(core) => core.clone(),
            Backend::Training { trainer, .. } => Arc::new(
                EstimatorCore::new(
                    trainer.model().clone(),
                    self.encoded.clone(),
                    self.schema.clone(),
                    self.config.clone(),
                    self.full_join_rows,
                )
                .expect("a trained estimator's parts are consistent by construction"),
            ),
        }
    }

    /// The trained model backing estimation.
    fn model(&self) -> &ResMade {
        match &self.backend {
            Backend::Training { trainer, .. } => trainer.model(),
            Backend::Artifact(core) => core.model(),
        }
    }

    /// Builds an estimator with explicit [`BuildOptions`].
    pub fn build_with(
        db: Arc<Database>,
        schema: Arc<JoinSchema>,
        config: &NeuroCardConfig,
        options: BuildOptions,
    ) -> Self {
        // nc-lint: allow(wall-clock-in-core) — build-time stat (prepare duration in
        // the returned metadata); estimates remain a pure function of
        // (model, query, seed).
        let prepare_start = Instant::now();
        let dict_db = options.dictionary_db.clone().unwrap_or_else(|| db.clone());
        let layout = if config.model_join_keys {
            WideLayout::new(&dict_db, &schema)
        } else {
            WideLayout::without_join_keys(&dict_db, &schema)
        };
        let encoded = Arc::new(EncodedLayout::build(
            &dict_db,
            &schema,
            layout,
            config.fact_bits,
        ));
        // |J| always comes from the exact join counts of the *sampled* database, even when
        // training data is drawn from the biased sampler (the normalising constant must
        // refer to the actual full join).
        let counts = JoinCounts::compute_shared(&db, &schema);
        let full_join_rows = counts.full_join_rows();
        let source = if options.biased_sampler {
            TrainingSource::Biased(BiasedSampler::new(db.clone(), schema.clone()))
        } else {
            TrainingSource::Unbiased(JoinSampler::with_counts(db.clone(), schema.clone(), counts))
        };
        let prepare_time = prepare_start.elapsed();

        let mut trainer = Trainer::new(db.clone(), encoded.clone(), source, config.clone());
        let progress = trainer.train_tuples(config.training_tuples);

        let stats = EstimatorStats {
            num_params: trainer.model().num_params(),
            model_bytes: trainer.model().size_bytes(),
            full_join_rows,
            prepare_time,
            sampling_time: progress.sampling_time,
            training_time: progress.training_time,
            tuples_trained: trainer.tuples_trained(),
            final_loss: progress.last_loss,
        };

        NeuroCard {
            schema,
            encoded,
            config: config.clone(),
            full_join_rows,
            stats,
            backend: Backend::Training { db, trainer },
        }
    }

    /// Estimates the cardinality of `query` (rows of the inner join of the query's tables
    /// passing all filters), using the configured number of progressive samples.
    pub fn estimate(&self, query: &Query) -> f64 {
        self.estimate_with_samples(query, self.config.progressive_samples)
    }

    /// Estimates with an explicit progressive-sample budget.
    pub fn estimate_with_samples(&self, query: &Query, num_samples: usize) -> f64 {
        let mut rng = self.query_rng(query);
        self.sampler().estimate(query, num_samples, &mut rng)
    }

    /// [`NeuroCard::estimate`], returning an error instead of panicking when the query is
    /// invalid or filters a column the wide layout does not model (e.g. a raw join key
    /// with `model_join_keys = false`).
    pub fn try_estimate(&self, query: &Query) -> Result<f64, EstimateError> {
        self.try_estimate_with_samples(query, self.config.progressive_samples)
    }

    /// [`NeuroCard::estimate_with_samples`] with caller-owned scratch buffers: the
    /// zero-allocation entry point for serving loops that estimate many queries on one
    /// thread.  Identical results to [`NeuroCard::estimate_with_samples`].
    pub fn estimate_with_samples_scratch(
        &self,
        query: &Query,
        num_samples: usize,
        scratch: &mut SamplerScratch,
    ) -> f64 {
        let mut rng = self.query_rng(query);
        self.sampler()
            .estimate_with_scratch(query, num_samples, &mut rng, scratch)
    }

    /// [`NeuroCard::estimate_with_samples`] with a `Result` instead of panics.
    pub fn try_estimate_with_samples(
        &self,
        query: &Query,
        num_samples: usize,
    ) -> Result<f64, EstimateError> {
        let mut rng = self.query_rng(query);
        self.sampler().try_estimate(query, num_samples, &mut rng)
    }

    /// Estimates a batch of independent queries, fanning them out across threads.
    ///
    /// Each worker reuses one [`SamplerScratch`] across its queries, and every query's RNG
    /// is derived purely from `(config.seed, query)` — so the results are **identical** to
    /// calling [`NeuroCard::estimate`] sequentially, regardless of thread count or
    /// scheduling (the `inference_fastpath` integration test pins this).
    pub fn estimate_batch(&self, queries: &[Query]) -> Vec<f64> {
        self.estimate_batch_with_samples(queries, self.config.progressive_samples)
    }

    /// [`NeuroCard::estimate_batch`] with an explicit progressive-sample budget.
    pub fn estimate_batch_with_samples(&self, queries: &[Query], num_samples: usize) -> Vec<f64> {
        if queries.is_empty() {
            return Vec::new();
        }
        let sampler = self.sampler();
        // Per-query seeds are computed up front so worker threads need no access to the
        // estimator itself (the trainer's sampler pool is not shareable across threads).
        let seeds: Vec<u64> = queries.iter().map(|q| self.query_seed(q)).collect();
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(queries.len());
        let mut results = vec![0.0f64; queries.len()];
        if threads <= 1 {
            let mut scratch = SamplerScratch::new();
            for ((query, seed), out) in queries.iter().zip(&seeds).zip(results.iter_mut()) {
                let mut rng = StdRng::seed_from_u64(*seed);
                *out = sampler.estimate_with_scratch(query, num_samples, &mut rng, &mut scratch);
            }
            return results;
        }
        let chunk = queries.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for ((queries, seeds), outs) in queries
                .chunks(chunk)
                .zip(seeds.chunks(chunk))
                .zip(results.chunks_mut(chunk))
            {
                let sampler = &sampler;
                scope.spawn(move || {
                    let mut scratch = SamplerScratch::new();
                    for ((query, seed), out) in queries.iter().zip(seeds).zip(outs.iter_mut()) {
                        let mut rng = StdRng::seed_from_u64(*seed);
                        *out = sampler.estimate_with_scratch(
                            query,
                            num_samples,
                            &mut rng,
                            &mut scratch,
                        );
                    }
                });
            }
        });
        results
    }

    /// Estimates through the pre-fast-path inference code (kept as the determinism
    /// baseline; `figure7d` uses it for the old-vs-new latency comparison).
    pub fn estimate_with_samples_reference(&self, query: &Query, num_samples: usize) -> f64 {
        let mut rng = self.query_rng(query);
        self.sampler()
            .estimate_reference(query, num_samples, &mut rng)
    }

    /// The progressive-sampling engine over the trained model.
    fn sampler(&self) -> ProgressiveSampler<'_> {
        ProgressiveSampler::new(
            self.model(),
            &self.encoded,
            &self.schema,
            self.full_join_rows,
        )
    }

    /// Seed of the per-query RNG stream: a pure function of `(config.seed, query)`.  See
    /// [`crate::core::derive_query_seed`] — the derivation is shared with
    /// [`EstimatorCore`] so artifact-loaded estimators and serving workers consume the
    /// exact same stream.
    ///
    /// Note: PR 3 deliberately changed this derivation from the earlier `seed ^ hash`
    /// (which left structured low-entropy relations between query streams, the same
    /// weakness the pool's seed rework fixed in PR 2), so *absolute* estimates differ
    /// from pre-PR-3 builds for the same `config.seed`.  The inference determinism
    /// contract is about the sampling *algorithm*: both in-tree paths (fast and
    /// reference) are driven from this same derived seed and must agree bit-for-bit.
    pub(crate) fn query_seed(&self, query: &Query) -> u64 {
        derive_query_seed(self.config.seed, query)
    }

    /// Deterministic per-query randomness: the same query always yields the same
    /// estimate for a given model, which makes the experiments reproducible.
    fn query_rng(&self, query: &Query) -> StdRng {
        StdRng::seed_from_u64(self.query_seed(query))
    }

    /// The live trainer, or a panic for artifact-backed estimators (which, by design,
    /// left their training database behind).
    fn trainer_mut(&mut self) -> &mut Trainer {
        match &mut self.backend {
            Backend::Training { trainer, .. } => trainer,
            Backend::Artifact(_) => panic!(
                "this estimator was loaded from a model artifact and cannot train; rebuild \
                 it from a live database with NeuroCard::build"
            ),
        }
    }

    /// Continues training on additional tuples sampled from the *current* database
    /// (incremental update / "fast update" of §7.6).
    ///
    /// Panics on artifact-backed estimators.
    pub fn update_incremental(&mut self, tuples: usize) -> TrainProgress {
        let progress = self.trainer_mut().train_tuples(tuples);
        self.refresh_stats(&progress);
        progress
    }

    /// Ingests a new database snapshot: the sampler and `|J|` are rebuilt over `new_db`,
    /// then `tuples` additional training tuples are streamed (pass 0 to model the "stale"
    /// strategy, a small number for "fast update", or the full budget for "retrain").
    ///
    /// The token space (dictionaries) is kept fixed, so the snapshot must be compatible
    /// with the dictionary database supplied at build time.
    ///
    /// Panics on artifact-backed estimators.
    pub fn ingest_snapshot(&mut self, new_db: Arc<Database>, tuples: usize) -> TrainProgress {
        // Refuse *before* computing join counts or touching |J|: panicking halfway
        // through would leave a caller that catches the panic with a full_join_rows
        // belonging to a database the model never saw.
        assert!(
            self.is_trainable(),
            "this estimator was loaded from a model artifact and cannot train; rebuild \
             it from a live database with NeuroCard::build"
        );
        let counts = JoinCounts::compute_shared(&new_db, &self.schema);
        self.full_join_rows = counts.full_join_rows();
        let schema = self.schema.clone();
        let source =
            TrainingSource::Unbiased(JoinSampler::with_counts(new_db.clone(), schema, counts));
        let trainer = self.trainer_mut();
        trainer.set_source(source);
        let progress = trainer.train_tuples(tuples);
        if let Backend::Training { db, .. } = &mut self.backend {
            *db = new_db;
        }
        self.refresh_stats(&progress);
        progress
    }

    fn refresh_stats(&mut self, progress: &TrainProgress) {
        if let Backend::Training { trainer, .. } = &self.backend {
            self.stats.tuples_trained = trainer.tuples_trained();
        }
        self.stats.full_join_rows = self.full_join_rows;
        if progress.batches > 0 {
            self.stats.final_loss = progress.last_loss;
        }
        self.stats.sampling_time += progress.sampling_time;
        self.stats.training_time += progress.training_time;
    }

    /// Construction statistics.
    pub fn stats(&self) -> &EstimatorStats {
        &self.stats
    }

    /// The estimator's configuration.
    pub fn config(&self) -> &NeuroCardConfig {
        &self.config
    }

    /// The join schema this estimator serves.
    pub fn schema(&self) -> &Arc<JoinSchema> {
        &self.schema
    }

    /// The database currently backing the sampler.
    ///
    /// Panics on artifact-backed estimators — an artifact deliberately carries no
    /// database (use [`NeuroCard::is_trainable`] to check first).
    pub fn database(&self) -> &Arc<Database> {
        match &self.backend {
            Backend::Training { db, .. } => db,
            Backend::Artifact(_) => panic!(
                "this estimator was loaded from a model artifact and has no training database"
            ),
        }
    }

    /// Whether this estimator still owns a live trainer (false once loaded from an
    /// artifact).
    pub fn is_trainable(&self) -> bool {
        matches!(self.backend, Backend::Training { .. })
    }

    /// `|J|`, the size of the augmented full outer join.
    pub fn full_join_rows(&self) -> u128 {
        self.full_join_rows
    }

    /// Model size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.stats.model_bytes
    }

    /// Serialises the model parameters (see [`nc_nn::serialize`]).  For the full
    /// self-contained format use [`NeuroCard::to_artifact`].
    pub fn model_bytes(&self) -> bytes::Bytes {
        nc_nn::serialize::model_to_bytes(self.model())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_schema::{JoinEdge, Predicate};
    use nc_storage::{TableBuilder, Value};

    /// A two-table database with a strong correlation: B rows exist only for even A.x and
    /// their payload equals A.x's parity class.
    fn correlated_db() -> (Arc<Database>, Arc<JoinSchema>) {
        let mut db = Database::new();
        let mut a = TableBuilder::new("A", &["x", "cls"]);
        for i in 0..200i64 {
            a.push_row(vec![Value::Int(i), Value::Int(i % 4)]);
        }
        db.add_table(a.finish());
        let mut b = TableBuilder::new("B", &["x", "tag"]);
        for i in 0..200i64 {
            if i % 2 == 0 {
                for _ in 0..3 {
                    b.push_row(vec![Value::Int(i), Value::Int(i % 4)]);
                }
            }
        }
        db.add_table(b.finish());
        let schema = JoinSchema::new(
            vec!["A".into(), "B".into()],
            vec![JoinEdge::parse("A.x", "B.x")],
            "A",
        )
        .unwrap();
        (Arc::new(db), Arc::new(schema))
    }

    #[test]
    fn estimates_are_in_the_right_ballpark() {
        let (db, schema) = correlated_db();
        let mut config = NeuroCardConfig::tiny();
        config.training_tuples = 6_000;
        let model = NeuroCard::build(db.clone(), schema.clone(), &config);
        assert!(model.stats().num_params > 0);
        assert!(model.size_bytes() > 0);
        assert!(model.full_join_rows() >= 400);

        // Full-join query: A ⋈ B has 100 * 3 = 300 rows.
        let q = Query::join(&["A", "B"]);
        let truth = nc_exec::true_cardinality(&db, &schema, &q) as f64;
        assert_eq!(truth, 300.0);
        let est = model.estimate(&q);
        let qerr = (est / truth).max(truth / est);
        assert!(
            qerr < 3.0,
            "estimate {est} vs truth {truth} (q-error {qerr})"
        );

        // Single-table query with a filter: |σ(cls=1)(A)| = 50.
        let q = Query::join(&["A"]).filter("A", "cls", Predicate::eq(1i64));
        let truth = nc_exec::true_cardinality(&db, &schema, &q) as f64;
        let est = model.estimate(&q);
        let qerr = (est / truth).max(truth / est);
        assert!(
            qerr < 4.0,
            "estimate {est} vs truth {truth} (q-error {qerr})"
        );

        // Deterministic estimates for the same query.
        assert_eq!(model.estimate(&q), model.estimate(&q));
    }

    #[test]
    fn batch_estimates_match_sequential_and_try_estimate_reports_errors() {
        let (db, schema) = correlated_db();
        let config = NeuroCardConfig::tiny().with_training_tuples(1_000);
        let model = NeuroCard::build(db, schema, &config);

        let queries = vec![
            Query::join(&["A", "B"]),
            Query::join(&["A"]).filter("A", "cls", Predicate::eq(1i64)),
            Query::join(&["A", "B"]).filter("B", "tag", Predicate::le(2i64)),
            Query::join(&["B"]),
        ];
        let sequential: Vec<f64> = queries.iter().map(|q| model.estimate(q)).collect();
        let batch = model.estimate_batch(&queries);
        assert_eq!(sequential, batch, "batch API must be bit-identical");

        // try_estimate agrees with estimate on valid queries...
        assert_eq!(model.try_estimate(&queries[0]), Ok(sequential[0]));
        // ...and reports (not panics) filters on unmodelled columns: join keys are left
        // out of the wide layout under the default `model_join_keys = false`.
        let bad = Query::join(&["A", "B"]).filter("A", "x", Predicate::eq(0i64));
        assert_eq!(
            model.try_estimate(&bad),
            Err(crate::infer::EstimateError::UnknownColumn {
                table: "A".into(),
                column: "x".into(),
            })
        );
        // Invalid queries (schema-level) surface as InvalidQuery.
        let invalid = Query::join(&["A"]).filter("B", "tag", Predicate::eq(1i64));
        assert!(matches!(
            model.try_estimate(&invalid),
            Err(crate::infer::EstimateError::InvalidQuery(_))
        ));
        assert!(model.estimate_batch(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown column")]
    fn estimate_still_panics_on_unknown_columns() {
        let (db, schema) = correlated_db();
        let config = NeuroCardConfig::tiny().with_training_tuples(500);
        let model = NeuroCard::build(db, schema, &config);
        model.estimate(&Query::join(&["A", "B"]).filter("A", "x", Predicate::eq(0i64)));
    }

    #[test]
    fn artifact_backed_estimator_is_estimation_only() {
        let (db, schema) = correlated_db();
        let config = NeuroCardConfig::tiny().with_training_tuples(1_000);
        let trained = NeuroCard::build(db.clone(), schema.clone(), &config);
        let artifact = trained.to_artifact();
        let loaded = NeuroCard::from_artifact(&artifact).unwrap();

        assert!(trained.is_trainable());
        assert!(!loaded.is_trainable());
        assert_eq!(loaded.full_join_rows(), trained.full_join_rows());
        assert_eq!(
            loaded.stats().tuples_trained,
            trained.stats().tuples_trained
        );
        assert_eq!(loaded.size_bytes(), trained.size_bytes());
        assert_eq!(loaded.model_bytes(), trained.model_bytes());

        // Estimation parity, including the batch and scratch paths.
        let queries = vec![
            Query::join(&["A", "B"]),
            Query::join(&["A"]).filter("A", "cls", Predicate::eq(1i64)),
        ];
        let mut scratch = SamplerScratch::new();
        for q in &queries {
            assert_eq!(trained.estimate(q).to_bits(), loaded.estimate(q).to_bits());
            assert_eq!(
                trained.estimate(q).to_bits(),
                loaded
                    .estimate_with_samples_scratch(q, config.progressive_samples, &mut scratch)
                    .to_bits()
            );
        }
        assert_eq!(
            trained.estimate_batch(&queries),
            loaded.estimate_batch(&queries)
        );

        // `train` is the one-shot wrapper: same config + db ⇒ same artifact bytes.
        let oneshot = NeuroCard::train(db, schema, &config);
        assert_eq!(oneshot.to_bytes(), artifact.to_bytes());
    }

    #[test]
    #[should_panic(expected = "cannot train")]
    fn artifact_backed_estimator_panics_on_training() {
        let (db, schema) = correlated_db();
        let config = NeuroCardConfig::tiny().with_training_tuples(500);
        let artifact = NeuroCard::train(db, schema, &config);
        let mut loaded = NeuroCard::from_artifact(&artifact).unwrap();
        loaded.update_incremental(10);
    }

    #[test]
    #[should_panic(expected = "no training database")]
    fn artifact_backed_estimator_panics_on_database_access() {
        let (db, schema) = correlated_db();
        let config = NeuroCardConfig::tiny().with_training_tuples(500);
        let artifact = NeuroCard::train(db, schema, &config);
        let loaded = NeuroCard::from_artifact(&artifact).unwrap();
        let _ = loaded.database();
    }

    #[test]
    fn zero_sample_budget_errors_in_try_api_and_clamps_in_infallible_api() {
        let (db, schema) = correlated_db();
        let config = NeuroCardConfig::tiny().with_training_tuples(500);
        let model = NeuroCard::build(db, schema, &config);
        let q = Query::join(&["A"]).filter("A", "cls", Predicate::eq(1i64));
        assert_eq!(
            model.try_estimate_with_samples(&q, 0),
            Err(crate::infer::EstimateError::InvalidSampleCount)
        );
        // Documented infallible fallback: 0 clamps to 1 sample.
        assert_eq!(
            model.estimate_with_samples(&q, 0).to_bits(),
            model.estimate_with_samples(&q, 1).to_bits()
        );
        // Valid budgets agree between the two APIs.
        assert_eq!(
            model.try_estimate_with_samples(&q, 8),
            Ok(model.estimate_with_samples(&q, 8))
        );
    }

    #[test]
    fn unsatisfiable_filters_return_minimum() {
        let (db, schema) = correlated_db();
        let config = NeuroCardConfig::tiny().with_training_tuples(1_000);
        let model = NeuroCard::build(db, schema, &config);
        let q = Query::join(&["A"]).filter("A", "cls", Predicate::eq(999i64));
        assert_eq!(model.estimate(&q), 1.0);
    }

    #[test]
    fn incremental_update_and_snapshot_ingest() {
        let (db, schema) = correlated_db();
        let config = NeuroCardConfig::tiny().with_training_tuples(1_500);
        let mut model = NeuroCard::build_with(
            db.clone(),
            schema.clone(),
            &config,
            BuildOptions {
                dictionary_db: Some(db.clone()),
                biased_sampler: false,
            },
        );
        let before = model.stats().tuples_trained;
        model.update_incremental(500);
        assert_eq!(model.stats().tuples_trained, before + 500);
        // Re-ingesting the same snapshot keeps |J| and allows further training.
        let j = model.full_join_rows();
        model.ingest_snapshot(db.clone(), 200);
        assert_eq!(model.full_join_rows(), j);
        assert_eq!(model.stats().tuples_trained, before + 700);
        assert!(!model.model_bytes().is_empty());
    }

    #[test]
    fn biased_build_option_still_produces_estimates() {
        let (db, schema) = correlated_db();
        let config = NeuroCardConfig::tiny().with_training_tuples(1_000);
        let model = NeuroCard::build_with(
            db.clone(),
            schema.clone(),
            &config,
            BuildOptions {
                dictionary_db: None,
                biased_sampler: true,
            },
        );
        let q = Query::join(&["A", "B"]);
        let est = model.estimate(&q);
        assert!(est.is_finite() && est >= 1.0);
        assert_eq!(model.config().training_tuples, 1_000);
        assert_eq!(model.schema().root(), "A");
        assert_eq!(model.database().num_tables(), 2);
    }
}
