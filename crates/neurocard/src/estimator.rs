//! The public estimator API: build once per schema, estimate any query.

use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use nc_sampler::{BiasedSampler, JoinCounts, JoinSampler, WideLayout};
use nc_schema::{JoinSchema, Query};
use nc_storage::Database;

use crate::config::NeuroCardConfig;
use crate::encoding::EncodedLayout;
use crate::infer::ProgressiveSampler;
use crate::train::{TrainProgress, Trainer, TrainingSource};

/// Construction and size statistics of a built estimator (the "Size" / timing columns of
/// the paper's tables and Figure 7c).
#[derive(Debug, Clone)]
pub struct EstimatorStats {
    /// Number of scalar model parameters.
    pub num_params: usize,
    /// Model size in bytes (4 bytes per parameter).
    pub model_bytes: usize,
    /// Rows of the augmented full outer join (`|J|`).
    pub full_join_rows: u128,
    /// Wall-clock time spent computing join counts (sampler preparation).
    pub prepare_time: Duration,
    /// Wall-clock time spent sampling training tuples.
    pub sampling_time: Duration,
    /// Wall-clock time spent on gradient computation.
    pub training_time: Duration,
    /// Total training tuples consumed.
    pub tuples_trained: usize,
    /// Training loss of the last mini-batch (nats/tuple).
    pub final_loss: f32,
}

/// Options that deviate from the plain `build` path (ablations and update experiments).
#[derive(Debug, Clone, Default)]
pub struct BuildOptions {
    /// Build dictionaries from this database instead of the sampled one (update
    /// experiments keep the token space fixed across snapshots).
    pub dictionary_db: Option<Arc<Database>>,
    /// Train from the biased IBJS-style sampler instead of the Exact Weight sampler
    /// (ablation Table 5 row A).
    pub biased_sampler: bool,
}

/// A trained NeuroCard estimator for one join schema.
pub struct NeuroCard {
    db: Arc<Database>,
    schema: Arc<JoinSchema>,
    encoded: Arc<EncodedLayout>,
    config: NeuroCardConfig,
    trainer: Trainer,
    full_join_rows: u128,
    stats: EstimatorStats,
}

impl NeuroCard {
    /// Builds (trains) an estimator over `db` with the default options.
    pub fn build(db: Arc<Database>, schema: Arc<JoinSchema>, config: &NeuroCardConfig) -> Self {
        Self::build_with(db, schema, config, BuildOptions::default())
    }

    /// Builds an estimator with explicit [`BuildOptions`].
    pub fn build_with(
        db: Arc<Database>,
        schema: Arc<JoinSchema>,
        config: &NeuroCardConfig,
        options: BuildOptions,
    ) -> Self {
        let prepare_start = Instant::now();
        let dict_db = options.dictionary_db.clone().unwrap_or_else(|| db.clone());
        let layout = if config.model_join_keys {
            WideLayout::new(&dict_db, &schema)
        } else {
            WideLayout::without_join_keys(&dict_db, &schema)
        };
        let encoded = Arc::new(EncodedLayout::build(
            &dict_db,
            &schema,
            layout,
            config.fact_bits,
        ));
        // |J| always comes from the exact join counts of the *sampled* database, even when
        // training data is drawn from the biased sampler (the normalising constant must
        // refer to the actual full join).
        let counts = JoinCounts::compute_shared(&db, &schema);
        let full_join_rows = counts.full_join_rows();
        let source = if options.biased_sampler {
            TrainingSource::Biased(BiasedSampler::new(db.clone(), schema.clone()))
        } else {
            TrainingSource::Unbiased(JoinSampler::with_counts(db.clone(), schema.clone(), counts))
        };
        let prepare_time = prepare_start.elapsed();

        let mut trainer = Trainer::new(db.clone(), encoded.clone(), source, config.clone());
        let progress = trainer.train_tuples(config.training_tuples);

        let stats = EstimatorStats {
            num_params: trainer.model().num_params(),
            model_bytes: trainer.model().size_bytes(),
            full_join_rows,
            prepare_time,
            sampling_time: progress.sampling_time,
            training_time: progress.training_time,
            tuples_trained: trainer.tuples_trained(),
            final_loss: progress.last_loss,
        };

        NeuroCard {
            db,
            schema,
            encoded,
            config: config.clone(),
            trainer,
            full_join_rows,
            stats,
        }
    }

    /// Estimates the cardinality of `query` (rows of the inner join of the query's tables
    /// passing all filters), using the configured number of progressive samples.
    pub fn estimate(&self, query: &Query) -> f64 {
        self.estimate_with_samples(query, self.config.progressive_samples)
    }

    /// Estimates with an explicit progressive-sample budget.
    pub fn estimate_with_samples(&self, query: &Query, num_samples: usize) -> f64 {
        let sampler = ProgressiveSampler::new(
            self.trainer.model(),
            &self.encoded,
            &self.schema,
            self.full_join_rows,
        );
        // Deterministic per-query randomness: the same query always yields the same
        // estimate for a given model, which makes the experiments reproducible.
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        query.render().hash(&mut hasher);
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ hasher.finish());
        sampler.estimate(query, num_samples, &mut rng)
    }

    /// Continues training on additional tuples sampled from the *current* database
    /// (incremental update / "fast update" of §7.6).
    pub fn update_incremental(&mut self, tuples: usize) -> TrainProgress {
        let progress = self.trainer.train_tuples(tuples);
        self.refresh_stats(&progress);
        progress
    }

    /// Ingests a new database snapshot: the sampler and `|J|` are rebuilt over `new_db`,
    /// then `tuples` additional training tuples are streamed (pass 0 to model the "stale"
    /// strategy, a small number for "fast update", or the full budget for "retrain").
    ///
    /// The token space (dictionaries) is kept fixed, so the snapshot must be compatible
    /// with the dictionary database supplied at build time.
    pub fn ingest_snapshot(&mut self, new_db: Arc<Database>, tuples: usize) -> TrainProgress {
        self.db = new_db.clone();
        let counts = JoinCounts::compute_shared(&new_db, &self.schema);
        self.full_join_rows = counts.full_join_rows();
        self.trainer
            .set_source(TrainingSource::Unbiased(JoinSampler::with_counts(
                new_db,
                self.schema.clone(),
                counts,
            )));
        let progress = self.trainer.train_tuples(tuples);
        self.refresh_stats(&progress);
        progress
    }

    fn refresh_stats(&mut self, progress: &TrainProgress) {
        self.stats.tuples_trained = self.trainer.tuples_trained();
        self.stats.full_join_rows = self.full_join_rows;
        if progress.batches > 0 {
            self.stats.final_loss = progress.last_loss;
        }
        self.stats.sampling_time += progress.sampling_time;
        self.stats.training_time += progress.training_time;
    }

    /// Construction statistics.
    pub fn stats(&self) -> &EstimatorStats {
        &self.stats
    }

    /// The estimator's configuration.
    pub fn config(&self) -> &NeuroCardConfig {
        &self.config
    }

    /// The join schema this estimator serves.
    pub fn schema(&self) -> &Arc<JoinSchema> {
        &self.schema
    }

    /// The database currently backing the sampler.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// `|J|`, the size of the augmented full outer join.
    pub fn full_join_rows(&self) -> u128 {
        self.full_join_rows
    }

    /// Model size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.stats.model_bytes
    }

    /// Serialises the model parameters (see [`nc_nn::serialize`]).
    pub fn model_bytes(&self) -> bytes::Bytes {
        nc_nn::serialize::model_to_bytes(self.trainer.model())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_schema::{JoinEdge, Predicate};
    use nc_storage::{TableBuilder, Value};

    /// A two-table database with a strong correlation: B rows exist only for even A.x and
    /// their payload equals A.x's parity class.
    fn correlated_db() -> (Arc<Database>, Arc<JoinSchema>) {
        let mut db = Database::new();
        let mut a = TableBuilder::new("A", &["x", "cls"]);
        for i in 0..200i64 {
            a.push_row(vec![Value::Int(i), Value::Int(i % 4)]);
        }
        db.add_table(a.finish());
        let mut b = TableBuilder::new("B", &["x", "tag"]);
        for i in 0..200i64 {
            if i % 2 == 0 {
                for _ in 0..3 {
                    b.push_row(vec![Value::Int(i), Value::Int(i % 4)]);
                }
            }
        }
        db.add_table(b.finish());
        let schema = JoinSchema::new(
            vec!["A".into(), "B".into()],
            vec![JoinEdge::parse("A.x", "B.x")],
            "A",
        )
        .unwrap();
        (Arc::new(db), Arc::new(schema))
    }

    #[test]
    fn estimates_are_in_the_right_ballpark() {
        let (db, schema) = correlated_db();
        let mut config = NeuroCardConfig::tiny();
        config.training_tuples = 6_000;
        let model = NeuroCard::build(db.clone(), schema.clone(), &config);
        assert!(model.stats().num_params > 0);
        assert!(model.size_bytes() > 0);
        assert!(model.full_join_rows() >= 400);

        // Full-join query: A ⋈ B has 100 * 3 = 300 rows.
        let q = Query::join(&["A", "B"]);
        let truth = nc_exec::true_cardinality(&db, &schema, &q) as f64;
        assert_eq!(truth, 300.0);
        let est = model.estimate(&q);
        let qerr = (est / truth).max(truth / est);
        assert!(
            qerr < 3.0,
            "estimate {est} vs truth {truth} (q-error {qerr})"
        );

        // Single-table query with a filter: |σ(cls=1)(A)| = 50.
        let q = Query::join(&["A"]).filter("A", "cls", Predicate::eq(1i64));
        let truth = nc_exec::true_cardinality(&db, &schema, &q) as f64;
        let est = model.estimate(&q);
        let qerr = (est / truth).max(truth / est);
        assert!(
            qerr < 4.0,
            "estimate {est} vs truth {truth} (q-error {qerr})"
        );

        // Deterministic estimates for the same query.
        assert_eq!(model.estimate(&q), model.estimate(&q));
    }

    #[test]
    fn unsatisfiable_filters_return_minimum() {
        let (db, schema) = correlated_db();
        let config = NeuroCardConfig::tiny().with_training_tuples(1_000);
        let model = NeuroCard::build(db, schema, &config);
        let q = Query::join(&["A"]).filter("A", "cls", Predicate::eq(999i64));
        assert_eq!(model.estimate(&q), 1.0);
    }

    #[test]
    fn incremental_update_and_snapshot_ingest() {
        let (db, schema) = correlated_db();
        let config = NeuroCardConfig::tiny().with_training_tuples(1_500);
        let mut model = NeuroCard::build_with(
            db.clone(),
            schema.clone(),
            &config,
            BuildOptions {
                dictionary_db: Some(db.clone()),
                biased_sampler: false,
            },
        );
        let before = model.stats().tuples_trained;
        model.update_incremental(500);
        assert_eq!(model.stats().tuples_trained, before + 500);
        // Re-ingesting the same snapshot keeps |J| and allows further training.
        let j = model.full_join_rows();
        model.ingest_snapshot(db.clone(), 200);
        assert_eq!(model.full_join_rows(), j);
        assert_eq!(model.stats().tuples_trained, before + 700);
        assert!(!model.model_bytes().is_empty());
    }

    #[test]
    fn biased_build_option_still_produces_estimates() {
        let (db, schema) = correlated_db();
        let config = NeuroCardConfig::tiny().with_training_tuples(1_000);
        let model = NeuroCard::build_with(
            db.clone(),
            schema.clone(),
            &config,
            BuildOptions {
                dictionary_db: None,
                biased_sampler: true,
            },
        );
        let q = Query::join(&["A", "B"]);
        let est = model.estimate(&q);
        assert!(est.is_finite() && est >= 1.0);
        assert_eq!(model.config().training_tuples, 1_000);
        assert_eq!(model.schema().root(), "A");
        assert_eq!(model.database().num_tables(), 2);
    }
}
