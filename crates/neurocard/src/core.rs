//! The estimation core: a trained model plus everything inference needs — and nothing
//! training needs.
//!
//! [`EstimatorCore`] is the database-free half of the PR-4 split of `NeuroCard::build`:
//! it owns the trained [`ResMade`], the [`EncodedLayout`] (dictionaries +
//! factorizations), the [`JoinSchema`] and `|J|`.  Unlike the full
//! [`crate::NeuroCard`] — whose training backend holds a sampler worker pool and is
//! therefore not shareable across threads — the core is plain data: `Send + Sync`, so a
//! serving layer can put one behind an `Arc` and estimate from any number of worker
//! threads (see the `nc-serve` crate).
//!
//! **Determinism contract:** for a fixed `(core, query, seed)` every estimate produced
//! here is bit-identical to the corresponding `NeuroCard` method — both funnel into the
//! same [`ProgressiveSampler`] driven by the same per-query SplitMix64-derived RNG
//! stream ([`derive_query_seed`]).

use std::hash::{Hash, Hasher};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use nc_nn::ResMade;
use nc_sampler::derive_stream_seed;
use nc_schema::{JoinSchema, Query};
use nc_storage::binio::{bf16_to_f32, f32_to_bf16};

use crate::config::NeuroCardConfig;
use crate::encoding::EncodedLayout;
use crate::infer::{EstimateError, ProgressiveSampler, SamplerScratch};

/// Which inference tier answers an estimate — the two-tier determinism contract's knob.
///
/// * [`Precision::Exact`] (the default) runs the scalar kernels over full-f32 weights.
///   Estimates are **bit-identical** to `estimate_reference` for a fixed `(model, query,
///   seed)` — the pin every artifact/serving round-trip test relies on.
/// * [`Precision::Fast`] runs the architecture-dispatched SIMD kernels
///   ([`nc_nn::kernel`]) over bf16-quantised weights.  Bit-identity is deliberately
///   relaxed; accuracy is instead gated by the q-error-delta bound `figure7d` asserts in
///   CI.  The per-query RNG stream is shared with the exact tier, so the two tiers are
///   comparable sample-for-sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Bit-reproducible scalar path over exact f32 weights.
    #[default]
    Exact,
    /// SIMD kernels over bf16 weights, gated by the q-error-delta bound.
    Fast,
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Precision::Exact => write!(f, "exact"),
            Precision::Fast => write!(f, "fast"),
        }
    }
}

/// Rounds every parameter of `model` through bf16 (round-to-nearest-even), producing the
/// fast-tier model.
///
/// The round trip is **idempotent** — `quantize(quantize(m)) == quantize(m)` byte-for-byte
/// — so a fast model built on the fly from exact weights is identical to one decoded from
/// an artifact's `weights_bf16` section, and artifacts written before that section existed
/// lose nothing.
pub(crate) fn quantize_model_bf16(model: &ResMade) -> ResMade {
    let mut fast = model.clone();
    for p in fast.params_mut() {
        for v in p.value.data_mut() {
            *v = bf16_to_f32(f32_to_bf16(*v));
        }
    }
    fast
}

/// Seed of the per-query RNG stream: a pure function of `(config.seed, query)`, mixed
/// through the same SplitMix64 finalizer discipline as the sampler pool's worker streams
/// ([`nc_sampler::derive_stream_seed`]), so per-query streams are decorrelated and
/// identical wherever the query runs — sequentially, inside `estimate_batch`, or on a
/// serving thread.
pub(crate) fn derive_query_seed(seed: u64, query: &Query) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    query.render().hash(&mut hasher);
    derive_stream_seed(seed, hasher.finish(), 0)
}

/// The estimation-only engine over a trained model (no training database, no sampler
/// pool; `Send + Sync`).
pub struct EstimatorCore {
    model: ResMade,
    /// bf16-quantised twin of `model`, served by the [`Precision::Fast`] tier.  Built
    /// eagerly (quantisation is one pass over the parameters) so fast-tier requests never
    /// pay a lazy-init synchronisation cost on the hot path.
    fast_model: ResMade,
    encoded: Arc<EncodedLayout>,
    schema: Arc<JoinSchema>,
    config: NeuroCardConfig,
    full_join_rows: u128,
}

impl EstimatorCore {
    /// Assembles a core from its parts, validating that the model's column space matches
    /// the encoded layout (the invariant every inference loop assumes).  The fast-tier
    /// model is derived by quantising `model` through bf16.
    pub fn new(
        model: ResMade,
        encoded: Arc<EncodedLayout>,
        schema: Arc<JoinSchema>,
        config: NeuroCardConfig,
        full_join_rows: u128,
    ) -> Result<Self, String> {
        let fast_model = quantize_model_bf16(&model);
        Self::with_fast_model(model, fast_model, encoded, schema, config, full_join_rows)
    }

    /// [`EstimatorCore::new`] with an explicitly supplied fast-tier model (the artifact
    /// loader passes the decoded `weights_bf16` section here; thanks to bf16 round-trip
    /// idempotence the result is byte-identical to on-the-fly quantisation).
    pub(crate) fn with_fast_model(
        model: ResMade,
        fast_model: ResMade,
        encoded: Arc<EncodedLayout>,
        schema: Arc<JoinSchema>,
        config: NeuroCardConfig,
        full_join_rows: u128,
    ) -> Result<Self, String> {
        let domains = encoded.model_domains();
        for (what, m) in [("model", &model), ("fast model", &fast_model)] {
            if m.num_columns() != domains.len() {
                return Err(format!(
                    "{what} has {} columns but the encoded layout has {}",
                    m.num_columns(),
                    domains.len()
                ));
            }
            for (i, &d) in domains.iter().enumerate() {
                if m.domain(i) != d {
                    return Err(format!(
                        "{what} column {i} has domain {} but the encoded layout says {d}",
                        m.domain(i)
                    ));
                }
            }
        }
        Ok(EstimatorCore {
            model,
            fast_model,
            encoded,
            schema,
            config,
            full_join_rows,
        })
    }

    /// Estimates the cardinality of `query` with the configured sample budget.
    pub fn estimate(&self, query: &Query) -> f64 {
        self.estimate_with_samples(query, self.config.progressive_samples)
    }

    /// Estimates with an explicit progressive-sample budget (0 clamps to 1).
    pub fn estimate_with_samples(&self, query: &Query, num_samples: usize) -> f64 {
        let mut rng = self.query_rng(query);
        self.sampler().estimate(query, num_samples, &mut rng)
    }

    /// Zero-allocation estimation with a caller-owned scratch (0 samples clamp to 1).
    pub fn estimate_with_samples_scratch(
        &self,
        query: &Query,
        num_samples: usize,
        scratch: &mut SamplerScratch,
    ) -> f64 {
        let mut rng = self.query_rng(query);
        self.sampler()
            .estimate_with_scratch(query, num_samples, &mut rng, scratch)
    }

    /// [`EstimatorCore::estimate`] with a `Result` instead of panics.
    pub fn try_estimate(&self, query: &Query) -> Result<f64, EstimateError> {
        self.try_estimate_with_samples(query, self.config.progressive_samples)
    }

    /// [`EstimatorCore::estimate_with_samples`] with a `Result` instead of panics; a zero
    /// sample budget reports [`EstimateError::InvalidSampleCount`].
    pub fn try_estimate_with_samples(
        &self,
        query: &Query,
        num_samples: usize,
    ) -> Result<f64, EstimateError> {
        let mut rng = self.query_rng(query);
        self.sampler().try_estimate(query, num_samples, &mut rng)
    }

    /// Fallible zero-allocation estimation (the serving hot path).
    pub fn try_estimate_with_samples_scratch(
        &self,
        query: &Query,
        num_samples: usize,
        scratch: &mut SamplerScratch,
    ) -> Result<f64, EstimateError> {
        let mut rng = self.query_rng(query);
        self.sampler()
            .try_estimate_with_scratch(query, num_samples, &mut rng, scratch)
    }

    /// [`EstimatorCore::try_estimate_with_samples_scratch`] with the inference tier
    /// chosen per request — the serving layer's entry point for the `Precision` knob.
    ///
    /// Both tiers derive the **same** per-query RNG stream, so an exact and a fast
    /// estimate of one `(query, seed)` walk the same progressive samples and differ only
    /// through kernel reassociation and bf16 weight rounding.
    pub fn try_estimate_with_samples_scratch_precision(
        &self,
        query: &Query,
        num_samples: usize,
        scratch: &mut SamplerScratch,
        precision: Precision,
    ) -> Result<f64, EstimateError> {
        match precision {
            Precision::Exact => self.try_estimate_with_samples_scratch(query, num_samples, scratch),
            Precision::Fast => {
                let mut rng = self.query_rng(query);
                self.sampler_fast()
                    .try_estimate_with_scratch(query, num_samples, &mut rng, scratch)
            }
        }
    }

    /// Infallible [`EstimatorCore::try_estimate_with_samples_scratch_precision`]
    /// (0 samples clamp to 1), for benches and tests.
    pub fn estimate_with_samples_scratch_precision(
        &self,
        query: &Query,
        num_samples: usize,
        scratch: &mut SamplerScratch,
        precision: Precision,
    ) -> f64 {
        self.try_estimate_with_samples_scratch_precision(
            query,
            num_samples.max(1),
            scratch,
            precision,
        )
        .unwrap_or_else(|e| panic!("{e}"))
    }

    /// The deterministic per-query RNG seed (see [`derive_query_seed`]).
    pub fn query_seed(&self, query: &Query) -> u64 {
        derive_query_seed(self.config.seed, query)
    }

    fn query_rng(&self, query: &Query) -> StdRng {
        StdRng::seed_from_u64(self.query_seed(query))
    }

    /// The progressive-sampling engine over the trained model.
    pub(crate) fn sampler(&self) -> ProgressiveSampler<'_> {
        ProgressiveSampler::new(
            &self.model,
            &self.encoded,
            &self.schema,
            self.full_join_rows,
        )
    }

    /// The progressive-sampling engine over the bf16-quantised model with SIMD-dispatched
    /// kernels — the [`Precision::Fast`] tier.
    pub(crate) fn sampler_fast(&self) -> ProgressiveSampler<'_> {
        ProgressiveSampler::new(
            &self.fast_model,
            &self.encoded,
            &self.schema,
            self.full_join_rows,
        )
        .with_fast_kernels(true)
    }

    /// The trained model.
    pub fn model(&self) -> &ResMade {
        &self.model
    }

    /// The bf16-quantised fast-tier model.
    pub fn fast_model(&self) -> &ResMade {
        &self.fast_model
    }

    /// The encoded layout (dictionaries, factorizations, sub-column space).
    pub fn encoded(&self) -> &Arc<EncodedLayout> {
        &self.encoded
    }

    /// The join schema this core serves.
    pub fn schema(&self) -> &Arc<JoinSchema> {
        &self.schema
    }

    /// The estimator configuration the model was trained with.
    pub fn config(&self) -> &NeuroCardConfig {
        &self.config
    }

    /// `|J|`, the size of the augmented full outer join.
    pub fn full_join_rows(&self) -> u128 {
        self.full_join_rows
    }

    /// Model size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.model.size_bytes()
    }
}

// The compile-time guarantee the serving layer relies on.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EstimatorCore>()
};
