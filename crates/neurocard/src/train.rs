//! Maximum-likelihood training of the autoregressive model on streamed join samples
//! (paper §3.2 and §2.2: "repeatedly requesting batches of sampled tuples from the
//! sampler").

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nc_nn::{Adam, AdamConfig, ResMade};
use nc_sampler::{sample_wide_batch_parallel, BiasedSampler, JoinSampler, WideLayout};
use nc_storage::{Database, Value};

use crate::config::NeuroCardConfig;
use crate::encoding::EncodedLayout;

/// Where training tuples come from.
pub enum TrainingSource {
    /// The unbiased Exact Weight sampler (the NeuroCard design).
    Unbiased(JoinSampler),
    /// The intentionally biased IBJS-style sampler (ablation Table 5, row A).
    Biased(BiasedSampler),
}

impl TrainingSource {
    /// Draws `n` wide-layout tuples.
    pub fn sample_batch(
        &self,
        db: &Database,
        layout: &WideLayout,
        n: usize,
        threads: usize,
        seed: u64,
    ) -> Vec<Vec<Value>> {
        match self {
            TrainingSource::Unbiased(sampler) => {
                sample_wide_batch_parallel(sampler, layout, n, threads, seed)
            }
            TrainingSource::Biased(sampler) => {
                let mut rng = StdRng::seed_from_u64(seed);
                let samples = sampler.sample_many(&mut rng, n);
                layout.materialize_batch(db, &samples)
            }
        }
    }

    /// `|J|` if known (the biased sampler has no principled normalising constant, so the
    /// caller must compute it separately via [`nc_sampler::JoinCounts`]).
    pub fn full_join_rows(&self) -> Option<u128> {
        match self {
            TrainingSource::Unbiased(s) => Some(s.full_join_rows()),
            TrainingSource::Biased(_) => None,
        }
    }
}

/// Progress statistics of a training run.
#[derive(Debug, Clone)]
pub struct TrainProgress {
    /// Tuples consumed by this call.
    pub tuples: usize,
    /// Mini-batches processed.
    pub batches: usize,
    /// Mean negative log-likelihood (nats/tuple) of the first processed batch.
    pub first_loss: f32,
    /// Mean negative log-likelihood of the last processed batch.
    pub last_loss: f32,
    /// Wall-clock time spent sampling training data.
    pub sampling_time: Duration,
    /// Wall-clock time spent in forward/backward/optimizer work.
    pub training_time: Duration,
}

/// Streams batches from a [`TrainingSource`] into a [`ResMade`] model.
pub struct Trainer {
    db: Arc<Database>,
    encoded: Arc<EncodedLayout>,
    source: TrainingSource,
    model: ResMade,
    optimizer: Adam,
    rng: StdRng,
    config: NeuroCardConfig,
    tuples_trained: usize,
    batch_seed: u64,
}

impl Trainer {
    /// Creates a trainer with a freshly initialised model.
    pub fn new(
        db: Arc<Database>,
        encoded: Arc<EncodedLayout>,
        source: TrainingSource,
        config: NeuroCardConfig,
    ) -> Self {
        let model = ResMade::new(nc_nn::MadeConfig {
            domains: encoded.model_domains(),
            d_emb: config.d_emb,
            d_hidden: config.d_hidden,
            num_blocks: config.num_blocks,
            seed: config.seed,
        });
        let optimizer = Adam::for_params(
            AdamConfig {
                lr: config.learning_rate,
                ..Default::default()
            },
            &model.params(),
        );
        let rng = StdRng::seed_from_u64(config.seed ^ 0x7261_696E);
        Trainer {
            db,
            encoded,
            source,
            model,
            optimizer,
            rng,
            batch_seed: config.seed,
            config,
            tuples_trained: 0,
        }
    }

    /// The model being trained.
    pub fn model(&self) -> &ResMade {
        &self.model
    }

    /// Total number of tuples consumed so far.
    pub fn tuples_trained(&self) -> usize {
        self.tuples_trained
    }

    /// Consumes the trainer and returns the trained model.
    pub fn into_model(self) -> ResMade {
        self.model
    }

    /// The training source.
    pub fn source(&self) -> &TrainingSource {
        &self.source
    }

    /// Replaces the training source (used by the update strategies of §7.6: after a new
    /// partition is ingested, fresh samples must come from the new snapshot).
    pub fn set_source(&mut self, source: TrainingSource) {
        self.source = source;
    }

    /// Streams `tuples` training tuples through the model (maximum-likelihood steps with
    /// wildcard skipping) and returns progress statistics.
    pub fn train_tuples(&mut self, tuples: usize) -> TrainProgress {
        let batch_size = self.config.batch_size.max(1);
        let mut remaining = tuples;
        let mut batches = 0usize;
        let mut first_loss = f32::NAN;
        let mut last_loss = f32::NAN;
        let mut sampling_time = Duration::ZERO;
        let mut training_time = Duration::ZERO;

        while remaining > 0 {
            let n = remaining.min(batch_size);
            remaining -= n;
            self.batch_seed = self.batch_seed.wrapping_add(0x9E37_79B9_7F4A_7C15);

            let t0 = Instant::now();
            let wide_rows = self.source.sample_batch(
                &self.db,
                self.encoded.layout(),
                n,
                self.config.sampler_threads,
                self.batch_seed,
            );
            sampling_time += t0.elapsed();

            let t1 = Instant::now();
            let targets = self.encoded.encode_batch(&wide_rows);
            // Wildcard skipping: most batches use the varied-rate scheme (covering heavily
            // masked inputs, which is what low-filter queries condition on at inference
            // time); the rest use the configured fixed rate so lightly-masked inputs stay
            // well represented too.
            let inputs = if self.rng.random::<f32>() < 0.75 {
                self.model
                    .apply_wildcard_skipping_varied(&targets, &mut self.rng)
            } else {
                self.model.apply_wildcard_skipping(
                    &targets,
                    self.config.wildcard_skip_prob,
                    &mut self.rng,
                )
            };
            let loss = self.model.forward_backward(&inputs, &targets);
            self.optimizer.step(&mut self.model.params_mut());
            training_time += t1.elapsed();

            if batches == 0 {
                first_loss = loss;
            }
            last_loss = loss;
            batches += 1;
            self.tuples_trained += n;
        }

        TrainProgress {
            tuples,
            batches,
            first_loss,
            last_loss,
            sampling_time,
            training_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_schema::{JoinEdge, JoinSchema};
    use nc_storage::TableBuilder;

    fn tiny() -> (Arc<Database>, Arc<JoinSchema>) {
        let mut db = Database::new();
        let mut a = TableBuilder::new("A", &["x", "c"]);
        for i in 0..60i64 {
            a.push_row(vec![Value::Int(i % 6), Value::Int(i % 3)]);
        }
        db.add_table(a.finish());
        let mut b = TableBuilder::new("B", &["x", "d"]);
        for i in 0..90i64 {
            b.push_row(vec![Value::Int(i % 6), Value::Int(i % 4)]);
        }
        db.add_table(b.finish());
        let schema = JoinSchema::new(
            vec!["A".into(), "B".into()],
            vec![JoinEdge::parse("A.x", "B.x")],
            "A",
        )
        .unwrap();
        (Arc::new(db), Arc::new(schema))
    }

    fn encoded(db: &Arc<Database>, schema: &Arc<JoinSchema>) -> Arc<EncodedLayout> {
        let layout = WideLayout::new(db, schema);
        Arc::new(EncodedLayout::build(db, schema, layout, Some(8)))
    }

    #[test]
    fn training_loss_decreases() {
        let (db, schema) = tiny();
        let enc = encoded(&db, &schema);
        let sampler = JoinSampler::new(db.clone(), schema.clone());
        let config = NeuroCardConfig::tiny();
        let mut trainer = Trainer::new(db.clone(), enc, TrainingSource::Unbiased(sampler), config);
        let progress = trainer.train_tuples(2_000);
        assert_eq!(progress.tuples, 2_000);
        assert!(progress.batches >= 2_000 / 64);
        assert!(progress.last_loss.is_finite());
        assert!(
            progress.last_loss < progress.first_loss,
            "loss should decrease: {} -> {}",
            progress.first_loss,
            progress.last_loss
        );
        assert_eq!(trainer.tuples_trained(), 2_000);
        assert!(trainer.source().full_join_rows().is_some());
        let model = trainer.into_model();
        assert!(model.num_params() > 0);
    }

    #[test]
    fn biased_source_also_trains() {
        let (db, schema) = tiny();
        let enc = encoded(&db, &schema);
        let biased = BiasedSampler::new(db.clone(), schema.clone());
        let mut trainer = Trainer::new(
            db.clone(),
            enc,
            TrainingSource::Biased(biased),
            NeuroCardConfig::tiny(),
        );
        assert!(trainer.source().full_join_rows().is_none());
        let progress = trainer.train_tuples(500);
        assert!(progress.last_loss.is_finite());
        // Swapping the source keeps the model.
        let unbiased = JoinSampler::new(db.clone(), schema.clone());
        trainer.set_source(TrainingSource::Unbiased(unbiased));
        let p2 = trainer.train_tuples(200);
        assert!(p2.last_loss.is_finite());
        assert_eq!(trainer.tuples_trained(), 700);
    }
}
