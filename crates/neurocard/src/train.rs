//! Maximum-likelihood training of the autoregressive model on streamed join samples
//! (paper §3.2 and §2.2: "repeatedly requesting batches of sampled tuples from the
//! sampler").
//!
//! Training is pipelined (paper §4.1, Figure 7b): a persistent [`SamplerPool`] samples
//! *and encodes* batch `k+1` on its worker threads while the trainer thread runs
//! forward/backward on batch `k`.  The sample stream is a pure function of
//! `(seed, sampler_threads)` — the prefetch depth changes only wall-clock overlap, never
//! results (see [`nc_sampler::pool`] for the determinism contract).

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nc_nn::{Adam, AdamConfig, ResMade};
use nc_sampler::{
    derive_stream_seed, BatchEncoder, BatchTicket, BiasedSampler, JoinSampler, SamplerPool,
};
use nc_storage::Database;

use crate::config::NeuroCardConfig;
use crate::encoding::EncodedLayout;

/// Where training tuples come from.
pub enum TrainingSource {
    /// The unbiased Exact Weight sampler (the NeuroCard design).
    Unbiased(JoinSampler),
    /// The intentionally biased IBJS-style sampler (ablation Table 5, row A).
    Biased(BiasedSampler),
}

impl TrainingSource {
    /// `|J|` if known (the biased sampler has no principled normalising constant, so the
    /// caller must compute it separately via [`nc_sampler::JoinCounts`]).
    pub fn full_join_rows(&self) -> Option<u128> {
        match self {
            TrainingSource::Unbiased(s) => Some(s.full_join_rows()),
            TrainingSource::Biased(_) => None,
        }
    }
}

/// Progress statistics of a training run.
///
/// When a call trains zero batches (`train_tuples(0)`), `batches == 0` and both losses
/// are `0.0` — callers must check `batches` before interpreting the losses.
#[derive(Debug, Clone)]
pub struct TrainProgress {
    /// Tuples consumed by this call.
    pub tuples: usize,
    /// Mini-batches processed.
    pub batches: usize,
    /// Mean negative log-likelihood (nats/tuple) of the first processed batch; `0.0` if
    /// no batch ran.
    pub first_loss: f32,
    /// Mean negative log-likelihood of the last processed batch; `0.0` if no batch ran.
    pub last_loss: f32,
    /// Wall-clock time the trainer thread spent waiting on sampled-and-encoded batches.
    /// With prefetching this is only the *stall* time not hidden behind compute, so
    /// `sampling_time + training_time` is the pipeline's critical path, not the total
    /// sampling work.
    pub sampling_time: Duration,
    /// Wall-clock time spent in forward/backward/optimizer work.
    pub training_time: Duration,
}

impl TrainProgress {
    fn empty(tuples: usize) -> Self {
        TrainProgress {
            tuples,
            batches: 0,
            first_loss: 0.0,
            last_loss: 0.0,
            sampling_time: Duration::ZERO,
            training_time: Duration::ZERO,
        }
    }
}

/// Streams batches from a [`TrainingSource`] into a [`ResMade`] model.
pub struct Trainer {
    db: Arc<Database>,
    encoded: Arc<EncodedLayout>,
    source: TrainingSource,
    model: ResMade,
    optimizer: Adam,
    rng: StdRng,
    config: NeuroCardConfig,
    tuples_trained: usize,
    /// Monotonic batch index; together with `config.seed` it determines every batch's
    /// RNG streams, across `train_tuples` calls and source swaps.
    batch_counter: u64,
    /// Persistent sampling workers (unbiased sources only; the biased ablation sampler
    /// stays on the serial path).
    pool: Option<SamplerPool>,
}

impl Trainer {
    /// Creates a trainer with a freshly initialised model.
    pub fn new(
        db: Arc<Database>,
        encoded: Arc<EncodedLayout>,
        source: TrainingSource,
        config: NeuroCardConfig,
    ) -> Self {
        let model = ResMade::new(nc_nn::MadeConfig {
            domains: encoded.model_domains(),
            d_emb: config.d_emb,
            d_hidden: config.d_hidden,
            num_blocks: config.num_blocks,
            seed: config.seed,
        });
        let optimizer = Adam::for_params(
            AdamConfig {
                lr: config.learning_rate,
                ..Default::default()
            },
            &model.params(),
        );
        let rng = StdRng::seed_from_u64(config.seed ^ 0x7261_696E);
        let mut trainer = Trainer {
            db,
            encoded,
            source,
            model,
            optimizer,
            rng,
            config,
            tuples_trained: 0,
            batch_counter: 0,
            pool: None,
        };
        trainer.pool = trainer.make_pool();
        trainer
    }

    /// Builds the persistent sampler pool for the current source, with token encoding
    /// moved behind the pool boundary so it overlaps the trainer's compute.
    fn make_pool(&self) -> Option<SamplerPool> {
        match &self.source {
            TrainingSource::Unbiased(sampler) => {
                let encoded = self.encoded.clone();
                let encoder: BatchEncoder = Arc::new(move |rows| encoded.encode_batch(rows));
                Some(SamplerPool::new(
                    Arc::new(sampler.clone()),
                    Arc::new(self.encoded.layout().clone()),
                    self.config.sampler_threads,
                    self.config.seed,
                    Some(encoder),
                ))
            }
            TrainingSource::Biased(_) => None,
        }
    }

    /// The model being trained.
    pub fn model(&self) -> &ResMade {
        &self.model
    }

    /// Total number of tuples consumed so far.
    pub fn tuples_trained(&self) -> usize {
        self.tuples_trained
    }

    /// Consumes the trainer and returns the trained model.
    pub fn into_model(self) -> ResMade {
        self.model
    }

    /// The training source.
    pub fn source(&self) -> &TrainingSource {
        &self.source
    }

    /// Replaces the training source (used by the update strategies of §7.6: after a new
    /// partition is ingested, fresh samples must come from the new snapshot).  The worker
    /// pool is rebuilt over the new source; the batch counter keeps advancing, so streams
    /// never repeat across the swap.
    pub fn set_source(&mut self, source: TrainingSource) {
        // Drop the old pool before building the new one so its workers exit first.
        self.pool = None;
        self.source = source;
        self.pool = self.make_pool();
    }

    /// Streams `tuples` training tuples through the model (maximum-likelihood steps with
    /// wildcard skipping) and returns progress statistics.
    ///
    /// With an unbiased source, sampling and encoding run on the persistent worker pool
    /// with `config.prefetch_depth` batches kept in flight ahead of the one being trained
    /// on; the biased ablation source samples serially on the trainer thread.
    pub fn train_tuples(&mut self, tuples: usize) -> TrainProgress {
        let mut progress = TrainProgress::empty(tuples);
        if tuples == 0 {
            return progress;
        }
        // The per-batch sizes, planned up front so tickets can be submitted ahead.
        let batch_size = self.config.batch_size.max(1);
        let full = tuples / batch_size;
        let mut sizes = vec![batch_size; full];
        if tuples % batch_size > 0 {
            sizes.push(tuples % batch_size);
        }
        if self.pool.is_some() {
            self.train_pipelined(&sizes, &mut progress);
        } else {
            self.train_serial(&sizes, &mut progress);
        }
        progress
    }

    /// Pipelined path: the pool samples and encodes up to `prefetch_depth + 1` batches
    /// while the trainer thread consumes them in submission order.
    fn train_pipelined(&mut self, sizes: &[usize], progress: &mut TrainProgress) {
        let depth = self.config.prefetch_depth;
        let mut pending: VecDeque<BatchTicket> = VecDeque::new();
        let mut next = 0usize;
        for &n in sizes {
            while pending.len() <= depth && next < sizes.len() {
                let pool = self.pool.as_ref().expect("pipelined path has a pool");
                pending.push_back(pool.submit_indexed(self.batch_counter, sizes[next]));
                self.batch_counter += 1;
                next += 1;
            }
            let ticket = pending.pop_front().expect("a ticket is always in flight");
            // nc-lint: allow(wall-clock-in-core) — phase timing for TrainProgress
            // only; the elapsed values never feed RNG streams, weights or estimates.
            let t0 = Instant::now();
            let targets = ticket.wait().into_encoded();
            progress.sampling_time += t0.elapsed();

            // nc-lint: allow(wall-clock-in-core) — same: training-phase stopwatch.
            let t1 = Instant::now();
            let loss = self.train_step(&targets);
            progress.training_time += t1.elapsed();
            self.record_batch(progress, loss, n);
        }
    }

    /// Serial path (biased ablation source only — unbiased sources always train through
    /// the pool): sample, encode and train strictly alternating on the trainer thread.
    fn train_serial(&mut self, sizes: &[usize], progress: &mut TrainProgress) {
        for &n in sizes {
            let seed = derive_stream_seed(self.config.seed, self.batch_counter, 0);
            self.batch_counter += 1;

            // nc-lint: allow(wall-clock-in-core) — sampling-phase stopwatch for
            // TrainProgress; never feeds RNG streams, weights or estimates.
            let t0 = Instant::now();
            let TrainingSource::Biased(sampler) = &self.source else {
                unreachable!("unbiased sources train on the pool path")
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let samples = sampler.sample_many(&mut rng, n);
            let wide_rows = self.encoded.layout().materialize_batch(&self.db, &samples);
            let targets = self.encoded.encode_batch(&wide_rows);
            progress.sampling_time += t0.elapsed();

            // nc-lint: allow(wall-clock-in-core) — same: training-phase stopwatch.
            let t1 = Instant::now();
            let loss = self.train_step(&targets);
            progress.training_time += t1.elapsed();
            self.record_batch(progress, loss, n);
        }
    }

    /// One maximum-likelihood step over an encoded batch.
    fn train_step(&mut self, targets: &[Vec<u32>]) -> f32 {
        // Wildcard skipping: most batches use the varied-rate scheme (covering heavily
        // masked inputs, which is what low-filter queries condition on at inference
        // time); the rest use the configured fixed rate so lightly-masked inputs stay
        // well represented too.
        let inputs = if self.rng.random::<f32>() < 0.75 {
            self.model
                .apply_wildcard_skipping_varied(targets, &mut self.rng)
        } else {
            self.model.apply_wildcard_skipping(
                targets,
                self.config.wildcard_skip_prob,
                &mut self.rng,
            )
        };
        let loss = self.model.forward_backward(&inputs, targets);
        self.optimizer.step(&mut self.model.params_mut());
        loss
    }

    fn record_batch(&mut self, progress: &mut TrainProgress, loss: f32, n: usize) {
        if progress.batches == 0 {
            progress.first_loss = loss;
        }
        progress.last_loss = loss;
        progress.batches += 1;
        self.tuples_trained += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_sampler::WideLayout;
    use nc_schema::{JoinEdge, JoinSchema};
    use nc_storage::{TableBuilder, Value};

    fn tiny() -> (Arc<Database>, Arc<JoinSchema>) {
        let mut db = Database::new();
        let mut a = TableBuilder::new("A", &["x", "c"]);
        for i in 0..60i64 {
            a.push_row(vec![Value::Int(i % 6), Value::Int(i % 3)]);
        }
        db.add_table(a.finish());
        let mut b = TableBuilder::new("B", &["x", "d"]);
        for i in 0..90i64 {
            b.push_row(vec![Value::Int(i % 6), Value::Int(i % 4)]);
        }
        db.add_table(b.finish());
        let schema = JoinSchema::new(
            vec!["A".into(), "B".into()],
            vec![JoinEdge::parse("A.x", "B.x")],
            "A",
        )
        .unwrap();
        (Arc::new(db), Arc::new(schema))
    }

    fn encoded(db: &Arc<Database>, schema: &Arc<JoinSchema>) -> Arc<EncodedLayout> {
        let layout = WideLayout::new(db, schema);
        Arc::new(EncodedLayout::build(db, schema, layout, Some(8)))
    }

    #[test]
    fn training_loss_decreases() {
        let (db, schema) = tiny();
        let enc = encoded(&db, &schema);
        let sampler = JoinSampler::new(db.clone(), schema.clone());
        let config = NeuroCardConfig::tiny();
        let mut trainer = Trainer::new(db.clone(), enc, TrainingSource::Unbiased(sampler), config);
        let progress = trainer.train_tuples(2_000);
        assert_eq!(progress.tuples, 2_000);
        assert!(progress.batches >= 2_000 / 64);
        assert!(progress.last_loss.is_finite());
        assert!(
            progress.last_loss < progress.first_loss,
            "loss should decrease: {} -> {}",
            progress.first_loss,
            progress.last_loss
        );
        assert_eq!(trainer.tuples_trained(), 2_000);
        assert!(trainer.source().full_join_rows().is_some());
        let model = trainer.into_model();
        assert!(model.num_params() > 0);
    }

    #[test]
    fn biased_source_also_trains() {
        let (db, schema) = tiny();
        let enc = encoded(&db, &schema);
        let biased = BiasedSampler::new(db.clone(), schema.clone());
        let mut trainer = Trainer::new(
            db.clone(),
            enc,
            TrainingSource::Biased(biased),
            NeuroCardConfig::tiny(),
        );
        assert!(trainer.source().full_join_rows().is_none());
        let progress = trainer.train_tuples(500);
        assert!(progress.last_loss.is_finite());
        // Swapping the source keeps the model.
        let unbiased = JoinSampler::new(db.clone(), schema.clone());
        trainer.set_source(TrainingSource::Unbiased(unbiased));
        let p2 = trainer.train_tuples(200);
        assert!(p2.last_loss.is_finite());
        assert_eq!(trainer.tuples_trained(), 700);
    }

    #[test]
    fn zero_tuples_returns_zeroed_progress() {
        let (db, schema) = tiny();
        let enc = encoded(&db, &schema);
        let sampler = JoinSampler::new(db.clone(), schema.clone());
        let mut trainer = Trainer::new(
            db.clone(),
            enc,
            TrainingSource::Unbiased(sampler),
            NeuroCardConfig::tiny(),
        );
        let progress = trainer.train_tuples(0);
        assert_eq!(progress.tuples, 0);
        assert_eq!(progress.batches, 0);
        assert_eq!(progress.first_loss, 0.0);
        assert_eq!(progress.last_loss, 0.0);
        assert_eq!(progress.sampling_time, Duration::ZERO);
        assert_eq!(progress.training_time, Duration::ZERO);
        assert_eq!(trainer.tuples_trained(), 0);
        // A later real call is unaffected.
        let p = trainer.train_tuples(128);
        assert_eq!(p.batches, 2);
        assert!(p.first_loss.is_finite() && p.first_loss != 0.0);
    }

    fn train_model_bytes(threads: usize, depth: usize, tuples: usize) -> bytes::Bytes {
        let (db, schema) = tiny();
        let enc = encoded(&db, &schema);
        let sampler = JoinSampler::new(db.clone(), schema.clone());
        let mut config = NeuroCardConfig::tiny();
        config.sampler_threads = threads;
        config.prefetch_depth = depth;
        let mut trainer = Trainer::new(db, enc, TrainingSource::Unbiased(sampler), config);
        trainer.train_tuples(tuples);
        nc_nn::serialize::model_to_bytes(&trainer.into_model())
    }

    #[test]
    fn prefetch_depth_never_changes_the_trained_model() {
        // The determinism contract: (seed, threads) fixes the sample stream, so training
        // with prefetch depths 0, 1 and 2 must produce bit-identical models.
        let base = train_model_bytes(2, 0, 600);
        for depth in [1usize, 2, 5] {
            assert_eq!(
                base,
                train_model_bytes(2, depth, 600),
                "prefetch depth {depth} changed the trained model"
            );
        }
    }

    #[test]
    fn thread_count_is_part_of_the_stream_contract() {
        // Different worker counts chunk batches differently, so they are *allowed* to
        // produce different streams — and in practice do.
        let one = train_model_bytes(1, 1, 600);
        let two = train_model_bytes(2, 1, 600);
        assert_ne!(one, two);
        // But each is reproducible.
        assert_eq!(two, train_model_bytes(2, 1, 600));
    }

    #[test]
    fn multiple_train_calls_continue_the_stream() {
        // 600 tuples in one call == 300 + 300 in two calls: the batch counter persists.
        let (db, schema) = tiny();
        let enc = encoded(&db, &schema);
        let mk = |db: &Arc<Database>, schema: &Arc<JoinSchema>| {
            Trainer::new(
                db.clone(),
                enc.clone(),
                TrainingSource::Unbiased(JoinSampler::new(db.clone(), schema.clone())),
                NeuroCardConfig::tiny(),
            )
        };
        let mut once = mk(&db, &schema);
        once.train_tuples(640);
        let mut twice = mk(&db, &schema);
        twice.train_tuples(320);
        twice.train_tuples(320);
        assert_eq!(
            nc_nn::serialize::model_to_bytes(once.model()),
            nc_nn::serialize::model_to_bytes(twice.model())
        );
    }
}
