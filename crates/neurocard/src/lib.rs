//! # neurocard
//!
//! NeuroCard (Yang et al., VLDB 2020): **one cardinality estimator for all tables**.
//!
//! NeuroCard learns the joint distribution of the *full outer join* of every table in a
//! schema inside a single deep autoregressive model and answers cardinality queries over
//! any subset of those tables.  No independence assumption is made anywhere — neither
//! across columns nor across tables.  The three ingredients (paper §2.1):
//!
//! 1. **Unbiased join sampling** (crate `nc-sampler`): training tuples are i.i.d. uniform
//!    samples of the full join obtained via Exact Weight join counts, so the join is never
//!    materialised.
//! 2. **Lossless column factorization** ([`factorization`], §5): high-cardinality columns
//!    are split into sub-columns of a few bits each, shrinking the embedding tables by
//!    orders of magnitude while losing no information (the AR model learns the dependence
//!    between sub-columns).
//! 3. **Schema-subsetting inference** ([`infer`], §6): progressive sampling over the model,
//!    with indicator-column constraints for joined tables and fanout downscaling for
//!    omitted tables.
//!
//! The top-level API is [`NeuroCard`]: build it from a database + join schema with
//! [`NeuroCard::build`], then call [`NeuroCard::estimate`] for any [`nc_schema::Query`].
//!
//! ```no_run
//! use std::sync::Arc;
//! use nc_datagen::{job_light_database, job_light_schema, DataGenConfig};
//! use nc_schema::{Predicate, Query};
//! use neurocard::{NeuroCard, NeuroCardConfig};
//!
//! let db = Arc::new(job_light_database(&DataGenConfig::default()));
//! let schema = Arc::new(job_light_schema());
//! let model = NeuroCard::build(db, schema, &NeuroCardConfig::default());
//! let q = Query::join(&["title", "cast_info"])
//!     .filter("title", "production_year", Predicate::ge(2000i64));
//! let cardinality = model.estimate(&q);
//! println!("estimated rows: {cardinality}");
//! ```

pub mod artifact;
pub mod config;
pub mod core;
pub mod encoding;
pub mod estimator;
pub mod factorization;
pub mod infer;
pub mod train;

pub use artifact::{
    schema_fingerprint, ArtifactLoadError, ArtifactManifest, ModelArtifact, PromotionRecord,
    MODEL_ARTIFACT_VERSION,
};
pub use config::NeuroCardConfig;
pub use core::{EstimatorCore, Precision};
pub use encoding::EncodedLayout;
pub use estimator::{EstimatorStats, NeuroCard};
pub use factorization::Factorization;
pub use infer::{EstimateError, ProgressiveSampler, SamplerScratch};
pub use train::{TrainProgress, Trainer, TrainingSource};
