//! Lossless column factorization (paper §5).
//!
//! An autoregressive model stores one embedding vector per distinct value, so a column with
//! hundreds of thousands of distinct values would blow up the model size.  Factorization
//! slices the *dictionary code* of a value into groups of `N` bits — most-significant group
//! first — and treats each group as a separate sub-column.  Because the downstream density
//! model is autoregressive, `p(col) = p(sub₁)·p(sub₂|sub₁)·…` loses no information, hence
//! "lossless".
//!
//! Filters on the original column must be translated into sub-column constraints during
//! progressive sampling.  For an inclusive code range `[lo, hi]` the translation is the
//! classic digit-by-digit range walk (the same logic as range scans on bit-sliced indexes):
//! while the already-drawn high-order digits still equal `lo`'s (resp. `hi`'s) prefix, the
//! next digit is bounded below (resp. above); as soon as the prefix falls strictly inside,
//! the remaining digits are unconstrained.

use serde::{Deserialize, Serialize};

/// How one original column is split into sub-columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Factorization {
    /// Domain size of the original column (dictionary codes are `0..domain`).
    pub domain: u32,
    /// Bits per sub-column.
    pub bits: u32,
    /// Domain of each sub-column, most-significant first.
    pub subdomains: Vec<u32>,
}

impl Factorization {
    /// Splits a column of `domain` distinct codes into sub-columns of at most `bits` bits.
    ///
    /// A domain that already fits in `bits` bits yields a single sub-column equal to the
    /// original (i.e. factorization is a no-op).
    pub fn new(domain: u32, bits: u32) -> Self {
        assert!(domain >= 1, "domain must be at least 1");
        assert!(
            (1..=31).contains(&bits),
            "factorization bits must be in 1..=31"
        );
        let needed_bits = 32 - (domain - 1).max(1).leading_zeros();
        let k = needed_bits.div_ceil(bits).max(1) as usize;
        // Most-significant sub-column gets the leftover high bits; the rest are full width.
        let mut subdomains = Vec::with_capacity(k);
        if k == 1 {
            subdomains.push(domain);
        } else {
            let low_bits = bits * (k as u32 - 1);
            let high_domain = (domain - 1) >> low_bits;
            subdomains.push(high_domain + 1);
            for _ in 1..k {
                subdomains.push(1u32 << bits);
            }
        }
        Factorization {
            domain,
            bits,
            subdomains,
        }
    }

    /// A single-sub-column spec (used when factorization is disabled).
    pub fn identity(domain: u32) -> Self {
        Factorization {
            domain,
            bits: 31,
            subdomains: vec![domain],
        }
    }

    /// Number of sub-columns.
    pub fn num_subcolumns(&self) -> usize {
        self.subdomains.len()
    }

    /// Whether the column is actually split (more than one sub-column).
    pub fn is_factorized(&self) -> bool {
        self.subdomains.len() > 1
    }

    /// Splits an original code into its sub-column digits (most-significant first).
    pub fn split(&self, code: u32) -> Vec<u32> {
        debug_assert!(
            code < self.domain,
            "code {code} outside domain {}",
            self.domain
        );
        let k = self.subdomains.len();
        if k == 1 {
            return vec![code];
        }
        let mut out = vec![0u32; k];
        let mut rest = code;
        for i in (1..k).rev() {
            out[i] = rest & ((1 << self.bits) - 1);
            rest >>= self.bits;
        }
        out[0] = rest;
        out
    }

    /// Recombines sub-column digits into the original code.
    pub fn combine(&self, digits: &[u32]) -> u32 {
        assert_eq!(digits.len(), self.subdomains.len());
        if digits.len() == 1 {
            return digits[0];
        }
        let mut code = digits[0];
        for &d in &digits[1..] {
            code = (code << self.bits) | d;
        }
        code
    }

    /// Valid digit range for sub-column `idx`, given an original-code range `[lo, hi]`
    /// (inclusive) and the digits already drawn for sub-columns `< idx`.
    ///
    /// Returns an inclusive digit range `(dlo, dhi)`; the range is never empty when the
    /// prefix itself was drawn from valid ranges.
    pub fn digit_range(&self, lo: u32, hi: u32, prefix: &[u32], idx: usize) -> (u32, u32) {
        assert!(
            lo <= hi && hi < self.domain,
            "invalid code range {lo}..={hi}"
        );
        assert!(idx < self.subdomains.len());
        assert!(
            prefix.len() >= idx,
            "prefix must cover all earlier sub-columns"
        );
        let lo_digits = self.split(lo);
        let hi_digits = self.split(hi);
        let tight_lo = (0..idx).all(|i| prefix[i] == lo_digits[i]);
        let tight_hi = (0..idx).all(|i| prefix[i] == hi_digits[i]);
        let dlo = if tight_lo { lo_digits[idx] } else { 0 };
        let dhi = if tight_hi {
            hi_digits[idx]
        } else {
            self.subdomains[idx] - 1
        };
        (dlo, dhi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example_shape() {
        // Domain 10^6, 10 bits per sub-column → two sub-columns as in Figure 5.
        let f = Factorization::new(1_000_000, 10);
        assert_eq!(f.num_subcolumns(), 2);
        assert!(f.is_factorized());
        assert!(f.subdomains.iter().all(|&d| d <= 1 << 10));
        // 999_999 = 0b1111_0100_0010_0011_1111 → high 10 bits 976, low 10 bits 575.
        assert_eq!(f.split(999_999), vec![976, 575]);
        assert_eq!(f.combine(&[976, 575]), 999_999);
    }

    #[test]
    fn small_domain_is_identity() {
        let f = Factorization::new(100, 10);
        assert_eq!(f.num_subcolumns(), 1);
        assert!(!f.is_factorized());
        assert_eq!(f.split(37), vec![37]);
        assert_eq!(f.combine(&[37]), 37);
        let id = Factorization::identity(500);
        assert_eq!(id.subdomains, vec![500]);
    }

    #[test]
    fn three_level_factorization() {
        let f = Factorization::new(1 << 20, 8);
        assert_eq!(f.num_subcolumns(), 3);
        assert_eq!(f.subdomains, vec![16, 256, 256]);
        let code = 0xABCDE;
        let digits = f.split(code);
        assert_eq!(digits, vec![0xA, 0xBC, 0xDE]);
        assert_eq!(f.combine(&digits), code);
    }

    #[test]
    fn digit_range_walkthrough() {
        // Figure 5 / §5 example: filter col < 1_000_000 over a larger domain, i.e. the code
        // range [0, 999_999].  High sub-column is relaxed to <= 976; if the drawn high
        // digit is 976 the low filter becomes < 576 (i.e. <= 575); otherwise wildcard.
        let f = Factorization::new(1 << 20, 10);
        let (lo, hi) = f.digit_range(0, 999_999, &[], 0);
        assert_eq!((lo, hi), (0, 976));
        let (lo, hi) = f.digit_range(0, 999_999, &[976], 1);
        assert_eq!((lo, hi), (0, 575));
        let (lo, hi) = f.digit_range(0, 999_999, &[975], 1);
        assert_eq!((lo, hi), (0, 1023));
        // Lower bound tightness: range [999_000, 1_000_500].
        let lo_digits = f.split(999_000);
        let (dlo, dhi) = f.digit_range(999_000, 1_000_500, &[lo_digits[0]], 1);
        assert_eq!(dlo, lo_digits[1]);
        assert_eq!(dhi, 1023); // hi has a different high digit, so not tight above.
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn split_out_of_domain_panics_in_debug() {
        let f = Factorization::new(16, 2);
        f.split(99);
    }

    proptest! {
        /// split → combine is the identity for every code in the domain.
        #[test]
        fn split_combine_roundtrip(domain in 2u32..200_000, bits in 2u32..16, seed in 0u32..10_000) {
            let f = Factorization::new(domain, bits);
            let code = seed % domain;
            let digits = f.split(code);
            prop_assert_eq!(digits.len(), f.num_subcolumns());
            for (d, dom) in digits.iter().zip(&f.subdomains) {
                prop_assert!(d < dom);
            }
            prop_assert_eq!(f.combine(&digits), code);
        }

        /// Digit-wise range translation is exact: a code is inside [lo, hi] iff each of its
        /// digits lies inside the digit range computed from its own prefix.
        #[test]
        fn digit_ranges_are_exact(domain in 4u32..50_000, bits in 2u32..10, a in 0u32..50_000, b in 0u32..50_000, code in 0u32..50_000) {
            let f = Factorization::new(domain, bits);
            let a = a % domain;
            let b = b % domain;
            let code = code % domain;
            let (lo, hi) = (a.min(b), a.max(b));
            let digits = f.split(code);
            let mut all_digits_in_range = true;
            for idx in 0..digits.len() {
                let (dlo, dhi) = f.digit_range(lo, hi, &digits[..idx], idx);
                if digits[idx] < dlo || digits[idx] > dhi {
                    all_digits_in_range = false;
                    break;
                }
            }
            prop_assert_eq!(all_digits_in_range, (lo..=hi).contains(&code));
        }
    }
}
