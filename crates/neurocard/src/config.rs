//! Estimator hyper-parameters.

use serde::{Deserialize, Serialize};

/// Configuration of a [`crate::NeuroCard`] estimator.
///
/// Defaults are scaled for the synthetic workloads of this reproduction (thousands of base
/// rows, one CPU core); the paper's configurations on the real IMDB data use the same
/// structure with larger values (e.g. 7M training tuples, dff 128, demb 16–64).
///
/// The config round-trips through JSON (it is the `config` section of a
/// [`crate::ModelArtifact`]); all fields are plain numbers, so the round trip is exact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeuroCardConfig {
    /// Per-column embedding dimension (`demb`).
    pub d_emb: usize,
    /// Hidden width of the masked layers (`dff`).
    pub d_hidden: usize,
    /// Number of masked residual blocks.
    pub num_blocks: usize,
    /// Column factorization threshold bits (§5): a column whose dictionary needs more than
    /// this many bits is split into sub-columns of at most this many bits.  `None` disables
    /// factorization (the ablation's "None" row).
    pub fact_bits: Option<u32>,
    /// Number of training tuples to stream from the join sampler.
    pub training_tuples: usize,
    /// SGD mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Probability that an input column is replaced by the MASK token during training
    /// (wildcard skipping, §3.4).
    pub wildcard_skip_prob: f32,
    /// Number of progressive samples drawn per query at inference time (§7.2 uses 512; the
    /// synthetic workloads reach stable estimates with fewer).
    pub progressive_samples: usize,
    /// Number of sampler threads used to produce training batches.  Together with `seed`
    /// this fixes the training sample stream exactly; see `prefetch_depth`.
    pub sampler_threads: usize,
    /// Number of training batches the sampler pool keeps in flight *ahead* of the batch
    /// currently being trained on (0 = no prefetch: sample, then train, strictly
    /// alternating).  With depth ≥ 1 the pool samples and encodes batch `k+1` while the
    /// model runs forward/backward on batch `k`.  The sample stream is a pure function of
    /// `(seed, sampler_threads)`; the prefetch depth never changes training results, only
    /// wall-clock overlap.
    pub prefetch_depth: usize,
    /// Whether raw join-key columns are part of the learned tuple.  The paper's
    /// configurations leave them out: queries never filter them, the join semantics are
    /// carried entirely by the indicator/fanout virtual columns, and keys are the
    /// highest-cardinality columns of the schema.  Enable only when filters on join keys
    /// must be supported.
    pub model_join_keys: bool,
    /// Seed controlling sampling, initialisation and inference randomness.
    pub seed: u64,
}

impl Default for NeuroCardConfig {
    fn default() -> Self {
        NeuroCardConfig {
            d_emb: 12,
            d_hidden: 96,
            num_blocks: 2,
            fact_bits: Some(10),
            training_tuples: 60_000,
            batch_size: 128,
            learning_rate: 2e-3,
            wildcard_skip_prob: 0.25,
            progressive_samples: 100,
            sampler_threads: 1,
            prefetch_depth: 1,
            model_join_keys: false,
            seed: 42,
        }
    }
}

impl NeuroCardConfig {
    /// A deliberately tiny configuration for unit tests (fast to train, low accuracy).
    pub fn tiny() -> Self {
        NeuroCardConfig {
            d_emb: 6,
            d_hidden: 32,
            num_blocks: 1,
            fact_bits: Some(8),
            training_tuples: 3_000,
            batch_size: 64,
            learning_rate: 5e-3,
            wildcard_skip_prob: 0.25,
            progressive_samples: 50,
            sampler_threads: 1,
            prefetch_depth: 1,
            model_join_keys: false,
            seed: 7,
        }
    }

    /// The "larger" configuration used for the `NeuroCard-large` rows of the paper's
    /// tables: bigger embeddings, more training data.
    pub fn large() -> Self {
        NeuroCardConfig {
            d_emb: 24,
            d_hidden: 128,
            num_blocks: 3,
            training_tuples: 120_000,
            ..Default::default()
        }
    }

    /// Returns a copy with a different seed (convenience for variance studies).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different number of training tuples.
    pub fn with_training_tuples(mut self, tuples: usize) -> Self {
        self.training_tuples = tuples;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let c = NeuroCardConfig::default();
        assert!(c.d_emb > 0 && c.d_hidden > 0 && c.batch_size > 0);
        assert!(c.training_tuples >= c.batch_size);
        assert!(c.fact_bits.unwrap() >= 4);
        assert!(c.wildcard_skip_prob > 0.0 && c.wildcard_skip_prob < 1.0);
        assert!(c.sampler_threads >= 1);
        // Depth 1 by default: sample/encode batch k+1 while batch k trains.
        assert_eq!(c.prefetch_depth, 1);
    }

    #[test]
    fn builders() {
        let c = NeuroCardConfig::tiny()
            .with_seed(9)
            .with_training_tuples(500);
        assert_eq!(c.seed, 9);
        assert_eq!(c.training_tuples, 500);
        let l = NeuroCardConfig::large();
        assert!(l.d_emb > NeuroCardConfig::default().d_emb);
    }
}
