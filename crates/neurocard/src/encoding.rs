//! Dictionary encoding of the wide full-join layout into the model's token space.
//!
//! The autoregressive model consumes dense integer tokens.  [`EncodedLayout`] owns, for
//! every column of the sampler's [`WideLayout`]:
//!
//! * an order-preserving [`ColumnDictionary`] (code 0 = NULL, real values from 1), built
//!   from the **base tables** (plus `{0, 1}` for indicators and the observed fanout values
//!   for fanout columns), so it covers every value the full join can produce,
//! * a [`Factorization`] describing how that dictionary code is split into model
//!   sub-columns (paper §5).
//!
//! The concatenation of all sub-columns, in wide-layout order, is the model's column space;
//! the wide layout already places virtual columns last (indicators then fanouts), matching
//! the ordering recommendation of §6.

use nc_sampler::{ColumnKind, WideLayout};
use nc_schema::JoinSchema;
use nc_storage::{ColumnDictionary, Database, Value};

use crate::factorization::Factorization;

/// Mapping of one model sub-column back to its originating wide column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubColumn {
    /// Index into the wide layout.
    pub wide_index: usize,
    /// Which sub-column of the factorization this is (0 = most significant).
    pub sub_index: usize,
    /// Token domain of this sub-column (excluding the MASK token).
    pub domain: usize,
}

/// The encoded full-join layout: dictionaries + factorizations + the flattened sub-column
/// space of the model.
#[derive(Debug, Clone)]
pub struct EncodedLayout {
    layout: WideLayout,
    dicts: Vec<ColumnDictionary>,
    facts: Vec<Factorization>,
    subcolumns: Vec<SubColumn>,
    /// For each wide column, the indices of its sub-columns in `subcolumns`.
    wide_to_sub: Vec<Vec<usize>>,
}

impl EncodedLayout {
    /// Builds the encoded layout.
    ///
    /// * `dict_db` — the database used to build dictionaries.  Usually the same database
    ///   that is sampled, but the update experiments pass the *full* (all-partition)
    ///   database here so that token domains stay fixed across snapshots.
    /// * `fact_bits` — factorization width; `None` disables factorization.
    pub fn build(
        dict_db: &Database,
        schema: &JoinSchema,
        layout: WideLayout,
        fact_bits: Option<u32>,
    ) -> Self {
        let _ = schema;
        let mut dicts = Vec::with_capacity(layout.len());
        for col in layout.columns() {
            let dict = match col.kind {
                ColumnKind::Content | ColumnKind::JoinKey => {
                    let table = dict_db.expect_table(&col.table);
                    let column = table
                        .column(&col.column)
                        .unwrap_or_else(|| panic!("missing column {}.{}", col.table, col.column));
                    ColumnDictionary::from_column(column)
                }
                ColumnKind::Indicator => {
                    ColumnDictionary::from_sorted_values(vec![Value::Int(0), Value::Int(1)])
                }
                ColumnKind::Fanout => {
                    let table = dict_db.expect_table(&col.table);
                    let column = table
                        .column(&col.column)
                        .unwrap_or_else(|| panic!("missing column {}.{}", col.table, col.column));
                    let mut fanouts: Vec<i64> =
                        column.value_counts().values().map(|&c| c as i64).collect();
                    fanouts.push(1); // ⊥ rows and NULL keys report fanout 1
                    fanouts.sort_unstable();
                    fanouts.dedup();
                    ColumnDictionary::from_sorted_values(
                        fanouts.into_iter().map(Value::Int).collect(),
                    )
                }
            };
            dicts.push(dict);
        }

        let facts: Vec<Factorization> = dicts
            .iter()
            .zip(layout.columns())
            .map(|(d, col)| {
                let domain = d.domain_size() as u32;
                match fact_bits {
                    // Never factorize the virtual columns: their domains are tiny and the
                    // inference code reads them as whole values.
                    Some(bits) if matches!(col.kind, ColumnKind::Content | ColumnKind::JoinKey) => {
                        Factorization::new(domain, bits)
                    }
                    _ => Factorization::identity(domain),
                }
            })
            .collect();

        let mut subcolumns = Vec::new();
        let mut wide_to_sub = Vec::with_capacity(layout.len());
        for (wide_index, fact) in facts.iter().enumerate() {
            let mut subs = Vec::with_capacity(fact.num_subcolumns());
            for (sub_index, &domain) in fact.subdomains.iter().enumerate() {
                subs.push(subcolumns.len());
                subcolumns.push(SubColumn {
                    wide_index,
                    sub_index,
                    domain: domain as usize,
                });
            }
            wide_to_sub.push(subs);
        }

        EncodedLayout {
            layout,
            dicts,
            facts,
            subcolumns,
            wide_to_sub,
        }
    }

    /// Reassembles an encoded layout from persisted parts (the model-artifact load path).
    ///
    /// The sub-column space is rederived from the factorizations — it is a pure function
    /// of them, so a layout built here is indistinguishable from the original at
    /// inference time.  Inconsistent parts (arity mismatches, factorization domains that
    /// disagree with their dictionary) are reported as errors rather than panics: this
    /// input comes from disk.
    pub fn from_parts(
        layout: WideLayout,
        dicts: Vec<ColumnDictionary>,
        facts: Vec<Factorization>,
    ) -> Result<Self, String> {
        if dicts.len() != layout.len() || facts.len() != layout.len() {
            return Err(format!(
                "layout has {} columns but {} dictionaries and {} factorizations",
                layout.len(),
                dicts.len(),
                facts.len()
            ));
        }
        for (i, (dict, fact)) in dicts.iter().zip(&facts).enumerate() {
            if fact.domain as usize != dict.domain_size() {
                return Err(format!(
                    "column {} ({}): factorization domain {} != dictionary domain {}",
                    i,
                    layout.columns()[i].name,
                    fact.domain,
                    dict.domain_size()
                ));
            }
            if fact.subdomains.is_empty() {
                return Err(format!("column {i}: factorization has no sub-columns"));
            }
        }
        let mut subcolumns = Vec::new();
        let mut wide_to_sub = Vec::with_capacity(layout.len());
        for (wide_index, fact) in facts.iter().enumerate() {
            let mut subs = Vec::with_capacity(fact.num_subcolumns());
            for (sub_index, &domain) in fact.subdomains.iter().enumerate() {
                subs.push(subcolumns.len());
                subcolumns.push(SubColumn {
                    wide_index,
                    sub_index,
                    domain: domain as usize,
                });
            }
            wide_to_sub.push(subs);
        }
        Ok(EncodedLayout {
            layout,
            dicts,
            facts,
            subcolumns,
            wide_to_sub,
        })
    }

    /// The underlying wide layout.
    pub fn layout(&self) -> &WideLayout {
        &self.layout
    }

    /// Dictionary of wide column `i`.
    pub fn dictionary(&self, i: usize) -> &ColumnDictionary {
        &self.dicts[i]
    }

    /// Factorization of wide column `i`.
    pub fn factorization(&self, i: usize) -> &Factorization {
        &self.facts[i]
    }

    /// All model sub-columns, in model order.
    pub fn subcolumns(&self) -> &[SubColumn] {
        &self.subcolumns
    }

    /// Sub-column indices (model order) of wide column `i`.
    pub fn subcolumns_of(&self, i: usize) -> &[usize] {
        &self.wide_to_sub[i]
    }

    /// Token domain sizes of all model sub-columns (the [`nc_nn::MadeConfig::domains`]).
    pub fn model_domains(&self) -> Vec<usize> {
        self.subcolumns.iter().map(|s| s.domain).collect()
    }

    /// Number of model sub-columns.
    pub fn num_model_columns(&self) -> usize {
        self.subcolumns.len()
    }

    /// Encodes one materialised wide row into model tokens.
    ///
    /// Panics if a value is absent from its dictionary (cannot happen for rows produced by
    /// the join sampler over the dictionary database).
    pub fn encode_row(&self, row: &[Value]) -> Vec<u32> {
        assert_eq!(row.len(), self.layout.len(), "row arity mismatch");
        let mut out = Vec::with_capacity(self.subcolumns.len());
        for (i, value) in row.iter().enumerate() {
            let code = self.dicts[i].encode(value).unwrap_or_else(|| {
                panic!(
                    "value {value:?} of column {} is not in the dictionary",
                    self.layout.columns()[i].name
                )
            });
            out.extend(self.facts[i].split(code));
        }
        out
    }

    /// Encodes a batch of wide rows.
    pub fn encode_batch(&self, rows: &[Vec<Value>]) -> Vec<Vec<u32>> {
        rows.iter().map(|r| self.encode_row(r)).collect()
    }

    /// Decodes the sub-column digits of wide column `wide_index` back into its [`Value`].
    pub fn decode_wide(&self, wide_index: usize, digits: &[u32]) -> Value {
        let code = self.facts[wide_index].combine(digits);
        self.dicts[wide_index].decode(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_sampler::{JoinSampler, WideLayout};
    use nc_schema::JoinEdge;
    use nc_storage::TableBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn tiny_db() -> (Arc<Database>, Arc<JoinSchema>) {
        let mut db = Database::new();
        let mut a = TableBuilder::new("A", &["x", "name"]);
        for i in 0..50i64 {
            a.push_row(vec![Value::Int(i % 7), Value::from(format!("n{}", i % 5))]);
        }
        db.add_table(a.finish());
        let mut b = TableBuilder::new("B", &["x", "v"]);
        for i in 0..80i64 {
            b.push_row(vec![Value::Int(i % 9), Value::Int(i * 3 % 11)]);
        }
        db.add_table(b.finish());
        let schema = JoinSchema::new(
            vec!["A".into(), "B".into()],
            vec![JoinEdge::parse("A.x", "B.x")],
            "A",
        )
        .unwrap();
        (Arc::new(db), Arc::new(schema))
    }

    #[test]
    fn layout_structure() {
        let (db, schema) = tiny_db();
        let layout = WideLayout::new(&db, &schema);
        let enc = EncodedLayout::build(&db, &schema, layout, Some(2));
        // Base columns: A.x, A.name, B.x, B.v = 4; indicators 2; fanouts 2 → 8 wide cols.
        assert_eq!(enc.layout().len(), 8);
        assert_eq!(enc.num_model_columns(), enc.model_domains().len());
        // With 2-bit factorization, content columns with domains > 4 split into several
        // sub-columns; virtual columns never split.
        assert!(enc.num_model_columns() > 8);
        for (wide, subs) in (0..enc.layout().len()).map(|i| (i, enc.subcolumns_of(i))) {
            assert!(!subs.is_empty());
            for (k, &s) in subs.iter().enumerate() {
                assert_eq!(enc.subcolumns()[s].wide_index, wide);
                assert_eq!(enc.subcolumns()[s].sub_index, k);
            }
        }
        // Indicator dictionaries are {NULL, 0, 1}.
        let ind_idx = enc.layout().indicator_index("A").unwrap();
        assert_eq!(enc.dictionary(ind_idx).domain_size(), 3);
        assert_eq!(enc.factorization(ind_idx).num_subcolumns(), 1);
    }

    #[test]
    fn encode_decode_sampled_rows() {
        let (db, schema) = tiny_db();
        let layout = WideLayout::new(&db, &schema);
        let enc = EncodedLayout::build(&db, &schema, layout, Some(3));
        let sampler = JoinSampler::new(db.clone(), schema.clone());
        let mut rng = StdRng::seed_from_u64(1);
        let samples = sampler.sample_many(&mut rng, 32);
        let rows = enc.layout().materialize_batch(&db, &samples);
        let encoded = enc.encode_batch(&rows);
        assert_eq!(encoded.len(), 32);
        for (row, tokens) in rows.iter().zip(&encoded) {
            assert_eq!(tokens.len(), enc.num_model_columns());
            // Every token is inside its sub-column domain.
            for (t, sub) in tokens.iter().zip(enc.subcolumns()) {
                assert!((*t as usize) < sub.domain);
            }
            // Round-trip every wide column through decode_wide.
            for (wide_idx, value) in row.iter().enumerate() {
                let subs = enc.subcolumns_of(wide_idx);
                let digits: Vec<u32> = subs.iter().map(|&s| tokens[s]).collect();
                assert_eq!(&enc.decode_wide(wide_idx, &digits), value);
            }
        }
    }

    #[test]
    fn from_parts_rebuilds_an_identical_subcolumn_space() {
        let (db, schema) = tiny_db();
        let layout = WideLayout::new(&db, &schema);
        let enc = EncodedLayout::build(&db, &schema, layout, Some(2));
        let n = enc.layout().len();
        let dicts: Vec<ColumnDictionary> = (0..n).map(|i| enc.dictionary(i).clone()).collect();
        let facts: Vec<Factorization> = (0..n).map(|i| enc.factorization(i).clone()).collect();
        let rebuilt =
            EncodedLayout::from_parts(enc.layout().clone(), dicts.clone(), facts.clone()).unwrap();
        assert_eq!(rebuilt.subcolumns(), enc.subcolumns());
        assert_eq!(rebuilt.model_domains(), enc.model_domains());
        for i in 0..n {
            assert_eq!(rebuilt.subcolumns_of(i), enc.subcolumns_of(i));
        }

        // Arity and domain mismatches are reported.
        assert!(EncodedLayout::from_parts(
            enc.layout().clone(),
            dicts[1..].to_vec(),
            facts.clone()
        )
        .is_err());
        let mut bad_facts = facts.clone();
        bad_facts[0] = Factorization::identity(9999);
        assert!(EncodedLayout::from_parts(enc.layout().clone(), dicts, bad_facts).is_err());
    }

    #[test]
    fn no_factorization_when_disabled() {
        let (db, schema) = tiny_db();
        let layout = WideLayout::new(&db, &schema);
        let enc = EncodedLayout::build(&db, &schema, layout, None);
        assert_eq!(enc.num_model_columns(), enc.layout().len());
        assert!(enc.subcolumns().iter().all(|s| s.sub_index == 0));
    }

    #[test]
    #[should_panic(expected = "not in the dictionary")]
    fn encoding_unknown_value_panics() {
        let (db, schema) = tiny_db();
        let layout = WideLayout::new(&db, &schema);
        let enc = EncodedLayout::build(&db, &schema, layout, None);
        let mut row: Vec<Value> = vec![Value::Null; enc.layout().len()];
        row[0] = Value::Int(987_654);
        enc.encode_row(&row);
    }
}
