//! Probabilistic inference: progressive sampling with schema subsetting (paper §3.2, §6).
//!
//! A query is turned into constraints over the wide full-join layout:
//!
//! * every filter becomes a valid region over the original column's dictionary codes,
//! * every **joined** table contributes the indicator constraint `1_T = 1`,
//! * every **omitted** table contributes a fanout column that must be *drawn* (not
//!   constrained) and divided out of the estimate (Eq. 9 of the paper).
//!
//! Progressive sampling then walks the model's sub-columns in autoregressive order.  For a
//! constrained column it multiplies the running weight by the in-region probability mass
//! and draws an in-region value to condition later columns on; unconstrained columns stay
//! at the MASK token (wildcard skipping), so only a handful of forward passes per query are
//! needed.  The final estimate is `|J| · mean(weight / fanout_product)`.
//!
//! # The inference fast path
//!
//! The hot loop is engineered around a reusable [`SamplerScratch`] so that steady-state
//! estimation performs no heap allocation:
//!
//! * sample tokens live in one flat `num_samples × n_model` buffer (no `Vec<Vec<u32>>`),
//! * model forwards write into a reused [`nc_nn::InferenceScratch`] via
//!   [`nc_nn::ResMade::conditional_probs_into`] (blocked GEMM kernels, single-column
//!   output head),
//! * dead samples (weight 0) are compacted out after every wide column, so later columns
//!   run smaller forward batches,
//! * identical samples are **deduplicated**: a sample's token row is a pure function of
//!   its draw history, so the loop tracks row-equality classes incrementally (two samples
//!   stay in one class iff they have drawn the same digits so far) and forwards one
//!   representative row per class.  All samples start in a single class, and
//!   point-constraint columns (indicators, equality filters) never split classes, so most
//!   forward batches collapse to a handful of rows,
//! * in-region draws build a prefix-sum CDF once per row and binary-search it,
//! * the digit prefix needed by [`Factorization::digit_range`] is a slice of the token
//!   buffer (sub-columns of a wide column are contiguous in model order).
//!
//! **Determinism contract:** for a fixed `(model, query, seed)` the fast path returns
//! *exactly* the estimate the original code returned.  Dead samples never consumed RNG
//! draws, compaction and dedup preserve sample order and row contents, the CDF
//! accumulates probabilities in the same order the linear scans did, and the blocked
//! kernels are bit-identical to the naive ones.  (One caveat: CDF binary search and the
//! linear scans' chained subtraction can round a ticket that lands within a few ULPs of
//! a region boundary to different codes — see [`cdf_draw_masked`] — so the contract is
//! pinned by fixed-seed tests over realized draws rather than proven universally.)  The
//! original path is kept as [`ProgressiveSampler::estimate_reference`] and the contract
//! is enforced by unit, integration and benchmark checks.

use rand::rngs::StdRng;
use rand::Rng;

use nc_nn::{InferenceScratch, ResMade};
use nc_schema::{JoinSchema, Query, SubsetPlan};
use nc_storage::Value;

use crate::encoding::EncodedLayout;

/// Why a query cannot be estimated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EstimateError {
    /// The query failed [`Query::validate`] against the schema (unknown table,
    /// disconnected join graph, filter on an unjoined table, ...).
    InvalidQuery(String),
    /// A filter references a column the wide layout does not model (e.g. a raw join key
    /// when the estimator was built with `model_join_keys = false`).
    UnknownColumn {
        /// Table of the offending filter.
        table: String,
        /// Column of the offending filter.
        column: String,
    },
    /// A zero progressive-sample budget was requested.  A 0-sample Monte-Carlo estimate
    /// is undefined (the old code silently substituted 1 sample); the fallible APIs now
    /// report it, mirroring the `train_tuples(0)` fix of PR 2.  The infallible APIs keep
    /// the documented clamp-to-1 fallback.
    InvalidSampleCount,
}

impl std::fmt::Display for EstimateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EstimateError::InvalidQuery(msg) => write!(f, "{msg}"),
            EstimateError::UnknownColumn { table, column } => {
                write!(f, "filter references unknown column {table}.{column}")
            }
            EstimateError::InvalidSampleCount => {
                write!(f, "progressive-sample budget must be at least 1")
            }
        }
    }
}

impl std::error::Error for EstimateError {}

/// Valid-region constraint attached to one wide column during inference.
#[derive(Debug, Clone, PartialEq)]
enum Constraint {
    /// Unconstrained: the column stays at the MASK token and is skipped entirely.
    Wildcard,
    /// Allowed set of original codes (used for unfactorized columns; supports `IN`).
    Mask(Vec<bool>),
    /// Allowed inclusive range of original codes (used for factorized columns).
    Range(u32, u32),
    /// The column must be drawn from the model and its decoded value divided out of the
    /// estimate (fanout columns of omitted tables).
    FanoutDraw,
    /// A filter matched nothing; the whole query has (near-)zero cardinality.
    Empty,
}

/// Reusable buffers of the progressive-sampling hot loop.
///
/// One scratch per serving thread; reuse it across queries via
/// [`ProgressiveSampler::estimate_with_scratch`].  All buffers grow on first use and are
/// then reused, so steady-state estimation allocates nothing.
#[derive(Debug, Default)]
pub struct SamplerScratch {
    /// Model forward-pass buffers.
    nn: InferenceScratch,
    /// Flat `alive × n_model` token buffer (row-compacted as samples die).
    tokens: Vec<u32>,
    /// The all-MASK token row every sample starts from.
    mask_row: Vec<u32>,
    /// Per-sample running weights (compacted alongside `tokens`).
    weights: Vec<f64>,
    /// Per-sample fanout divisors (compacted alongside `tokens`).
    fanout_div: Vec<f64>,
    /// Prefix-sum CDF of the current draw region.
    cdf: Vec<f64>,
    /// Code indices allowed by the current `Mask` constraint.
    masked_idx: Vec<u32>,
    /// Row-equality class of each live sample (samples with identical draw histories —
    /// hence identical token rows — share a class).
    classes: Vec<u32>,
    /// One representative token row per class: the forward batch.
    class_tokens: Vec<u32>,
    /// Whether a representative row has been gathered for each class yet.
    class_seen: Vec<bool>,
    /// `(old class, drawn digit) → new class` refinement map.
    class_map: std::collections::HashMap<(u32, u32), u32>,
    /// Class renumbering used when compaction leaves id gaps.
    renumber: Vec<u32>,
}

impl SamplerScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        SamplerScratch::default()
    }
}

/// Progressive-sampling estimator over a trained model.
pub struct ProgressiveSampler<'a> {
    model: &'a ResMade,
    encoded: &'a EncodedLayout,
    schema: &'a JoinSchema,
    full_join_rows: f64,
    /// Route model forwards through the architecture-dispatched fast-tier kernels
    /// ([`nc_nn::ResMade::conditional_probs_into_fast`]) instead of the exact scalar
    /// ones.  Off by default; the `Precision::Fast` serving tier turns it on (paired
    /// with bf16-quantised weights — see the two-tier determinism contract).
    fast_kernels: bool,
}

impl<'a> ProgressiveSampler<'a> {
    /// Creates an inference engine over a trained model.
    pub fn new(
        model: &'a ResMade,
        encoded: &'a EncodedLayout,
        schema: &'a JoinSchema,
        full_join_rows: u128,
    ) -> Self {
        ProgressiveSampler {
            model,
            encoded,
            schema,
            full_join_rows: full_join_rows as f64,
            fast_kernels: false,
        }
    }

    /// Returns the sampler with fast-tier kernel dispatch switched on or off.
    ///
    /// The RNG draw sequence is identical either way (draws are a function of the
    /// probability rows, consumed in the same order), so exact and fast estimates of the
    /// same `(query, seed)` remain comparable sample-for-sample.
    pub fn with_fast_kernels(mut self, fast: bool) -> Self {
        self.fast_kernels = fast;
        self
    }

    /// Estimates the cardinality of `query` using `num_samples` progressive samples.
    ///
    /// The returned estimate is lower-bounded by 1 row, mirroring the paper's Q-error
    /// convention.  Panics on malformed queries; use [`ProgressiveSampler::try_estimate`]
    /// for a `Result`.  A zero sample budget falls back to 1 sample (documented
    /// fallback; the fallible APIs report [`EstimateError::InvalidSampleCount`] instead).
    pub fn estimate(&self, query: &Query, num_samples: usize, rng: &mut StdRng) -> f64 {
        self.try_estimate(query, num_samples.max(1), rng)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`ProgressiveSampler::estimate`], returning an error instead of panicking on
    /// queries that are invalid or reference unmodelled columns.
    pub fn try_estimate(
        &self,
        query: &Query,
        num_samples: usize,
        rng: &mut StdRng,
    ) -> Result<f64, EstimateError> {
        let mut scratch = SamplerScratch::new();
        self.try_estimate_with_scratch(query, num_samples, rng, &mut scratch)
    }

    /// [`ProgressiveSampler::estimate`] with caller-owned scratch buffers (zero
    /// allocations in steady state; the batch API reuses one scratch per worker).  A zero
    /// sample budget falls back to 1 sample, like [`ProgressiveSampler::estimate`].
    pub fn estimate_with_scratch(
        &self,
        query: &Query,
        num_samples: usize,
        rng: &mut StdRng,
        scratch: &mut SamplerScratch,
    ) -> f64 {
        self.try_estimate_with_scratch(query, num_samples.max(1), rng, scratch)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible workhorse behind all the `estimate*` entry points.
    ///
    /// Unlike the infallible wrappers, a zero sample budget is an error here
    /// ([`EstimateError::InvalidSampleCount`]) — a 0-sample estimate is not an estimate,
    /// and silently substituting one sample hid caller bugs.
    pub fn try_estimate_with_scratch(
        &self,
        query: &Query,
        num_samples: usize,
        rng: &mut StdRng,
        scratch: &mut SamplerScratch,
    ) -> Result<f64, EstimateError> {
        if num_samples == 0 {
            return Err(EstimateError::InvalidSampleCount);
        }
        query
            .validate(self.schema)
            .map_err(|e| EstimateError::InvalidQuery(format!("invalid query {query}: {e}")))?;
        let constraints = match self.build_constraints(query)? {
            Some(c) => c,
            None => return Ok(1.0), // a filter literal matched nothing
        };
        let selectivity = self.selectivity(&constraints, num_samples, rng, scratch);
        Ok((self.full_join_rows * selectivity).max(1.0))
    }

    /// The pre-fast-path estimation code, kept verbatim as the determinism baseline.
    ///
    /// `figure7d` benchmarks the fast path against it and asserts bit-identical
    /// estimates; the `inference_fastpath` integration test pins the same contract.
    pub fn estimate_reference(&self, query: &Query, num_samples: usize, rng: &mut StdRng) -> f64 {
        query
            .validate(self.schema)
            .unwrap_or_else(|e| panic!("invalid query {query}: {e}"));
        let constraints = match self
            .build_constraints(query)
            .unwrap_or_else(|e| panic!("{e}"))
        {
            Some(c) => c,
            None => return 1.0,
        };
        let selectivity = self.selectivity_reference(&constraints, num_samples.max(1), rng);
        (self.full_join_rows * selectivity).max(1.0)
    }

    /// Builds per-wide-column constraints; `Ok(None)` means some filter is unsatisfiable.
    fn build_constraints(&self, query: &Query) -> Result<Option<Vec<Constraint>>, EstimateError> {
        let layout = self.encoded.layout();
        let mut constraints = vec![Constraint::Wildcard; layout.len()];

        // 1. Filters.
        for filter in &query.filters {
            let idx = layout
                .index_of(&filter.table, &filter.column)
                .ok_or_else(|| EstimateError::UnknownColumn {
                    table: filter.table.clone(),
                    column: filter.column.clone(),
                })?;
            let dict = self.encoded.dictionary(idx);
            let matching = dict.codes_matching(|v| filter.predicate.matches(v));
            if matching.is_empty() {
                return Ok(None);
            }
            let fact = self.encoded.factorization(idx);
            let new = if fact.is_factorized() {
                // Range predicates produce contiguous codes because the dictionary is
                // order-preserving; for safety the contiguous hull is used otherwise.
                Constraint::Range(matching[0], *matching.last().expect("non-empty"))
            } else {
                let mut mask = vec![false; dict.domain_size()];
                for c in &matching {
                    mask[*c as usize] = true;
                }
                Constraint::Mask(mask)
            };
            constraints[idx] = intersect(&constraints[idx], &new);
            if constraints[idx] == Constraint::Empty {
                return Ok(None);
            }
        }

        // 2. Indicator constraints for joined tables.
        let plan = SubsetPlan::build(self.schema, query);
        for table in &plan.joined_tables {
            let idx = layout
                .indicator_index(table)
                .expect("every schema table has an indicator column");
            let code = self
                .encoded
                .dictionary(idx)
                .encode(&Value::Int(1))
                .expect("indicator 1");
            constraints[idx] = Constraint::Range(code, code);
        }

        // 3. Fanout draws for omitted tables.
        for (_, key) in plan.downscales() {
            let idx = layout
                .fanout_index(key)
                .expect("every join key has a fanout column");
            constraints[idx] = Constraint::FanoutDraw;
        }

        Ok(Some(constraints))
    }

    /// Monte-Carlo selectivity of the constraint set under the learned distribution.
    ///
    /// Zero-allocation hot loop; see the module docs for the fast-path design and the
    /// determinism argument.
    fn selectivity(
        &self,
        constraints: &[Constraint],
        num_samples: usize,
        rng: &mut StdRng,
        scratch: &mut SamplerScratch,
    ) -> f64 {
        let n_model = self.encoded.num_model_columns();
        let SamplerScratch {
            nn,
            tokens,
            mask_row,
            weights,
            fanout_div,
            cdf,
            masked_idx,
            classes,
            class_tokens,
            class_seen,
            class_map,
            renumber,
        } = scratch;

        // Every progressive sample starts as the all-wildcard tuple.
        mask_row.clear();
        mask_row.extend((0..n_model).map(|j| self.model.mask_token(j)));
        tokens.clear();
        for _ in 0..num_samples {
            tokens.extend_from_slice(mask_row);
        }
        weights.clear();
        weights.resize(num_samples, 1.0f64);
        fanout_div.clear();
        fanout_div.resize(num_samples, 1.0f64);
        // Rows `0..alive` of the buffers hold the surviving samples, in their original
        // relative order (so the RNG consumption order matches the uncompacted loop:
        // dead samples never drew anything to begin with).
        let mut alive = num_samples;
        // All samples start with identical (all-MASK) rows: one equality class.  A
        // sample's row is a pure function of its draw history, so classes refine exactly
        // when drawn digits differ; the forward batch is one representative per class.
        classes.clear();
        classes.resize(num_samples, 0u32);
        let mut n_classes = 1usize;

        for (wide_idx, constraint) in constraints.iter().enumerate() {
            if matches!(constraint, Constraint::Wildcard) {
                continue;
            }
            if alive == 0 {
                // Every sample is dead; no further column can consume RNG draws.
                break;
            }
            let fact = self.encoded.factorization(wide_idx);
            let subcols = self.encoded.subcolumns_of(wide_idx);
            let sub0 = subcols[0];
            if let Constraint::Mask(mask) = constraint {
                masked_idx.clear();
                masked_idx.extend(
                    mask.iter()
                        .enumerate()
                        .filter(|(_, m)| **m)
                        .map(|(i, _)| i as u32),
                );
            }

            for (sub_idx, &model_col) in subcols.iter().enumerate() {
                // Sub-columns of one wide column are contiguous in model order; the
                // digit prefix for `digit_range` is then a slice of the token row.
                debug_assert_eq!(model_col, sub0 + sub_idx);

                // Gather one representative token row per class.  Dead samples are
                // skipped: a sample that died mid-column has no digit for the position
                // its classmates drew, so its row has diverged from the class.  (A class
                // whose members all died keeps a zero row and is simply never read.)
                class_tokens.clear();
                class_tokens.resize(n_classes * n_model, 0u32);
                class_seen.clear();
                class_seen.resize(n_classes, false);
                for s in 0..alive {
                    if weights[s] == 0.0 {
                        continue;
                    }
                    let c = classes[s] as usize;
                    if !class_seen[c] {
                        class_seen[c] = true;
                        class_tokens[c * n_model..(c + 1) * n_model]
                            .copy_from_slice(&tokens[s * n_model..(s + 1) * n_model]);
                    }
                }
                // The ONLY model-forward call site of the hot loop: the fast tier swaps
                // in the architecture-dispatched kernels here and nowhere else.
                let probs = if self.fast_kernels {
                    self.model.conditional_probs_into_fast(
                        &class_tokens[..n_classes * n_model],
                        model_col,
                        nn,
                    )
                } else {
                    self.model.conditional_probs_into(
                        &class_tokens[..n_classes * n_model],
                        model_col,
                        nn,
                    )
                };
                let domain = self.model.domain(model_col);
                for s in 0..alive {
                    if weights[s] == 0.0 {
                        // Died at an earlier sub-column of this wide column; consumes no
                        // draws (compaction only happens between wide columns).
                        continue;
                    }
                    let row = probs.row(classes[s] as usize);
                    let (mass, digit) = match constraint {
                        Constraint::Mask(_) => cdf_draw_masked(row, masked_idx, cdf, rng),
                        Constraint::Range(lo, hi) => {
                            let prefix = &tokens[s * n_model + sub0..s * n_model + model_col];
                            let (dlo, dhi) = fact.digit_range(*lo, *hi, prefix, sub_idx);
                            cdf_draw_range(row, dlo as usize, dhi as usize, cdf, rng)
                        }
                        Constraint::FanoutDraw => {
                            // Unconstrained draw from the model's conditional.
                            let (_, digit) = cdf_draw_range(row, 0, domain - 1, cdf, rng);
                            (1.0, digit)
                        }
                        Constraint::Wildcard | Constraint::Empty => unreachable!(),
                    };
                    if mass <= 0.0 {
                        weights[s] = 0.0;
                        continue;
                    }
                    if !matches!(constraint, Constraint::FanoutDraw) {
                        weights[s] *= mass;
                    }
                    tokens[s * n_model + model_col] = digit;
                }

                // Refine classes by the digit just drawn: samples remain classmates iff
                // they were classmates and drew the same digit.  Dead samples keep stale
                // ids; they are skipped everywhere until compaction drops them.
                class_map.clear();
                let mut next = 0u32;
                for s in 0..alive {
                    if weights[s] == 0.0 {
                        continue;
                    }
                    let key = (classes[s], tokens[s * n_model + model_col]);
                    let id = *class_map.entry(key).or_insert_with(|| {
                        let id = next;
                        next += 1;
                        id
                    });
                    classes[s] = id;
                }
                n_classes = (next as usize).max(1);
            }

            if matches!(constraint, Constraint::FanoutDraw) {
                for s in 0..alive {
                    if weights[s] == 0.0 {
                        continue;
                    }
                    let digits = &tokens[s * n_model + sub0..s * n_model + sub0 + subcols.len()];
                    let value = self.encoded.decode_wide(wide_idx, digits);
                    fanout_div[s] *= fanout_multiplier(&value);
                }
            }

            // Compact dead samples out so the next wide column runs a smaller forward
            // batch, renumbering classes densely.  Relative order is preserved, keeping
            // the RNG stream identical.
            renumber.clear();
            renumber.resize(n_classes, u32::MAX);
            let mut next_class = 0u32;
            let mut live = 0;
            for s in 0..alive {
                if weights[s] > 0.0 {
                    let c = classes[s] as usize;
                    if renumber[c] == u32::MAX {
                        renumber[c] = next_class;
                        next_class += 1;
                    }
                    classes[live] = renumber[c];
                    if live != s {
                        tokens.copy_within(s * n_model..(s + 1) * n_model, live * n_model);
                        weights[live] = weights[s];
                        fanout_div[live] = fanout_div[s];
                    }
                    live += 1;
                }
            }
            alive = live;
            n_classes = (next_class as usize).max(1);
        }

        // Dead samples contribute exactly +0.0 to the sum, so summing only the survivors
        // (still in original order) is bit-identical to the uncompacted sum.
        let total: f64 = weights[..alive]
            .iter()
            .zip(&fanout_div[..alive])
            .map(|(w, f)| w / f)
            .sum();
        total / num_samples as f64
    }

    /// The pre-fast-path selectivity loop, verbatim: per-sample `Vec` tokens, full-batch
    /// forwards, per-draw `prefix` allocation, linear-scan draws.
    fn selectivity_reference(
        &self,
        constraints: &[Constraint],
        num_samples: usize,
        rng: &mut StdRng,
    ) -> f64 {
        let n_model = self.encoded.num_model_columns();
        let mut tokens: Vec<Vec<u32>> = (0..num_samples)
            .map(|_| (0..n_model).map(|j| self.model.mask_token(j)).collect())
            .collect();
        let mut weights = vec![1.0f64; num_samples];
        let mut fanout_div = vec![1.0f64; num_samples];

        for (wide_idx, constraint) in constraints.iter().enumerate() {
            if matches!(constraint, Constraint::Wildcard) {
                continue;
            }
            let fact = self.encoded.factorization(wide_idx);
            let subcols = self.encoded.subcolumns_of(wide_idx);

            for (sub_idx, &model_col) in subcols.iter().enumerate() {
                let probs = self.model.conditional_probs_reference(&tokens, model_col);
                let domain = self.model.domain(model_col);
                for s in 0..num_samples {
                    if weights[s] == 0.0 {
                        continue;
                    }
                    let row = probs.row(s);
                    let prefix: Vec<u32> =
                        subcols[..sub_idx].iter().map(|&j| tokens[s][j]).collect();
                    let (mass, digit) = match constraint {
                        Constraint::Mask(mask) => draw_masked(row, mask, rng),
                        Constraint::Range(lo, hi) => {
                            let (dlo, dhi) = fact.digit_range(*lo, *hi, &prefix, sub_idx);
                            draw_range(row, dlo as usize, dhi as usize, rng)
                        }
                        Constraint::FanoutDraw => {
                            let (_, digit) = draw_range(row, 0, domain - 1, rng);
                            (1.0, digit)
                        }
                        Constraint::Wildcard | Constraint::Empty => unreachable!(),
                    };
                    if mass <= 0.0 {
                        weights[s] = 0.0;
                        continue;
                    }
                    if !matches!(constraint, Constraint::FanoutDraw) {
                        weights[s] *= mass;
                    }
                    tokens[s][model_col] = digit;
                }
            }

            if matches!(constraint, Constraint::FanoutDraw) {
                for s in 0..num_samples {
                    if weights[s] == 0.0 {
                        continue;
                    }
                    let digits: Vec<u32> = subcols.iter().map(|&j| tokens[s][j]).collect();
                    let value = self.encoded.decode_wide(wide_idx, &digits);
                    fanout_div[s] *= fanout_multiplier(&value);
                }
            }
        }

        let total: f64 = weights.iter().zip(&fanout_div).map(|(w, f)| w / f).sum();
        total / num_samples as f64
    }
}

/// The downscaling factor a drawn fanout-column value contributes (Eq. 9 of the paper).
///
/// Fanout dictionaries are built from integer occurrence counts plus the NULL code, so a
/// model draw decodes to either `Value::Int` or — when the model puts (untrained,
/// near-zero) mass on the NULL token — `Value::Null`, which divides by 1 like the ⊥-row
/// convention.  Any *other* value type means the wide index passed here was not a fanout
/// column, i.e. an encoding-layout bug; the old `as_int().unwrap_or(1)` silently coerced
/// that to fanout 1 and masked the bug, so it is now a debug assertion (with the same
/// neutral fallback in release builds, where aborting an estimate would be worse than a
/// conservative answer).
fn fanout_multiplier(value: &Value) -> f64 {
    match value {
        Value::Null => 1.0,
        other => match other.as_int() {
            Some(f) => f.max(1) as f64,
            None => {
                debug_assert!(
                    false,
                    "fanout column decoded to non-integer {other:?}; the wide index does \
                     not refer to a fanout column"
                );
                1.0
            }
        },
    }
}

/// Intersects two constraints on the same wide column.
fn intersect(a: &Constraint, b: &Constraint) -> Constraint {
    match (a, b) {
        (Constraint::Wildcard, other) | (other, Constraint::Wildcard) => other.clone(),
        (Constraint::Mask(x), Constraint::Mask(y)) => {
            let merged: Vec<bool> = x.iter().zip(y).map(|(p, q)| *p && *q).collect();
            if merged.iter().any(|m| *m) {
                Constraint::Mask(merged)
            } else {
                Constraint::Empty
            }
        }
        (Constraint::Range(a_lo, a_hi), Constraint::Range(b_lo, b_hi)) => {
            let lo = *a_lo.max(b_lo);
            let hi = *a_hi.min(b_hi);
            if lo <= hi {
                Constraint::Range(lo, hi)
            } else {
                Constraint::Empty
            }
        }
        // Mixed kinds cannot occur (the kind is decided per column by its factorization),
        // but degrade gracefully to the more restrictive operand.
        (Constraint::Empty, _) | (_, Constraint::Empty) => Constraint::Empty,
        (x, _) => x.clone(),
    }
}

/// In-mask probability mass and a sampled in-mask code, from one probability row.
///
/// Linear-scan reference implementation; [`cdf_draw_masked`] is the fast path and must
/// consume the same RNG draw and return the same `(mass, code)`.
fn draw_masked(probs: &[f32], mask: &[bool], rng: &mut StdRng) -> (f64, u32) {
    let mut mass = 0.0f64;
    for (p, m) in probs.iter().zip(mask) {
        if *m {
            mass += f64::from(*p);
        }
    }
    if mass <= 0.0 {
        let fallback = mask.iter().position(|m| *m).unwrap_or(0);
        return (0.0, fallback as u32);
    }
    let mut ticket = rng.random::<f64>() * mass;
    for (i, (p, m)) in probs.iter().zip(mask).enumerate() {
        if *m {
            ticket -= f64::from(*p);
            if ticket <= 0.0 {
                return (mass, i as u32);
            }
        }
    }
    let last = mask.iter().rposition(|m| *m).unwrap_or(0);
    (mass, last as u32)
}

/// In-range probability mass and a sampled in-range code (linear-scan reference for
/// [`cdf_draw_range`]).
fn draw_range(probs: &[f32], lo: usize, hi: usize, rng: &mut StdRng) -> (f64, u32) {
    let hi = hi.min(probs.len().saturating_sub(1));
    if lo > hi {
        return (0.0, lo as u32);
    }
    let slice = &probs[lo..=hi];
    let mass: f64 = slice.iter().map(|p| f64::from(*p)).sum();
    if mass <= 0.0 {
        return (0.0, lo as u32);
    }
    let mut ticket = rng.random::<f64>() * mass;
    for (i, p) in slice.iter().enumerate() {
        ticket -= f64::from(*p);
        if ticket <= 0.0 {
            return (mass, (lo + i) as u32);
        }
    }
    (mass, hi as u32)
}

/// [`draw_masked`] via a prefix-sum CDF over the allowed indices plus one binary search.
///
/// The CDF accumulates `f64::from(probs[i])` over `masked_idx` in ascending order —
/// exactly the accumulation order of the linear scan — so the total **mass** (which
/// enters the estimate) is bit-identical.  The selected code matches the scan's "first
/// index where the remaining ticket drops to ≤ 0" rule via `cdf[i] ≥ ticket` ⇔
/// `ticket − Σ₀..ᵢ ≤ 0`.  That equivalence is exact in real arithmetic but not in IEEE
/// arithmetic: the scan's chained `fl(…fl(ticket − p₀)… − pᵢ)` and the CDF's
/// `fl(p₀ + … + pᵢ)` round differently, so a ticket landing within a few ULPs of a
/// boundary can in principle resolve to a different code (probability on the order of
/// 1e-15 per draw).  The determinism contract is therefore pinned by fixed-seed tests
/// over the *realized* draw sequences (`cdf_draws_equal_linear_scans_in_lockstep`, the
/// `inference_fastpath` integration test, and `figure7d`'s hard assert), not by a claim
/// of universal tie-breaking equality.
fn cdf_draw_masked(
    probs: &[f32],
    masked_idx: &[u32],
    cdf: &mut Vec<f64>,
    rng: &mut StdRng,
) -> (f64, u32) {
    debug_assert!(masked_idx
        .last()
        .is_none_or(|&i| (i as usize) < probs.len()));
    cdf.clear();
    let mut acc = 0.0f64;
    for &i in masked_idx {
        acc += f64::from(probs[i as usize]);
        cdf.push(acc);
    }
    let mass = acc;
    if mass <= 0.0 {
        return (0.0, masked_idx.first().copied().unwrap_or(0));
    }
    let ticket = rng.random::<f64>() * mass;
    let pos = cdf
        .partition_point(|&c| c < ticket)
        .min(masked_idx.len() - 1);
    (mass, masked_idx[pos])
}

/// [`draw_range`] via a prefix-sum CDF plus one binary search (same equivalence argument
/// as [`cdf_draw_masked`]).
fn cdf_draw_range(
    probs: &[f32],
    lo: usize,
    hi: usize,
    cdf: &mut Vec<f64>,
    rng: &mut StdRng,
) -> (f64, u32) {
    let hi = hi.min(probs.len().saturating_sub(1));
    if lo > hi {
        return (0.0, lo as u32);
    }
    cdf.clear();
    let mut acc = 0.0f64;
    for p in &probs[lo..=hi] {
        acc += f64::from(*p);
        cdf.push(acc);
    }
    let mass = acc;
    if mass <= 0.0 {
        return (0.0, lo as u32);
    }
    let ticket = rng.random::<f64>() * mass;
    let pos = cdf.partition_point(|&c| c < ticket).min(cdf.len() - 1);
    (mass, (lo + pos) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fanout_multiplier_handles_int_null_and_floor() {
        assert_eq!(fanout_multiplier(&Value::Int(7)), 7.0);
        // Fanouts below 1 (impossible in a well-formed dictionary, but cheap to floor)
        // must never *inflate* the estimate through division.
        assert_eq!(fanout_multiplier(&Value::Int(0)), 1.0);
        assert_eq!(fanout_multiplier(&Value::Int(-3)), 1.0);
        // The NULL token is reachable: FanoutDraw samples the model's full conditional,
        // which includes the (untrained) NULL code.  It divides by 1, like ⊥ rows.
        assert_eq!(fanout_multiplier(&Value::Null), 1.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-integer")]
    fn fanout_multiplier_rejects_non_integer_values() {
        // Regression: `as_int().unwrap_or(1)` used to coerce a string — i.e. a wide index
        // that is not a fanout column at all — to fanout 1, masking encoding bugs.
        fanout_multiplier(&Value::from("oops"));
    }

    #[test]
    fn intersect_rules() {
        let w = Constraint::Wildcard;
        let r = Constraint::Range(2, 5);
        assert_eq!(intersect(&w, &r), r);
        assert_eq!(intersect(&r, &w), r);
        assert_eq!(
            intersect(&Constraint::Range(2, 5), &Constraint::Range(4, 9)),
            Constraint::Range(4, 5)
        );
        assert_eq!(
            intersect(&Constraint::Range(2, 3), &Constraint::Range(5, 9)),
            Constraint::Empty
        );
        let m1 = Constraint::Mask(vec![false, true, true]);
        let m2 = Constraint::Mask(vec![false, true, false]);
        assert_eq!(
            intersect(&m1, &m2),
            Constraint::Mask(vec![false, true, false])
        );
        let m3 = Constraint::Mask(vec![true, false, false]);
        assert_eq!(intersect(&m1, &m3), Constraint::Empty);
        assert_eq!(intersect(&Constraint::Empty, &m1), Constraint::Empty);
    }

    #[test]
    fn draw_helpers_respect_regions() {
        let mut rng = StdRng::seed_from_u64(1);
        let probs = vec![0.1f32, 0.2, 0.3, 0.4];
        for _ in 0..200 {
            let (mass, code) = draw_range(&probs, 1, 2, &mut rng);
            assert!((mass - 0.5).abs() < 1e-6);
            assert!(code == 1 || code == 2);
            let (mass, code) = draw_masked(&probs, &[true, false, false, true], &mut rng);
            assert!((mass - 0.5).abs() < 1e-6);
            assert!(code == 0 || code == 3);
        }
        // Degenerate cases.
        let (mass, _) = draw_range(&probs, 3, 1, &mut rng);
        assert_eq!(mass, 0.0);
        let (mass, code) = draw_masked(&[0.0, 0.0], &[false, true], &mut rng);
        assert_eq!(mass, 0.0);
        assert_eq!(code, 1);
    }

    /// Deterministic pseudo-random probability row; includes exact zeros so draws hit
    /// zero-mass prefixes and suffixes.
    fn lcg_probs(len: usize, seed: &mut u64) -> Vec<f32> {
        (0..len)
            .map(|_| {
                *seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if (*seed >> 40) & 0x7 == 0 {
                    0.0
                } else {
                    ((*seed >> 33) as f32) / (1u64 << 32) as f32
                }
            })
            .collect()
    }

    #[test]
    fn cdf_draws_equal_linear_scans_in_lockstep() {
        // Two RNGs seeded identically: the CDF draws must return the same (mass, code)
        // AND consume exactly one f64 per live draw, keeping the streams in lockstep.
        let mut seed = 0xC0FFEE_u64;
        for trial in 0..300u64 {
            let len = 2 + (trial as usize % 37);
            let probs = lcg_probs(len, &mut seed);
            let lo = (trial as usize * 7) % len;
            let hi = lo + (trial as usize * 13) % (len - lo).max(1);
            let mask: Vec<bool> = (0..len).map(|i| (i as u64 + trial) % 3 != 0).collect();
            let masked_idx: Vec<u32> = mask
                .iter()
                .enumerate()
                .filter(|(_, m)| **m)
                .map(|(i, _)| i as u32)
                .collect();

            let mut rng_a = StdRng::seed_from_u64(trial);
            let mut rng_b = StdRng::seed_from_u64(trial);
            let mut cdf = Vec::new();
            for _ in 0..4 {
                let lin = draw_range(&probs, lo, hi, &mut rng_a);
                let fast = cdf_draw_range(&probs, lo, hi, &mut cdf, &mut rng_b);
                assert_eq!(
                    lin.0.to_bits(),
                    fast.0.to_bits(),
                    "range mass, trial {trial}"
                );
                assert_eq!(lin.1, fast.1, "range code, trial {trial}");
                let lin = draw_masked(&probs, &mask, &mut rng_a);
                let fast = cdf_draw_masked(&probs, &masked_idx, &mut cdf, &mut rng_b);
                assert_eq!(
                    lin.0.to_bits(),
                    fast.0.to_bits(),
                    "mask mass, trial {trial}"
                );
                assert_eq!(lin.1, fast.1, "mask code, trial {trial}");
            }
            // Streams still aligned after all draws.
            assert_eq!(
                rng_a.random::<f64>(),
                rng_b.random::<f64>(),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn cdf_draw_boundaries_and_zero_mass_fallbacks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut cdf = Vec::new();
        let probs = vec![0.0f32, 0.25, 0.0, 0.75, 0.0];

        // Mass correctness at range boundaries, including clamping past the end.
        let (mass, code) = cdf_draw_range(&probs, 1, 3, &mut cdf, &mut rng);
        assert_eq!(mass, 1.0);
        assert!(
            code == 1 || code == 3,
            "zero-probability codes are never drawn"
        );
        let (mass, _) = cdf_draw_range(&probs, 3, 99, &mut cdf, &mut rng);
        assert!((mass - 0.75).abs() < 1e-12);
        // Inverted and zero-mass ranges consume no RNG draws and fall back to `lo`.
        let mut rng_probe = rng.clone();
        assert_eq!(cdf_draw_range(&probs, 4, 2, &mut cdf, &mut rng), (0.0, 4));
        assert_eq!(cdf_draw_range(&probs, 4, 4, &mut cdf, &mut rng), (0.0, 4));
        assert_eq!(cdf_draw_range(&probs, 2, 2, &mut cdf, &mut rng), (0.0, 2));
        assert_eq!(rng.random::<f64>(), rng_probe.random::<f64>());

        // Masked boundaries: mass only over allowed indices; zero-mass masks fall back to
        // the first allowed index without consuming a draw.
        let (mass, code) = cdf_draw_masked(&probs, &[1, 3], &mut cdf, &mut rng);
        assert_eq!(mass, 1.0);
        assert!(code == 1 || code == 3);
        let mut rng_probe = rng.clone();
        assert_eq!(
            cdf_draw_masked(&probs, &[0, 2, 4], &mut cdf, &mut rng),
            (0.0, 0)
        );
        assert_eq!(cdf_draw_masked(&probs, &[], &mut cdf, &mut rng), (0.0, 0));
        assert_eq!(rng.random::<f64>(), rng_probe.random::<f64>());
    }

    #[test]
    fn estimate_error_display() {
        let e = EstimateError::UnknownColumn {
            table: "t".into(),
            column: "c".into(),
        };
        assert_eq!(e.to_string(), "filter references unknown column t.c");
        let e = EstimateError::InvalidQuery("invalid query q: boom".into());
        assert!(e.to_string().contains("boom"));
        assert!(EstimateError::InvalidSampleCount
            .to_string()
            .contains("at least 1"));
    }
}
