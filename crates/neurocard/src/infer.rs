//! Probabilistic inference: progressive sampling with schema subsetting (paper §3.2, §6).
//!
//! A query is turned into constraints over the wide full-join layout:
//!
//! * every filter becomes a valid region over the original column's dictionary codes,
//! * every **joined** table contributes the indicator constraint `1_T = 1`,
//! * every **omitted** table contributes a fanout column that must be *drawn* (not
//!   constrained) and divided out of the estimate (Eq. 9 of the paper).
//!
//! Progressive sampling then walks the model's sub-columns in autoregressive order.  For a
//! constrained column it multiplies the running weight by the in-region probability mass
//! and draws an in-region value to condition later columns on; unconstrained columns stay
//! at the MASK token (wildcard skipping), so only a handful of forward passes per query are
//! needed.  The final estimate is `|J| · mean(weight / fanout_product)`.

use rand::rngs::StdRng;
use rand::Rng;

use nc_nn::ResMade;
use nc_schema::{JoinSchema, Query, SubsetPlan};
use nc_storage::Value;

use crate::encoding::EncodedLayout;

/// Valid-region constraint attached to one wide column during inference.
#[derive(Debug, Clone, PartialEq)]
enum Constraint {
    /// Unconstrained: the column stays at the MASK token and is skipped entirely.
    Wildcard,
    /// Allowed set of original codes (used for unfactorized columns; supports `IN`).
    Mask(Vec<bool>),
    /// Allowed inclusive range of original codes (used for factorized columns).
    Range(u32, u32),
    /// The column must be drawn from the model and its decoded value divided out of the
    /// estimate (fanout columns of omitted tables).
    FanoutDraw,
    /// A filter matched nothing; the whole query has (near-)zero cardinality.
    Empty,
}

/// Progressive-sampling estimator over a trained model.
pub struct ProgressiveSampler<'a> {
    model: &'a ResMade,
    encoded: &'a EncodedLayout,
    schema: &'a JoinSchema,
    full_join_rows: f64,
}

impl<'a> ProgressiveSampler<'a> {
    /// Creates an inference engine over a trained model.
    pub fn new(
        model: &'a ResMade,
        encoded: &'a EncodedLayout,
        schema: &'a JoinSchema,
        full_join_rows: u128,
    ) -> Self {
        ProgressiveSampler {
            model,
            encoded,
            schema,
            full_join_rows: full_join_rows as f64,
        }
    }

    /// Estimates the cardinality of `query` using `num_samples` progressive samples.
    ///
    /// The returned estimate is lower-bounded by 1 row, mirroring the paper's Q-error
    /// convention.
    pub fn estimate(&self, query: &Query, num_samples: usize, rng: &mut StdRng) -> f64 {
        query
            .validate(self.schema)
            .unwrap_or_else(|e| panic!("invalid query {query}: {e}"));
        let constraints = match self.build_constraints(query) {
            Some(c) => c,
            None => return 1.0, // a filter literal matched nothing
        };
        let selectivity = self.selectivity(&constraints, num_samples.max(1), rng);
        (self.full_join_rows * selectivity).max(1.0)
    }

    /// Builds per-wide-column constraints; `None` means some filter is unsatisfiable.
    fn build_constraints(&self, query: &Query) -> Option<Vec<Constraint>> {
        let layout = self.encoded.layout();
        let mut constraints = vec![Constraint::Wildcard; layout.len()];

        // 1. Filters.
        for filter in &query.filters {
            let idx = layout
                .index_of(&filter.table, &filter.column)
                .unwrap_or_else(|| {
                    panic!(
                        "filter references unknown column {}.{}",
                        filter.table, filter.column
                    )
                });
            let dict = self.encoded.dictionary(idx);
            let matching = dict.codes_matching(|v| filter.predicate.matches(v));
            if matching.is_empty() {
                return None;
            }
            let fact = self.encoded.factorization(idx);
            let new = if fact.is_factorized() {
                // Range predicates produce contiguous codes because the dictionary is
                // order-preserving; for safety the contiguous hull is used otherwise.
                Constraint::Range(matching[0], *matching.last().expect("non-empty"))
            } else {
                let mut mask = vec![false; dict.domain_size()];
                for c in &matching {
                    mask[*c as usize] = true;
                }
                Constraint::Mask(mask)
            };
            constraints[idx] = intersect(&constraints[idx], &new);
            if constraints[idx] == Constraint::Empty {
                return None;
            }
        }

        // 2. Indicator constraints for joined tables.
        let plan = SubsetPlan::build(self.schema, query);
        for table in &plan.joined_tables {
            let idx = layout
                .indicator_index(table)
                .expect("every schema table has an indicator column");
            let code = self
                .encoded
                .dictionary(idx)
                .encode(&Value::Int(1))
                .expect("indicator 1");
            constraints[idx] = Constraint::Range(code, code);
        }

        // 3. Fanout draws for omitted tables.
        for (_, key) in plan.downscales() {
            let idx = layout
                .fanout_index(key)
                .expect("every join key has a fanout column");
            constraints[idx] = Constraint::FanoutDraw;
        }

        Some(constraints)
    }

    /// Monte-Carlo selectivity of the constraint set under the learned distribution.
    fn selectivity(&self, constraints: &[Constraint], num_samples: usize, rng: &mut StdRng) -> f64 {
        let n_model = self.encoded.num_model_columns();
        // Every progressive sample starts as the all-wildcard tuple.
        let mut tokens: Vec<Vec<u32>> = (0..num_samples)
            .map(|_| (0..n_model).map(|j| self.model.mask_token(j)).collect())
            .collect();
        let mut weights = vec![1.0f64; num_samples];
        let mut fanout_div = vec![1.0f64; num_samples];

        for (wide_idx, constraint) in constraints.iter().enumerate() {
            if matches!(constraint, Constraint::Wildcard) {
                continue;
            }
            let fact = self.encoded.factorization(wide_idx);
            let subcols = self.encoded.subcolumns_of(wide_idx);

            for (sub_idx, &model_col) in subcols.iter().enumerate() {
                let probs = self.model.conditional_probs(&tokens, model_col);
                let domain = self.model.domain(model_col);
                for s in 0..num_samples {
                    if weights[s] == 0.0 {
                        continue;
                    }
                    let row = probs.row(s);
                    let prefix: Vec<u32> =
                        subcols[..sub_idx].iter().map(|&j| tokens[s][j]).collect();
                    let (mass, digit) = match constraint {
                        Constraint::Mask(mask) => draw_masked(row, mask, rng),
                        Constraint::Range(lo, hi) => {
                            let (dlo, dhi) = fact.digit_range(*lo, *hi, &prefix, sub_idx);
                            draw_range(row, dlo as usize, dhi as usize, rng)
                        }
                        Constraint::FanoutDraw => {
                            // Unconstrained draw from the model's conditional.
                            let (_, digit) = draw_range(row, 0, domain - 1, rng);
                            (1.0, digit)
                        }
                        Constraint::Wildcard | Constraint::Empty => unreachable!(),
                    };
                    if mass <= 0.0 {
                        weights[s] = 0.0;
                        continue;
                    }
                    if !matches!(constraint, Constraint::FanoutDraw) {
                        weights[s] *= mass;
                    }
                    tokens[s][model_col] = digit;
                }
            }

            if matches!(constraint, Constraint::FanoutDraw) {
                for s in 0..num_samples {
                    if weights[s] == 0.0 {
                        continue;
                    }
                    let digits: Vec<u32> = subcols.iter().map(|&j| tokens[s][j]).collect();
                    let value = self.encoded.decode_wide(wide_idx, &digits);
                    fanout_div[s] *= fanout_multiplier(&value);
                }
            }
        }

        let total: f64 = weights.iter().zip(&fanout_div).map(|(w, f)| w / f).sum();
        total / num_samples as f64
    }
}

/// The downscaling factor a drawn fanout-column value contributes (Eq. 9 of the paper).
///
/// Fanout dictionaries are built from integer occurrence counts plus the NULL code, so a
/// model draw decodes to either `Value::Int` or — when the model puts (untrained,
/// near-zero) mass on the NULL token — `Value::Null`, which divides by 1 like the ⊥-row
/// convention.  Any *other* value type means the wide index passed here was not a fanout
/// column, i.e. an encoding-layout bug; the old `as_int().unwrap_or(1)` silently coerced
/// that to fanout 1 and masked the bug, so it is now a debug assertion (with the same
/// neutral fallback in release builds, where aborting an estimate would be worse than a
/// conservative answer).
fn fanout_multiplier(value: &Value) -> f64 {
    match value {
        Value::Null => 1.0,
        other => match other.as_int() {
            Some(f) => f.max(1) as f64,
            None => {
                debug_assert!(
                    false,
                    "fanout column decoded to non-integer {other:?}; the wide index does \
                     not refer to a fanout column"
                );
                1.0
            }
        },
    }
}

/// Intersects two constraints on the same wide column.
fn intersect(a: &Constraint, b: &Constraint) -> Constraint {
    match (a, b) {
        (Constraint::Wildcard, other) | (other, Constraint::Wildcard) => other.clone(),
        (Constraint::Mask(x), Constraint::Mask(y)) => {
            let merged: Vec<bool> = x.iter().zip(y).map(|(p, q)| *p && *q).collect();
            if merged.iter().any(|m| *m) {
                Constraint::Mask(merged)
            } else {
                Constraint::Empty
            }
        }
        (Constraint::Range(a_lo, a_hi), Constraint::Range(b_lo, b_hi)) => {
            let lo = *a_lo.max(b_lo);
            let hi = *a_hi.min(b_hi);
            if lo <= hi {
                Constraint::Range(lo, hi)
            } else {
                Constraint::Empty
            }
        }
        // Mixed kinds cannot occur (the kind is decided per column by its factorization),
        // but degrade gracefully to the more restrictive operand.
        (Constraint::Empty, _) | (_, Constraint::Empty) => Constraint::Empty,
        (x, _) => x.clone(),
    }
}

/// In-mask probability mass and a sampled in-mask code, from one probability row.
fn draw_masked(probs: &[f32], mask: &[bool], rng: &mut StdRng) -> (f64, u32) {
    let mut mass = 0.0f64;
    for (p, m) in probs.iter().zip(mask) {
        if *m {
            mass += f64::from(*p);
        }
    }
    if mass <= 0.0 {
        let fallback = mask.iter().position(|m| *m).unwrap_or(0);
        return (0.0, fallback as u32);
    }
    let mut ticket = rng.random::<f64>() * mass;
    for (i, (p, m)) in probs.iter().zip(mask).enumerate() {
        if *m {
            ticket -= f64::from(*p);
            if ticket <= 0.0 {
                return (mass, i as u32);
            }
        }
    }
    let last = mask.iter().rposition(|m| *m).unwrap_or(0);
    (mass, last as u32)
}

/// In-range probability mass and a sampled in-range code.
fn draw_range(probs: &[f32], lo: usize, hi: usize, rng: &mut StdRng) -> (f64, u32) {
    let hi = hi.min(probs.len().saturating_sub(1));
    if lo > hi {
        return (0.0, lo as u32);
    }
    let slice = &probs[lo..=hi];
    let mass: f64 = slice.iter().map(|p| f64::from(*p)).sum();
    if mass <= 0.0 {
        return (0.0, lo as u32);
    }
    let mut ticket = rng.random::<f64>() * mass;
    for (i, p) in slice.iter().enumerate() {
        ticket -= f64::from(*p);
        if ticket <= 0.0 {
            return (mass, (lo + i) as u32);
        }
    }
    (mass, hi as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_multiplier_handles_int_null_and_floor() {
        assert_eq!(fanout_multiplier(&Value::Int(7)), 7.0);
        // Fanouts below 1 (impossible in a well-formed dictionary, but cheap to floor)
        // must never *inflate* the estimate through division.
        assert_eq!(fanout_multiplier(&Value::Int(0)), 1.0);
        assert_eq!(fanout_multiplier(&Value::Int(-3)), 1.0);
        // The NULL token is reachable: FanoutDraw samples the model's full conditional,
        // which includes the (untrained) NULL code.  It divides by 1, like ⊥ rows.
        assert_eq!(fanout_multiplier(&Value::Null), 1.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-integer")]
    fn fanout_multiplier_rejects_non_integer_values() {
        // Regression: `as_int().unwrap_or(1)` used to coerce a string — i.e. a wide index
        // that is not a fanout column at all — to fanout 1, masking encoding bugs.
        fanout_multiplier(&Value::from("oops"));
    }

    #[test]
    fn intersect_rules() {
        let w = Constraint::Wildcard;
        let r = Constraint::Range(2, 5);
        assert_eq!(intersect(&w, &r), r);
        assert_eq!(intersect(&r, &w), r);
        assert_eq!(
            intersect(&Constraint::Range(2, 5), &Constraint::Range(4, 9)),
            Constraint::Range(4, 5)
        );
        assert_eq!(
            intersect(&Constraint::Range(2, 3), &Constraint::Range(5, 9)),
            Constraint::Empty
        );
        let m1 = Constraint::Mask(vec![false, true, true]);
        let m2 = Constraint::Mask(vec![false, true, false]);
        assert_eq!(
            intersect(&m1, &m2),
            Constraint::Mask(vec![false, true, false])
        );
        let m3 = Constraint::Mask(vec![true, false, false]);
        assert_eq!(intersect(&m1, &m3), Constraint::Empty);
        assert_eq!(intersect(&Constraint::Empty, &m1), Constraint::Empty);
    }

    #[test]
    fn draw_helpers_respect_regions() {
        let mut rng = StdRng::seed_from_u64(1);
        let probs = vec![0.1f32, 0.2, 0.3, 0.4];
        for _ in 0..200 {
            let (mass, code) = draw_range(&probs, 1, 2, &mut rng);
            assert!((mass - 0.5).abs() < 1e-6);
            assert!(code == 1 || code == 2);
            let (mass, code) = draw_masked(&probs, &[true, false, false, true], &mut rng);
            assert!((mass - 0.5).abs() < 1e-6);
            assert!(code == 0 || code == 3);
        }
        // Degenerate cases.
        let (mass, _) = draw_range(&probs, 3, 1, &mut rng);
        assert_eq!(mass, 0.0);
        let (mass, code) = draw_masked(&[0.0, 0.0], &[false, true], &mut rng);
        assert_eq!(mass, 0.0);
        assert_eq!(code, 1);
    }

    use rand::SeedableRng;
}
