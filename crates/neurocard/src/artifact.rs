//! The self-contained, versioned model artifact: everything needed to serve estimates,
//! nothing that needs the training database.
//!
//! A [`ModelArtifact`] packages, inside the checksummed section container of
//! [`nc_nn::artifact`]:
//!
//! | section    | encoding | contents |
//! |---|---|---|
//! | `manifest` | JSON     | format name, artifact version, column/parameter counts, training stats, `|J|` |
//! | `config`   | JSON     | the full [`NeuroCardConfig`] |
//! | `schema`   | JSON     | tables, join edges and root — [`JoinSchema`] is revalidated on load |
//! | `layout`   | binary   | wide-layout column metadata + table order |
//! | `dicts`    | binary   | one order-preserving [`ColumnDictionary`] per wide column |
//! | `facts`    | JSON     | one [`Factorization`] per wide column |
//! | `weights`  | binary   | model parameters in the [`nc_nn::serialize`] flat format |
//! | `weights_bf16` | binary | bf16-quantised parameters for the [`crate::Precision::Fast`] tier (optional) |
//!
//! The JSON sections round-trip through the serde shim's new `Deserialize`/`from_json`
//! path; the binary sections use the checked readers of [`nc_storage::binio`].  Loading
//! validates the container header (magic, version, checksum), every section's presence
//! and internal consistency, and finally the weight shapes against the freshly built
//! model — every failure is a typed [`ArtifactLoadError`], never a panic.
//!
//! **Losslessness contract:** `NeuroCard::from_artifact(ModelArtifact::from_bytes(
//! artifact.to_bytes()))` produces bit-identical estimates to the estimator that wrote
//! the artifact, for any fixed `(query, seed)` — pinned by the `artifact_roundtrip`
//! integration test.

use std::sync::Arc;

use bytes::Bytes;

use nc_nn::artifact::{ArtifactError, ArtifactReader, ArtifactWriter};
use nc_nn::serialize::{load_params_from_bytes, model_to_bytes, LoadError};
use nc_nn::{MadeConfig, ResMade};
use nc_sampler::{ColumnKind, WideColumn, WideLayout};
use nc_schema::{JoinEdge, JoinSchema};
use nc_storage::binio::{put_bf16_slice, put_string, BinReader};
use nc_storage::ColumnDictionary;
use serde::{Deserialize, Serialize};

use crate::config::NeuroCardConfig;
use crate::core::{quantize_model_bf16, EstimatorCore};
use crate::encoding::EncodedLayout;
use crate::factorization::Factorization;

/// Version of the NeuroCard artifact *contents* (the container has its own format
/// version; this one tracks the section set and their encodings).
pub const MODEL_ARTIFACT_VERSION: u32 = 1;

/// Deterministic fingerprint of a join schema: FNV-1a 64 over an unambiguous
/// (length-prefixed) rendering of the tables in declared order, every join edge, and the
/// root table.
///
/// This is the **routing identity** of a schema in the multi-model serving layer: two
/// artifacts trained for the same `(tables, edges, root)` fingerprint identically, no
/// matter what data or config they were trained with, so a registry can group model
/// versions per schema and a request can say "latest model for this schema" without
/// shipping the schema itself.  It is stamped into every [`ArtifactManifest`] at export
/// time and revalidated against the decoded schema on load.
pub fn schema_fingerprint(schema: &JoinSchema) -> u64 {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(schema.tables().len() as u64).to_le_bytes());
    for t in schema.tables() {
        put_string(&mut buf, t);
    }
    buf.extend_from_slice(&(schema.edges().len() as u64).to_le_bytes());
    for e in schema.edges() {
        put_string(&mut buf, &e.left.table);
        put_string(&mut buf, &e.left.column);
        put_string(&mut buf, &e.right.table);
        put_string(&mut buf, &e.right.column);
    }
    put_string(&mut buf, schema.root());
    nc_nn::artifact::fnv1a64(&buf)
}

/// Why a model artifact failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactLoadError {
    /// The outer container failed to parse (bad magic/version/checksum, truncation,
    /// missing section).
    Container(ArtifactError),
    /// A section parsed but its contents are inconsistent or undecodable.
    Section {
        /// Section name.
        name: &'static str,
        /// What went wrong.
        message: String,
    },
    /// The weight blob does not match the model architecture the config describes.
    Weights(LoadError),
}

impl std::fmt::Display for ArtifactLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactLoadError::Container(e) => write!(f, "{e}"),
            ArtifactLoadError::Section { name, message } => {
                write!(f, "artifact section {name:?}: {message}")
            }
            ArtifactLoadError::Weights(e) => write!(f, "artifact weights: {e}"),
        }
    }
}

impl std::error::Error for ArtifactLoadError {}

impl From<ArtifactError> for ArtifactLoadError {
    fn from(e: ArtifactError) -> Self {
        ArtifactLoadError::Container(e)
    }
}

fn section_err(name: &'static str, message: impl std::fmt::Display) -> ArtifactLoadError {
    ArtifactLoadError::Section {
        name,
        message: message.to_string(),
    }
}

/// The durable record of a shadow-deploy promotion decision, stamped into the
/// promoted artifact's manifest by the retraining pipeline.
///
/// Everything in here is a pure function of the pipeline's seeded run — metrics are
/// deterministic q-error medians, never wall-clock latencies — so a promoted
/// artifact's bytes replay bit-identically under the same seed.  64-bit identifiers
/// travel as 16-digit hex strings, like [`ArtifactManifest::schema_fingerprint`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PromotionRecord {
    /// Root seed of the pipeline run that made the decision (hex).
    pub pipeline_seed: String,
    /// Pipeline step index at which the promotion happened.
    pub step: u64,
    /// Registry version of the incumbent the candidate displaced.
    pub incumbent_version: u64,
    /// Mirrored queries both sides answered during the shadow comparison.
    pub shadow_samples: u64,
    /// Incumbent's median q-error over the mirrored traffic.
    pub incumbent_median_qerr: f64,
    /// Candidate's median q-error over the mirrored traffic.
    pub candidate_median_qerr: f64,
    /// Win margin the candidate had to clear (incumbent ≥ margin × candidate).
    pub promote_margin: f64,
    /// Drift-detector q-error regression threshold that triggered the retrain.
    pub qerr_regression_threshold: f64,
    /// Always `"promoted"` — an artifact only carries the record after winning.
    pub verdict: String,
}

/// The JSON manifest section: quick-look metadata about the artifact, readable without
/// decoding any binary section.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArtifactManifest {
    /// Always `"neurocard-artifact"`.
    pub format: String,
    /// [`MODEL_ARTIFACT_VERSION`] at write time.
    pub artifact_version: u32,
    /// Number of wide-layout columns.
    pub wide_columns: usize,
    /// Number of model sub-columns.
    pub model_columns: usize,
    /// Number of scalar model parameters.
    pub num_params: usize,
    /// Training tuples consumed when the artifact was exported.
    pub tuples_trained: usize,
    /// Training loss of the last mini-batch (nats/tuple; 0.0 if never trained).
    pub final_loss: f32,
    /// `|J|` as a decimal string (u128 exceeds JSON's integer range).
    pub full_join_rows: String,
    /// [`schema_fingerprint`] of the `schema` section, as a 16-digit lower-case hex
    /// string.  Empty in artifacts written before multi-model serving existed
    /// (`#[serde(default)]` keeps those loadable); the loader recomputes and, when the
    /// field is present, cross-checks it.
    #[serde(default)]
    pub schema_fingerprint: String,
    /// The shadow-deploy decision that installed this artifact, when it was
    /// published by the retraining pipeline's promotion controller.  `None` for
    /// directly-trained or manually-published artifacts (and for every artifact
    /// written before the pipeline existed — `#[serde(default)]` keeps them
    /// loadable).
    #[serde(default)]
    pub promotion: Option<PromotionRecord>,
}

/// A self-contained trained estimator: config + schema + encodings + weights.
///
/// Obtained from [`crate::NeuroCard::train`] / [`crate::NeuroCard::to_artifact`] or
/// parsed from disk with [`ModelArtifact::from_bytes`]; turned back into an estimator
/// with [`crate::NeuroCard::from_artifact`] (or [`ModelArtifact::to_core`] for the
/// serving layer).
#[derive(Debug, Clone)]
pub struct ModelArtifact {
    manifest: ArtifactManifest,
    config: NeuroCardConfig,
    schema: Arc<JoinSchema>,
    encoded: Arc<EncodedLayout>,
    full_join_rows: u128,
    weights: Bytes,
    /// bf16-quantised parameters for the `Precision::Fast` tier; `None` for artifacts
    /// written before the section existed (the loader quantises on the fly — bf16
    /// round-trip idempotence makes the result byte-identical either way).
    weights_bf16: Option<Bytes>,
}

/// JSON shape of the `schema` section.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SchemaSection {
    tables: Vec<String>,
    edges: Vec<JoinEdge>,
    root: String,
}

impl ModelArtifact {
    /// Assembles an artifact from live estimator state (the export path).
    pub(crate) fn from_parts(
        config: NeuroCardConfig,
        schema: Arc<JoinSchema>,
        encoded: Arc<EncodedLayout>,
        full_join_rows: u128,
        model: &ResMade,
        tuples_trained: usize,
        final_loss: f32,
    ) -> Self {
        let manifest = ArtifactManifest {
            format: "neurocard-artifact".to_string(),
            artifact_version: MODEL_ARTIFACT_VERSION,
            wide_columns: encoded.layout().len(),
            model_columns: encoded.num_model_columns(),
            num_params: model.num_params(),
            tuples_trained,
            // JSON cannot carry non-finite floats (the writer emits `null`, which the
            // typed load path rejects) — a diverged training loss must not make the
            // artifact unloadable, so it is recorded as the "never trained" sentinel.
            final_loss: if final_loss.is_finite() {
                final_loss
            } else {
                0.0
            },
            full_join_rows: full_join_rows.to_string(),
            schema_fingerprint: format!("{:016x}", schema_fingerprint(&schema)),
            promotion: None,
        };
        ModelArtifact {
            manifest,
            config,
            schema,
            encoded,
            full_join_rows,
            weights: model_to_bytes(model),
            weights_bf16: Some(Bytes::from(bf16_weights_bytes(model))),
        }
    }

    /// Serialises the artifact into the framed, checksummed container format.
    pub fn to_bytes(&self) -> Bytes {
        let mut w = ArtifactWriter::new();
        let manifest =
            serde_json::to_string_pretty(&self.manifest).expect("manifest serialisation");
        let config = serde_json::to_string_pretty(&self.config).expect("config serialisation");
        let schema = SchemaSection {
            tables: self.schema.tables().to_vec(),
            edges: self.schema.edges().to_vec(),
            root: self.schema.root().to_string(),
        };
        let schema = serde_json::to_string_pretty(&schema).expect("schema serialisation");

        let layout = self.encoded.layout();
        let mut layout_bytes = Vec::new();
        layout_bytes.extend_from_slice(&(layout.len() as u32).to_le_bytes());
        for col in layout.columns() {
            layout_bytes.push(match col.kind {
                ColumnKind::Content => 0,
                ColumnKind::JoinKey => 1,
                ColumnKind::Indicator => 2,
                ColumnKind::Fanout => 3,
            });
            put_string(&mut layout_bytes, &col.table);
            put_string(&mut layout_bytes, &col.column);
            put_string(&mut layout_bytes, &col.name);
        }
        layout_bytes.extend_from_slice(&(layout.table_order().len() as u32).to_le_bytes());
        for t in layout.table_order() {
            put_string(&mut layout_bytes, t);
        }

        let mut dict_bytes = Vec::new();
        dict_bytes.extend_from_slice(&(layout.len() as u32).to_le_bytes());
        for i in 0..layout.len() {
            dict_bytes.extend_from_slice(&self.encoded.dictionary(i).to_binary());
        }

        let facts: Vec<Factorization> = (0..layout.len())
            .map(|i| self.encoded.factorization(i).clone())
            .collect();
        let facts = serde_json::to_string(&facts).expect("factorization serialisation");

        w.section("manifest", manifest.into_bytes());
        w.section("config", config.into_bytes());
        w.section("schema", schema.into_bytes());
        w.section("layout", layout_bytes);
        w.section("dicts", dict_bytes);
        w.section("facts", facts.into_bytes());
        w.section("weights", self.weights.to_vec());
        if let Some(bf16) = &self.weights_bf16 {
            w.section("weights_bf16", bf16.to_vec());
        }
        w.finish()
    }

    /// Parses and fully validates an artifact produced by [`ModelArtifact::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ArtifactLoadError> {
        let mut reader = ArtifactReader::parse(bytes)?;

        let manifest: ArtifactManifest = read_json_section(&reader, "manifest")?;
        if manifest.format != "neurocard-artifact" {
            return Err(section_err(
                "manifest",
                format!("unknown artifact format {:?}", manifest.format),
            ));
        }
        if manifest.artifact_version != MODEL_ARTIFACT_VERSION {
            return Err(section_err(
                "manifest",
                format!(
                    "artifact version {} is not supported (this build reads {})",
                    manifest.artifact_version, MODEL_ARTIFACT_VERSION
                ),
            ));
        }
        let full_join_rows: u128 = manifest
            .full_join_rows
            .parse()
            .map_err(|_| section_err("manifest", "full_join_rows is not a u128"))?;

        let config: NeuroCardConfig = read_json_section(&reader, "config")?;

        let schema: SchemaSection = read_json_section(&reader, "schema")?;
        let schema = JoinSchema::new(schema.tables, schema.edges, &schema.root)
            .map_err(|e| section_err("schema", e))?;

        // The fingerprint is derived state: recompute it from the decoded schema, and if
        // the manifest carries one (it is absent in pre-serving artifacts, where
        // `#[serde(default)]` leaves it empty) insist that it matches — a mismatch means
        // the schema section was swapped out from under the manifest.  Old artifacts get
        // the recomputed value filled in, so `manifest().schema_fingerprint` is reliable
        // either way.
        let computed_fingerprint = schema_fingerprint(&schema);
        let mut manifest = manifest;
        if manifest.schema_fingerprint.is_empty() {
            manifest.schema_fingerprint = format!("{computed_fingerprint:016x}");
        } else {
            let stored = u64::from_str_radix(&manifest.schema_fingerprint, 16)
                .map_err(|_| section_err("manifest", "schema_fingerprint is not a hex u64"))?;
            if stored != computed_fingerprint {
                return Err(section_err(
                    "manifest",
                    format!(
                        "schema fingerprint mismatch: manifest says {stored:016x}, the schema \
                         section hashes to {computed_fingerprint:016x}"
                    ),
                ));
            }
        }

        // Layout (binary).
        let payload = reader.require("layout")?;
        let mut r = BinReader::new(payload);
        let layout = (|| -> Result<WideLayout, String> {
            let n = r.u32().map_err(|e| e.to_string())? as usize;
            let mut columns = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                let kind = match r.u8().map_err(|e| e.to_string())? {
                    0 => ColumnKind::Content,
                    1 => ColumnKind::JoinKey,
                    2 => ColumnKind::Indicator,
                    3 => ColumnKind::Fanout,
                    k => return Err(format!("unknown column kind tag {k}")),
                };
                columns.push(WideColumn {
                    table: r.string().map_err(|e| e.to_string())?,
                    column: r.string().map_err(|e| e.to_string())?,
                    name: r.string().map_err(|e| e.to_string())?,
                    kind,
                });
            }
            let t = r.u32().map_err(|e| e.to_string())? as usize;
            let mut table_order = Vec::with_capacity(t.min(1 << 20));
            for _ in 0..t {
                table_order.push(r.string().map_err(|e| e.to_string())?);
            }
            if !r.is_empty() {
                return Err(format!("{} unread bytes", r.remaining()));
            }
            WideLayout::from_metadata(columns, table_order)
        })()
        .map_err(|m| section_err("layout", m))?;

        // Dictionaries (binary).
        let payload = reader.require("dicts")?;
        let mut r = BinReader::new(payload);
        let dicts = (|| -> Result<Vec<ColumnDictionary>, String> {
            let n = r.u32().map_err(|e| e.to_string())? as usize;
            let mut dicts = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                dicts.push(ColumnDictionary::read_binary(&mut r).map_err(|e| e.to_string())?);
            }
            if !r.is_empty() {
                return Err(format!("{} unread bytes", r.remaining()));
            }
            Ok(dicts)
        })()
        .map_err(|m| section_err("dicts", m))?;

        let facts: Vec<Factorization> = read_json_section(&reader, "facts")?;

        let encoded =
            EncodedLayout::from_parts(layout, dicts, facts).map_err(|m| section_err("facts", m))?;
        if encoded.layout().len() != manifest.wide_columns
            || encoded.num_model_columns() != manifest.model_columns
        {
            return Err(section_err(
                "manifest",
                format!(
                    "column counts disagree with the decoded layout: manifest says {}/{} \
                     (wide/model), sections decode to {}/{}",
                    manifest.wide_columns,
                    manifest.model_columns,
                    encoded.layout().len(),
                    encoded.num_model_columns()
                ),
            ));
        }
        // Every schema table must appear in the layout's table order and vice versa.
        for t in schema.tables() {
            if !encoded.layout().table_order().contains(t) {
                return Err(section_err(
                    "layout",
                    format!("schema table {t:?} is missing from the layout"),
                ));
            }
        }
        for t in encoded.layout().table_order() {
            if !schema.contains(t) {
                return Err(section_err(
                    "layout",
                    format!("layout table {t:?} is not in the schema"),
                ));
            }
        }

        // Optional: absent in artifacts written before the fast tier existed.
        let weights_bf16 = if reader.get("weights_bf16").is_some() {
            Some(Bytes::from(reader.take("weights_bf16")?))
        } else {
            None
        };

        // Moved out of the reader, not copied: the weight blob dominates the artifact.
        let weights = Bytes::from(reader.take("weights")?);

        Ok(ModelArtifact {
            manifest,
            config,
            schema: Arc::new(schema),
            encoded: Arc::new(encoded),
            full_join_rows,
            weights,
            weights_bf16,
        })
    }

    /// Builds the estimation engine: a fresh model of the configured architecture with
    /// the persisted weights loaded into it (shape-validated).
    pub fn to_core(&self) -> Result<EstimatorCore, ArtifactLoadError> {
        let mut model = ResMade::new(MadeConfig {
            domains: self.encoded.model_domains(),
            d_emb: self.config.d_emb,
            d_hidden: self.config.d_hidden,
            num_blocks: self.config.num_blocks,
            seed: self.config.seed,
        });
        load_params_from_bytes(&mut model, &self.weights).map_err(ArtifactLoadError::Weights)?;
        let fast_model = match &self.weights_bf16 {
            Some(bytes) => {
                load_bf16_weights(&model, bytes).map_err(|m| section_err("weights_bf16", m))?
            }
            // Pre-section artifact: quantise on the fly.  bf16 round-trip idempotence
            // makes this byte-identical to decoding a stored section.
            None => quantize_model_bf16(&model),
        };
        EstimatorCore::with_fast_model(
            model,
            fast_model,
            self.encoded.clone(),
            self.schema.clone(),
            self.config.clone(),
            self.full_join_rows,
        )
        .map_err(|m| section_err("weights", m))
    }

    /// The quick-look manifest.
    pub fn manifest(&self) -> &ArtifactManifest {
        &self.manifest
    }

    /// Stamps a shadow-deploy [`PromotionRecord`] into the manifest (builder style).
    /// Called by the pipeline's promotion controller on the winning candidate just
    /// before the promoted artifact is written out; the record then travels inside
    /// the artifact bytes wherever they are copied.
    pub fn with_promotion(mut self, record: PromotionRecord) -> Self {
        self.manifest.promotion = Some(record);
        self
    }

    /// The estimator configuration stored in the artifact.
    pub fn config(&self) -> &NeuroCardConfig {
        &self.config
    }

    /// The join schema stored in the artifact.
    pub fn schema(&self) -> &Arc<JoinSchema> {
        &self.schema
    }

    /// The [`schema_fingerprint`] of this artifact's schema — the identity a model
    /// registry routes requests by.
    pub fn schema_fingerprint(&self) -> u64 {
        schema_fingerprint(&self.schema)
    }

    /// `|J|` recorded at export time.
    pub fn full_join_rows(&self) -> u128 {
        self.full_join_rows
    }

    /// The raw weight blob (the [`nc_nn::serialize`] flat format).
    pub fn weights(&self) -> &Bytes {
        &self.weights
    }
}

/// Encodes the model's parameters as the `weights_bf16` section: u32 tensor count, then
/// per tensor `rows: u32, cols: u32` followed by row-major bf16 (u16 LE) data — the
/// [`nc_nn::serialize`] flat format with the payload halved.
fn bf16_weights_bytes(model: &ResMade) -> Vec<u8> {
    let params = model.params();
    let mut out = Vec::new();
    out.extend_from_slice(&(params.len() as u32).to_le_bytes());
    for p in params {
        out.extend_from_slice(&(p.value.rows() as u32).to_le_bytes());
        out.extend_from_slice(&(p.value.cols() as u32).to_le_bytes());
        put_bf16_slice(&mut out, p.value.data());
    }
    out
}

/// Decodes a `weights_bf16` section into the fast-tier model: `exact` supplies the
/// architecture (and shape expectations); every tensor is validated against it.
fn load_bf16_weights(exact: &ResMade, bytes: &[u8]) -> Result<ResMade, String> {
    let mut fast = exact.clone();
    let mut r = BinReader::new(bytes);
    let count = r.u32().map_err(|e| e.to_string())? as usize;
    let mut params = fast.params_mut();
    if count != params.len() {
        return Err(format!(
            "section holds {count} tensors but the model has {}",
            params.len()
        ));
    }
    for (i, p) in params.iter_mut().enumerate() {
        let rows = r.u32().map_err(|e| e.to_string())? as usize;
        let cols = r.u32().map_err(|e| e.to_string())? as usize;
        if rows != p.value.rows() || cols != p.value.cols() {
            return Err(format!(
                "tensor {i} is {rows}x{cols} but the model expects {}x{}",
                p.value.rows(),
                p.value.cols()
            ));
        }
        let decoded = r
            .bf16_slice(rows * cols)
            .map_err(|e| format!("tensor {i}: {e}"))?;
        p.value.data_mut().copy_from_slice(&decoded);
    }
    if !r.is_empty() {
        return Err(format!("{} unread bytes", r.remaining()));
    }
    Ok(fast)
}

fn read_json_section<T: for<'de> Deserialize<'de>>(
    reader: &ArtifactReader,
    name: &'static str,
) -> Result<T, ArtifactLoadError> {
    let payload = reader.require(name)?;
    let text =
        std::str::from_utf8(payload).map_err(|_| section_err(name, "payload is not UTF-8"))?;
    serde_json::from_str(text).map_err(|e| section_err(name, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::NeuroCard;
    use nc_schema::{JoinEdge as Edge, Predicate, Query};
    use nc_storage::{Database, TableBuilder, Value};

    fn tiny() -> (Arc<Database>, Arc<JoinSchema>) {
        let mut db = Database::new();
        let mut a = TableBuilder::new("A", &["x", "c"]);
        for i in 0..40i64 {
            a.push_row(vec![Value::Int(i % 5), Value::Int(i % 3)]);
        }
        db.add_table(a.finish());
        let mut b = TableBuilder::new("B", &["x", "tag"]);
        for i in 0..60i64 {
            b.push_row(vec![Value::Int(i % 5), Value::from(format!("t{}", i % 4))]);
        }
        db.add_table(b.finish());
        let schema = JoinSchema::new(
            vec!["A".into(), "B".into()],
            vec![Edge::parse("A.x", "B.x")],
            "A",
        )
        .unwrap();
        (Arc::new(db), Arc::new(schema))
    }

    fn trained() -> (NeuroCard, Arc<Database>, Arc<JoinSchema>) {
        let (db, schema) = tiny();
        let config = NeuroCardConfig::tiny().with_training_tuples(800);
        let model = NeuroCard::build(db.clone(), schema.clone(), &config);
        (model, db, schema)
    }

    #[test]
    fn byte_round_trip_preserves_every_piece() {
        let (model, _, schema) = trained();
        let artifact = model.to_artifact();
        let bytes = artifact.to_bytes();
        let back = ModelArtifact::from_bytes(&bytes).unwrap();

        assert_eq!(back.manifest(), artifact.manifest());
        assert_eq!(back.config(), artifact.config());
        assert_eq!(back.full_join_rows(), model.full_join_rows());
        assert_eq!(back.schema().tables(), schema.tables());
        assert_eq!(back.schema().root(), schema.root());
        assert_eq!(back.weights(), artifact.weights());
        // Serialisation is deterministic.
        assert_eq!(bytes, back.to_bytes());
    }

    #[test]
    fn loaded_core_estimates_bit_identically() {
        let (model, _, _) = trained();
        let bytes = model.to_artifact().to_bytes();
        let core = ModelArtifact::from_bytes(&bytes)
            .unwrap()
            .to_core()
            .unwrap();
        let queries = [
            Query::join(&["A", "B"]),
            Query::join(&["A"]).filter("A", "c", Predicate::eq(1i64)),
            Query::join(&["A", "B"]).filter("B", "tag", Predicate::eq("t2")),
        ];
        for q in &queries {
            assert_eq!(model.estimate(q).to_bits(), core.estimate(q).to_bits());
            assert_eq!(model.query_seed(q), core.query_seed(q));
        }
        // And the zero-sample contract carries over.
        assert_eq!(
            core.try_estimate_with_samples(&queries[0], 0),
            Err(crate::infer::EstimateError::InvalidSampleCount)
        );
    }

    #[test]
    fn corrupt_artifacts_report_typed_errors() {
        let (model, _, _) = trained();
        let bytes = model.to_artifact().to_bytes();

        // Container-level damage.
        assert!(matches!(
            ModelArtifact::from_bytes(&bytes[..10]),
            Err(ArtifactLoadError::Container(_))
        ));
        let mut bad = bytes.to_vec();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert!(matches!(
            ModelArtifact::from_bytes(&bad),
            Err(ArtifactLoadError::Container(
                ArtifactError::ChecksumMismatch { .. }
            ))
        ));

        // Section-level damage: a syntactically valid container whose weights belong to a
        // different architecture.
        let (other_db, other_schema) = tiny();
        let mut cfg = NeuroCardConfig::tiny().with_training_tuples(300);
        cfg.d_hidden = 16; // different architecture
        let other = NeuroCard::build(other_db, other_schema, &cfg);
        let mut mixed = model.to_artifact();
        mixed.weights = other.to_artifact().weights().clone();
        assert!(matches!(
            ModelArtifact::from_bytes(&mixed.to_bytes())
                .unwrap()
                .to_core(),
            Err(ArtifactLoadError::Weights(_))
        ));

        for e in [
            ArtifactLoadError::Container(ArtifactError::BadMagic),
            section_err("manifest", "boom"),
            ArtifactLoadError::Weights(LoadError::Truncated),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn schema_fingerprint_distinguishes_schemas_and_survives_round_trips() {
        let (model, _, schema) = trained();
        let fp = schema_fingerprint(&schema);
        let artifact = model.to_artifact();
        assert_eq!(artifact.schema_fingerprint(), fp);
        assert_eq!(artifact.manifest().schema_fingerprint, format!("{fp:016x}"));
        let back = ModelArtifact::from_bytes(&artifact.to_bytes()).unwrap();
        assert_eq!(back.schema_fingerprint(), fp);

        // Every structural ingredient moves the fingerprint.
        let renamed = JoinSchema::new(
            vec!["A".into(), "C".into()],
            vec![Edge::parse("A.x", "C.x")],
            "A",
        )
        .unwrap();
        assert_ne!(schema_fingerprint(&renamed), fp);
        let other_root = JoinSchema::new(
            vec!["A".into(), "B".into()],
            vec![Edge::parse("A.x", "B.x")],
            "B",
        )
        .unwrap();
        assert_ne!(schema_fingerprint(&other_root), fp);
        let other_edge = JoinSchema::new(
            vec!["A".into(), "B".into()],
            vec![Edge::parse("A.c", "B.x")],
            "A",
        )
        .unwrap();
        assert_ne!(schema_fingerprint(&other_edge), fp);
        // ...and identical structure reproduces it exactly.
        let same = JoinSchema::new(
            vec!["A".into(), "B".into()],
            vec![Edge::parse("A.x", "B.x")],
            "A",
        )
        .unwrap();
        assert_eq!(schema_fingerprint(&same), fp);
    }

    /// Rewrites the artifact's manifest section through `edit`, preserving the other
    /// sections — simulates artifacts written by older builds.
    fn rewrite_manifest(bytes: &[u8], edit: impl Fn(&str) -> String) -> Bytes {
        let reader = ArtifactReader::parse(bytes).unwrap();
        let mut w = ArtifactWriter::new();
        for name in ALL_SECTIONS {
            let payload = reader.require(name).unwrap().to_vec();
            if name == "manifest" {
                let text = std::str::from_utf8(&payload).unwrap();
                w.section(name, edit(text).into_bytes());
            } else {
                w.section(name, payload);
            }
        }
        w.finish()
    }

    const ALL_SECTIONS: [&str; 8] = [
        "manifest",
        "config",
        "schema",
        "layout",
        "dicts",
        "facts",
        "weights",
        "weights_bf16",
    ];

    /// Rewrites one section through `edit` (`None` drops it), preserving the rest —
    /// simulates truncated/corrupt/absent sections inside a valid container.
    fn rewrite_section(
        bytes: &[u8],
        target: &str,
        edit: impl Fn(Vec<u8>) -> Option<Vec<u8>>,
    ) -> Bytes {
        let reader = ArtifactReader::parse(bytes).unwrap();
        let mut w = ArtifactWriter::new();
        for name in ALL_SECTIONS {
            let payload = reader.require(name).unwrap().to_vec();
            if name == target {
                if let Some(p) = edit(payload) {
                    w.section(name, p);
                }
            } else {
                w.section(name, payload);
            }
        }
        w.finish()
    }

    #[test]
    fn pre_fingerprint_artifacts_still_load() {
        let (model, _, schema) = trained();
        let bytes = model.to_artifact().to_bytes();

        // A PR-4 era manifest has no schema_fingerprint entry at all.
        let old = rewrite_manifest(&bytes, |text| {
            let stripped: Vec<&str> = text
                .lines()
                .filter(|l| !l.contains("schema_fingerprint"))
                .collect();
            let stripped = stripped.join("\n");
            // Removing the last entry leaves a trailing comma on the previous line.
            stripped.replace(",\n}", "\n}")
        });
        let loaded = ModelArtifact::from_bytes(&old).expect("old artifacts must load");
        // The loader fills the fingerprint in from the schema section...
        assert_eq!(
            loaded.manifest().schema_fingerprint,
            format!("{:016x}", schema_fingerprint(&schema))
        );
        // ...and the loaded model still estimates bit-identically.
        let q = Query::join(&["A", "B"]);
        assert_eq!(
            loaded.to_core().unwrap().estimate(&q).to_bits(),
            model.estimate(&q).to_bits()
        );

        // A *wrong* fingerprint is rejected, as is a malformed one.
        let lying = rewrite_manifest(&bytes, |text| {
            text.replace(
                &format!("{:016x}", schema_fingerprint(&schema)),
                "00000000deadbeef",
            )
        });
        assert!(matches!(
            ModelArtifact::from_bytes(&lying),
            Err(ArtifactLoadError::Section {
                name: "manifest",
                ..
            })
        ));
        let garbled = rewrite_manifest(&bytes, |text| {
            text.replace(
                &format!("{:016x}", schema_fingerprint(&schema)),
                "not-hex-at-all",
            )
        });
        assert!(ModelArtifact::from_bytes(&garbled).is_err());
    }

    #[test]
    fn artifacts_without_bf16_section_quantise_on_the_fly() {
        use crate::core::Precision;
        use crate::infer::SamplerScratch;

        let (model, _, _) = trained();
        let bytes = model.to_artifact().to_bytes();
        let with_section = ModelArtifact::from_bytes(&bytes)
            .unwrap()
            .to_core()
            .unwrap();

        // Strip the section — exactly what a pre-fast-tier artifact looks like.
        let old = rewrite_section(&bytes, "weights_bf16", |_| None);
        let loaded = ModelArtifact::from_bytes(&old).expect("old artifacts must load");
        assert!(loaded.weights_bf16.is_none());
        let without_section = loaded.to_core().unwrap();

        // bf16 round-trip idempotence: on-the-fly quantisation produces the same fast
        // model as decoding the stored section, so fast estimates are bit-identical.
        let mut scratch = SamplerScratch::new();
        for q in [
            Query::join(&["A", "B"]),
            Query::join(&["A"]).filter("A", "c", Predicate::eq(1i64)),
        ] {
            for p in [Precision::Exact, Precision::Fast] {
                assert_eq!(
                    with_section
                        .estimate_with_samples_scratch_precision(&q, 64, &mut scratch, p)
                        .to_bits(),
                    without_section
                        .estimate_with_samples_scratch_precision(&q, 64, &mut scratch, p)
                        .to_bits(),
                    "{p} tier diverged between stored and on-the-fly bf16"
                );
            }
        }

        // Stripping the section survives a re-serialise round trip, too.
        let back = ModelArtifact::from_bytes(&loaded.to_bytes()).unwrap();
        assert!(back.weights_bf16.is_none());
    }

    #[test]
    fn corrupt_bf16_sections_report_typed_errors() {
        let (model, _, _) = trained();
        let bytes = model.to_artifact().to_bytes();

        let expect_section_err = |bytes: &[u8]| {
            let loaded = ModelArtifact::from_bytes(bytes).expect("container is still valid");
            match loaded.to_core() {
                Err(ArtifactLoadError::Section { name, message }) => {
                    assert_eq!(name, "weights_bf16");
                    assert!(!message.is_empty());
                }
                Err(other) => panic!("expected a weights_bf16 section error, got {other:?}"),
                Ok(_) => panic!("expected a weights_bf16 section error, got a working core"),
            }
        };

        // Truncation at several depths: inside the header, a tensor header, the payload.
        for keep in [0, 2, 9, 40] {
            expect_section_err(&rewrite_section(&bytes, "weights_bf16", |p| {
                Some(p[..keep.min(p.len() - 1)].to_vec())
            }));
        }
        // Wrong tensor count.
        expect_section_err(&rewrite_section(&bytes, "weights_bf16", |mut p| {
            p[0] = p[0].wrapping_add(1);
            Some(p)
        }));
        // Trailing garbage.
        expect_section_err(&rewrite_section(&bytes, "weights_bf16", |mut p| {
            p.extend_from_slice(&[0u8; 3]);
            Some(p)
        }));
    }

    /// One trained artifact shared by the property tests below (training per case would
    /// dominate the run).
    fn artifact_bytes() -> &'static Bytes {
        use std::sync::OnceLock;
        static BYTES: OnceLock<Bytes> = OnceLock::new();
        BYTES.get_or_init(|| {
            let (model, _, _) = trained();
            model.to_artifact().to_bytes()
        })
    }

    proptest::proptest! {
        /// The bf16 section codec round-trips every weight to within 2⁻⁸ relative error,
        /// and quantisation is idempotent (a decoded weight re-encodes to the same bits).
        #[test]
        fn bf16_section_round_trip_stays_within_bound(seed in 0u64..1_000_000) {
            use nc_storage::binio::f32_to_bf16;
            use proptest::prop_assert;

            // SplitMix64-style stream of weights across several magnitudes, plus edges.
            let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0x1234_5678);
            let mut vals = Vec::new();
            for i in 0..96u32 {
                s ^= s >> 27;
                s = s.wrapping_mul(0x2545_F491_4F6C_DD1D);
                let unit = ((s >> 40) as f64 / (1u64 << 24) as f64) * 2.0 - 1.0;
                let scale = 10f64.powi((i % 9) as i32 - 4); // 1e-4 ..= 1e4
                vals.push((unit * scale) as f32);
            }
            vals.extend_from_slice(&[0.0, -0.0, 1.0, -1.0, f32::MIN_POSITIVE, 1e30, -1e-30]);

            let mut buf = Vec::new();
            put_bf16_slice(&mut buf, &vals);
            let decoded = BinReader::new(&buf).bf16_slice(vals.len()).unwrap();
            for (v, d) in vals.iter().zip(&decoded) {
                prop_assert!(
                    (v - d).abs() <= v.abs() / 256.0,
                    "bf16({v}) = {d} exceeds the 2^-8 relative bound"
                );
                prop_assert!(f32_to_bf16(*d) == f32_to_bf16(*v), "quantisation not idempotent at {v}");
            }
        }

        /// Arbitrarily truncated/bit-flipped `weights_bf16` sections never panic: the
        /// loader returns `Ok` (bf16 bits are all valid floats) or a typed error.
        #[test]
        fn mangled_bf16_sections_never_panic(cut in 0usize..1 << 20, flip in 0usize..1 << 20) {
            let mutated = rewrite_section(artifact_bytes(), "weights_bf16", |mut p| {
                p.truncate(cut % (p.len() + 1));
                if !p.is_empty() {
                    let i = flip % p.len();
                    p[i] ^= 0x55;
                }
                Some(p)
            });
            if let Ok(artifact) = ModelArtifact::from_bytes(&mutated) {
                if let Err(e) = artifact.to_core() {
                    assert!(matches!(
                        e,
                        ArtifactLoadError::Section { name: "weights_bf16", .. }
                    ));
                }
            }
        }
    }

    #[test]
    fn manifest_carries_training_stats() {
        let (model, _, _) = trained();
        let artifact = model.to_artifact();
        let m = artifact.manifest();
        assert_eq!(m.format, "neurocard-artifact");
        assert_eq!(m.artifact_version, MODEL_ARTIFACT_VERSION);
        assert_eq!(m.tuples_trained, 800);
        assert!(m.num_params > 0);
        assert_eq!(
            m.full_join_rows.parse::<u128>().unwrap(),
            model.full_join_rows()
        );
        assert!(m.model_columns >= m.wide_columns);
    }
}
