//! Typed configuration for the retraining pipeline.
//!
//! Every threshold that feeds a pipeline *decision* lives here, so a config + seed
//! fully determine the control flow: which steps fire drift, which candidates train,
//! which mirrored queries land on the shadow, and which candidates promote.

use std::path::PathBuf;
use std::time::Duration;

use nc_serve::FaultInjector;
use neurocard::NeuroCardConfig;

/// Configuration of one [`crate::Pipeline`].
///
/// The defaults are sized for the synthetic [`crate::demo_env`] tables; real
/// deployments tune the thresholds and point `model` at their production training
/// config.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Master seed: drift oracles, retrain seeds, and mirror draws all derive from it
    /// (per-step, via the workspace SplitMix64 streams).
    pub seed: u64,
    /// The served model name this pipeline owns (shadow candidates register under
    /// `"{name}.shadow"`, which `Latest` selectors never resolve to).
    pub model_name: String,
    /// Queries per rolling oracle sample (drift scoring and shadow traffic).
    pub oracle_sample: usize,
    /// Drift fires when the incumbent's median q-error reaches `baseline *
    /// qerr_regression_threshold` (baseline = median recorded at the last retrain).
    pub qerr_regression_threshold: f64,
    /// Drift also fires when the column [`crate::shift_metric`] against the profile at
    /// the last retrain reaches this value (standardised mean movement).
    pub shift_threshold: f64,
    /// Fraction of traffic mirrored to the shadow candidate, in per-mille.
    pub mirror_per_mille: u32,
    /// A candidate with fewer compared shadow samples than this is retired, never
    /// promoted (guards against deciding on noise — or on a chaos-dropped mirror).
    pub min_shadow_samples: u64,
    /// Promotion margin: the candidate wins only if `incumbent_median >= margin *
    /// candidate_median` over the mirrored sample.  `1.0` promotes on any win; higher
    /// values demand a clear one.
    pub promote_margin: f64,
    /// Training configuration for retrain attempts (the per-attempt seed is derived
    /// from `seed` and the step, overriding whatever seed this carries).
    pub model: NeuroCardConfig,
    /// Where candidate and promoted artifacts are written.
    pub artifact_dir: PathBuf,
    /// Journal size threshold handed to [`nc_serve::SharedJournal::set_compact_threshold`]
    /// when the pipeline owns a journal (`None` = never compact).
    pub journal_compact_bytes: Option<u64>,
    /// Pause between steps, slept through [`FaultInjector::sleep`] (the injectable
    /// clock) so pacing never escapes the chaos schedule.
    pub step_pause: Duration,
    /// Fault injection hooks (`pipeline.retrain-fail`, `pipeline.shadow-drop`);
    /// disabled by default.
    pub faults: FaultInjector,
}

impl PipelineConfig {
    /// A config with demo-sized defaults, writing artifacts under `artifact_dir`.
    pub fn new(seed: u64, artifact_dir: impl Into<PathBuf>) -> Self {
        PipelineConfig {
            seed,
            model_name: "demo".to_string(),
            oracle_sample: 24,
            qerr_regression_threshold: 2.0,
            shift_threshold: 4.0,
            mirror_per_mille: 500,
            min_shadow_samples: 8,
            promote_margin: 1.0,
            model: NeuroCardConfig::tiny().with_training_tuples(600),
            artifact_dir: artifact_dir.into(),
            journal_compact_bytes: None,
            step_pause: Duration::ZERO,
            faults: FaultInjector::disabled(),
        }
    }

    /// Sets the served model name.
    pub fn with_model_name(mut self, name: impl Into<String>) -> Self {
        self.model_name = name.into();
        self
    }

    /// Sets the promotion margin.
    pub fn with_promote_margin(mut self, margin: f64) -> Self {
        self.promote_margin = margin;
        self
    }

    /// Arms fault injection.
    pub fn with_faults(mut self, faults: FaultInjector) -> Self {
        self.faults = faults;
        self
    }

    /// The shadow registration name (`Latest` selectors never resolve to it because
    /// it differs from every served name).
    pub fn shadow_name(&self) -> String {
        format!("{}.shadow", self.model_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_demo_sized() {
        let config = PipelineConfig::new(7, "/tmp/x");
        assert_eq!(config.seed, 7);
        assert_eq!(config.shadow_name(), "demo.shadow");
        assert!(config.promote_margin >= 1.0);
        assert!(config.min_shadow_samples > 0);
        assert!(config.mirror_per_mille <= 1000);
    }
}
