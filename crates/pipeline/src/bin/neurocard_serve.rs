//! `neurocard-serve`: the TCP front-end binary.
//!
//! Loads one or more model artifacts, registers each in a [`ModelRegistry`] under its
//! schema fingerprint, and serves the wire protocol on a nonblocking epoll reactor
//! until killed.  Usage:
//!
//! ```text
//! neurocard-serve [--listen ADDR] [--journal PATH] [--chaos-seed N] \
//!                 [--pipeline DIR [--pipeline-seed N] [--pipeline-steps N] \
//!                  [--pipeline-pause-ms N]] [name=]artifact.ncar [...]
//! ```
//!
//! * `--listen ADDR` — bind address (default `127.0.0.1:8466`; use port 0 for an
//!   ephemeral port, printed on startup).
//! * `--journal PATH` — registry persistence: every publish is appended (durably,
//!   before it takes effect) to a JSON-lines journal, and on startup the journal is
//!   replayed first — a `kill -9` + restart comes back with every model at the exact
//!   version it had, before the command-line artifacts are applied on top.  With a
//!   journal, zero positional artifacts is valid (pure restart).  Wire `deregister`
//!   requests are journaled the same way (write-ahead), so removals also survive.
//! * `--chaos-seed N` — arm the deterministic fault-injection plan
//!   ([`nc_serve::FaultPlan::chaos`]) at seed `N`: journal, socket and worker fault
//!   points fire on a replayable schedule (see `docs/faults.md`).  Debug builds only;
//!   release builds compile the hooks away and print a notice instead.
//! * `--pipeline DIR` — run the continuous-retraining demo: the seeded drifting
//!   dataset of [`nc_pipeline::demo_env`] is served under the name `demo` (trained on
//!   startup unless the journal already restored it) while a [`nc_pipeline::Pipeline`]
//!   ingests the update stream, detects drift, retrains in the background,
//!   shadow-compares, and auto-promotes — writing artifacts under `DIR` and printing
//!   one marker per control-plane decision.  Composes with `--journal` (promotions are
//!   write-ahead journaled) and `--chaos-seed` (the `pipeline.*` fault points arm).
//!   `--pipeline-seed`, `--pipeline-steps` and `--pipeline-pause-ms` tune the run.
//! * each positional argument is an artifact path, optionally prefixed `name=`; without
//!   a prefix the file stem is the model name.  Registering the same name twice (for
//!   the same schema) hot-swaps it to the next version.
//!
//! Clients speak the length-prefixed binary protocol of `nc_serve::protocol` — see
//! `ServeClient` for the in-tree client, or the README's framing table for the wire
//! layout.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use nc_pipeline::{demo_env, DriftingSource, Pipeline, PipelineConfig, PipelineEvent};
use nc_sampler::seed::derive_stream_seed;
use nc_serve::{
    FaultInjector, FaultPlan, JournalEvent, ModelKey, ModelRegistry, ReactorConfig,
    RegistryJournal, SharedJournal, TcpServer,
};
use neurocard::{schema_fingerprint, EstimatorCore, ModelArtifact, NeuroCard, NeuroCardConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: neurocard-serve [--listen ADDR] [--journal PATH] [--chaos-seed N] \
         [--pipeline DIR [--pipeline-seed N] [--pipeline-steps N] \
         [--pipeline-pause-ms N]] [name=]artifact.ncar [...]"
    );
    ExitCode::FAILURE
}

fn load_core(path: &str) -> Result<(ModelArtifact, EstimatorCore), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("error: could not read {path}: {e}"))?;
    let artifact = ModelArtifact::from_bytes(&bytes)
        .map_err(|e| format!("error: {path} is not a loadable model artifact: {e}"))?;
    let core = artifact
        .to_core()
        .map_err(|e| format!("error: could not build the estimator from {path}: {e}"))?;
    Ok((artifact, core))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut listen = "127.0.0.1:8466".to_string();
    let mut journal_path: Option<String> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut pipeline_dir: Option<String> = None;
    let mut pipeline_seed: u64 = 0xD81F7;
    let mut pipeline_steps: u64 = 12;
    let mut pipeline_pause_ms: u64 = 25;
    let mut artifacts: Vec<(Option<String>, String)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--pipeline" => match args.get(i + 1) {
                Some(dir) => {
                    pipeline_dir = Some(dir.clone());
                    i += 2;
                }
                None => return usage(),
            },
            "--pipeline-seed" => match args.get(i + 1).and_then(|n| n.parse::<u64>().ok()) {
                Some(seed) => {
                    pipeline_seed = seed;
                    i += 2;
                }
                None => return usage(),
            },
            "--pipeline-steps" => match args.get(i + 1).and_then(|n| n.parse::<u64>().ok()) {
                Some(steps) => {
                    pipeline_steps = steps;
                    i += 2;
                }
                None => return usage(),
            },
            "--pipeline-pause-ms" => match args.get(i + 1).and_then(|n| n.parse::<u64>().ok()) {
                Some(ms) => {
                    pipeline_pause_ms = ms;
                    i += 2;
                }
                None => return usage(),
            },
            "--listen" => match args.get(i + 1) {
                Some(addr) => {
                    listen = addr.clone();
                    i += 2;
                }
                None => return usage(),
            },
            "--journal" => match args.get(i + 1) {
                Some(path) => {
                    journal_path = Some(path.clone());
                    i += 2;
                }
                None => return usage(),
            },
            "--chaos-seed" => match args.get(i + 1).and_then(|n| n.parse::<u64>().ok()) {
                Some(seed) => {
                    chaos_seed = Some(seed);
                    i += 2;
                }
                None => return usage(),
            },
            "--help" | "-h" => return usage(),
            arg => {
                let (name, path) = match arg.split_once('=') {
                    Some((name, path)) => (Some(name.to_string()), path.to_string()),
                    None => (None, arg.to_string()),
                };
                artifacts.push((name, path));
                i += 1;
            }
        }
    }
    if artifacts.is_empty() && journal_path.is_none() && pipeline_dir.is_none() {
        return usage();
    }

    let registry = Arc::new(ModelRegistry::new());

    // In release builds the fault hooks are compiled away: say so instead of
    // silently serving without chaos.
    let faults = match chaos_seed {
        Some(seed) if FaultInjector::compiled_in() => {
            println!("chaos: fault injection armed at seed {seed}");
            FaultPlan::chaos(seed).injector()
        }
        Some(seed) => {
            println!(
                "chaos: --chaos-seed {seed} ignored — fault hooks are compiled away \
                 in release builds"
            );
            FaultInjector::disabled()
        }
        None => FaultInjector::disabled(),
    };

    // Replay the journal first: a restart restores every model at its pre-crash
    // version before the command line applies on top.  `open_compacted` folds the
    // history and rewrites the file atomically, so a long-lived server's journal
    // stays proportional to the number of live models, not the number of swaps.
    let journal = match journal_path {
        Some(path) => {
            let (journal, survivors) = match RegistryJournal::open_compacted(&path) {
                Ok(pair) => pair,
                Err(e) => {
                    eprintln!("error: could not open journal {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            for (key, artifact_path) in survivors {
                let (_, core) = match load_core(&artifact_path) {
                    Ok(pair) => pair,
                    Err(msg) => {
                        eprintln!("{msg} (while replaying journal {path})");
                        return ExitCode::FAILURE;
                    }
                };
                if let Err(e) = registry.restore(key.clone(), Arc::new(core)) {
                    eprintln!("error: journal replay of {key} failed: {e}");
                    return ExitCode::FAILURE;
                }
                println!("restored {key} from {artifact_path} (journal)");
            }
            Some(SharedJournal::new(journal))
        }
        None => None,
    };

    for (name, path) in &artifacts {
        let (artifact, core) = match load_core(path) {
            Ok(pair) => pair,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        };
        let name = name.clone().unwrap_or_else(|| {
            std::path::Path::new(path)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "model".to_string())
        });
        let fingerprint = artifact.schema_fingerprint();
        // Write-ahead: journal the publish durably before it takes effect, so the
        // journal is never behind the served state.
        let next_key = ModelKey::new(
            fingerprint,
            name.clone(),
            registry
                .latest(fingerprint, &name)
                .map_or(1, |k| k.version + 1),
        );
        if let Some(journal) = journal.as_ref() {
            if let Err(e) = journal.append(&JournalEvent::publish(&next_key, path.as_str())) {
                eprintln!("error: could not journal {next_key}: {e}");
                return ExitCode::FAILURE;
            }
        }
        let key = registry.publish(fingerprint, &name, Arc::new(core));
        debug_assert_eq!(key, next_key);
        println!(
            "registered {key} from {path} ({} params, |J| = {})",
            artifact.manifest().num_params,
            artifact.manifest().full_join_rows
        );
    }

    // Pipeline mode: train and publish the demo incumbent, unless the journal
    // already restored a served version of it (the pure-restart path).
    let pipeline_env = match pipeline_dir.as_ref() {
        Some(dir) => {
            let env = demo_env(pipeline_seed);
            let fingerprint = schema_fingerprint(&env.schema);
            if registry.latest(fingerprint, "demo").is_none() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("error: could not create pipeline dir {dir}: {e}");
                    return ExitCode::FAILURE;
                }
                let train = NeuroCardConfig::tiny()
                    .with_training_tuples(600)
                    .with_seed(derive_stream_seed(pipeline_seed, 0, 2));
                let artifact = NeuroCard::train(env.db.clone(), env.schema.clone(), &train);
                let path = std::path::Path::new(dir).join("demo-v1.ncar");
                if let Err(e) = std::fs::write(&path, artifact.to_bytes()) {
                    eprintln!("error: could not write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                let key = ModelKey::new(fingerprint, "demo", 1);
                if let Some(journal) = journal.as_ref() {
                    let event = JournalEvent::publish(&key, path.to_string_lossy().as_ref());
                    if let Err(e) = journal.append(&event) {
                        eprintln!("error: could not journal {key}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                let core = artifact.to_core().expect("freshly trained artifact loads");
                let published = registry.publish(fingerprint, "demo", Arc::new(core));
                debug_assert_eq!(published, key);
                println!(
                    "pipeline: trained demo incumbent {key} into {}",
                    path.display()
                );
            } else {
                println!("pipeline: demo incumbent restored from journal");
            }
            Some(env)
        }
        None => None,
    };

    if registry.keys().is_empty() {
        eprintln!("error: nothing to serve (empty journal and no artifacts)");
        return ExitCode::FAILURE;
    }

    // Arm journal chaos only now, after the startup publishes: `--chaos-seed`
    // exists to torture *serving*, and an injected fault during the initial
    // write-ahead appends would just abort startup on ~a third of seeds (the
    // journal torture tests cover that path directly).  Wire deregisters and any
    // later appends run fully under injection.
    if let Some(journal) = journal.as_ref() {
        journal.set_faults(faults.clone());
    }

    let config = ReactorConfig {
        faults: faults.clone(),
        admin_journal: journal.clone(),
        ..ReactorConfig::default()
    };
    let server = match TcpServer::bind_with(registry.clone(), listen.as_str(), config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: could not bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("serving on {} (ctrl-c to stop)", server.local_addr());

    // The control plane runs on the main thread while the reactor serves; each
    // decision prints one marker line (the library itself never prints).
    if let Some(env) = pipeline_env {
        let dir = pipeline_dir.expect("--pipeline set when the env is");
        let mut config = PipelineConfig::new(pipeline_seed, &dir).with_model_name("demo");
        config.step_pause = Duration::from_millis(pipeline_pause_ms);
        config.faults = faults.clone();
        let source = DriftingSource::new(pipeline_seed, 3);
        let mut pipeline = match Pipeline::new(
            config,
            registry.clone(),
            journal.clone(),
            env.schema.clone(),
            env.db.clone(),
            source,
        ) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: pipeline startup failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        for _ in 0..pipeline_steps {
            let result = pipeline.step_with(&mut |event| match event {
                PipelineEvent::StepStarted(_) => {}
                PipelineEvent::DriftChecked {
                    step,
                    median_qerr,
                    shift,
                    fired,
                } => println!(
                    "pipeline: step {step} median-qerr {median_qerr:.3} shift {shift:.3} \
                     drift={fired}"
                ),
                PipelineEvent::RetrainAborted(reason) => {
                    println!("pipeline: retrain aborted ({reason})")
                }
                PipelineEvent::ShadowCompared(shadow) => println!(
                    "pipeline: shadow compared {} samples (incumbent {:.3} vs candidate {:.3}, \
                     {} dropped)",
                    shadow.compared,
                    shadow.incumbent_median_qerr,
                    shadow.candidate_median_qerr,
                    shadow.dropped
                ),
                PipelineEvent::PromotionJournaled(key) => {
                    println!("pipeline: journaled promotion of {key}")
                }
                PipelineEvent::Promoted(key) => println!("pipeline: promoted {key}"),
                PipelineEvent::CandidateRetired(reason) => {
                    println!("pipeline: candidate retired ({reason})")
                }
            });
            if let Err(e) = result {
                eprintln!("error: pipeline step failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        let counters = pipeline.counters();
        println!(
            "pipeline: done ({} steps, {} promotions, {} retirements)",
            counters.steps, counters.promotions, counters.retirements
        );
    }
    loop {
        std::thread::park();
    }
}
