//! Update ingestion: applying a seeded stream of row batches to the live snapshot.
//!
//! The storage layer's [`Database`] is an immutable snapshot (tables are `Arc`-shared
//! into samplers and executors), so ingestion is copy-on-append: each batch rebuilds
//! only the touched tables and produces a fresh `Database` the next pipeline step
//! serves, profiles, and — when drift fires — retrains on.  This mirrors the paper's
//! §6.6 update protocol (append, then refresh the model), generalised to a stream.

use nc_storage::{Database, TableBuilder, Value};

/// One batch of appended rows, tagged with the stream step that produced it.
#[derive(Debug, Clone)]
pub struct UpdateBatch {
    /// The producing step (for reports; the pipeline supplies its own step counter).
    pub step: u64,
    /// Appended rows as `(table, row)` pairs, in deterministic stream order.
    pub rows: Vec<(String, Vec<Value>)>,
}

impl UpdateBatch {
    /// Total appended rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the batch appends nothing.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// A deterministic source of update batches (the demo drifting stream, a replayed
/// trace, ...).  `None` ends the stream — the pipeline idles from then on.
pub trait UpdateSource {
    /// The next batch, or `None` when the stream is exhausted.
    fn next_batch(&mut self) -> Option<UpdateBatch>;
}

/// Applies `batch` to `db` copy-on-append, returning the successor snapshot.
///
/// Untouched tables are rebuilt from their columns as-is; touched tables get the new
/// rows appended in batch order.  Rows must match the table's column count (enforced
/// by [`TableBuilder::push_row`]); rows naming unknown tables panic — the stream and
/// the schema are produced by the same config, so a mismatch is a bug, not data.
pub fn apply_batch(db: &Database, batch: &UpdateBatch) -> Database {
    let mut out = Database::new();
    let mut names: Vec<&str> = db.table_names();
    names.sort_unstable();
    for table_name in names {
        let table = db.table(table_name).expect("name came from the catalog");
        let column_names = table.column_names();
        let mut builder = TableBuilder::new(table_name, &column_names);
        for row in 0..table.num_rows() {
            builder.push_row(table.columns().iter().map(|c| c.value(row)).collect());
        }
        for (target, row) in &batch.rows {
            if target == table_name {
                builder.push_row(row.clone());
            }
        }
        out.add_table(builder.finish());
    }
    for (target, _) in &batch.rows {
        assert!(
            db.table(target).is_some(),
            "update batch names unknown table {target:?}"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Database {
        let mut db = Database::new();
        let mut t = TableBuilder::new("T", &["a", "b"]);
        t.push_row(vec![Value::Int(1), Value::Int(10)]);
        t.push_row(vec![Value::Int(2), Value::Int(20)]);
        db.add_table(t.finish());
        let mut u = TableBuilder::new("U", &["a"]);
        u.push_row(vec![Value::Int(1)]);
        db.add_table(u.finish());
        db
    }

    #[test]
    fn append_grows_only_the_touched_table() {
        let db = base();
        let batch = UpdateBatch {
            step: 1,
            rows: vec![("T".into(), vec![Value::Int(3), Value::Int(30)])],
        };
        let next = apply_batch(&db, &batch);
        assert_eq!(next.table("T").unwrap().num_rows(), 3);
        assert_eq!(next.table("U").unwrap().num_rows(), 1);
        assert_eq!(
            next.table("T").unwrap().column("b").unwrap().value(2),
            Value::Int(30)
        );
        // The original snapshot is untouched (copy-on-append).
        assert_eq!(db.table("T").unwrap().num_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "unknown table")]
    fn unknown_table_is_a_bug() {
        let batch = UpdateBatch {
            step: 1,
            rows: vec![("nope".into(), vec![Value::Int(1)])],
        };
        apply_batch(&base(), &batch);
    }

    #[test]
    fn empty_batch_is_an_identity_copy() {
        let db = base();
        let next = apply_batch(
            &db,
            &UpdateBatch {
                step: 1,
                rows: vec![],
            },
        );
        assert!(UpdateBatch {
            step: 1,
            rows: vec![]
        }
        .is_empty());
        assert_eq!(next.table("T").unwrap().num_rows(), 2);
        assert_eq!(next.table("U").unwrap().num_rows(), 1);
    }
}
