//! The promotion controller: one loop closing ingest → drift → retrain → shadow →
//! promote.
//!
//! [`Pipeline::step`] advances the world by one batch and makes every decision for
//! it.  The ordering inside a promotion is the crash-consistency contract:
//!
//! 1. the candidate artifact is written and fsynced to disk,
//! 2. the promotion is appended (durably) to the registry journal —
//!    [`nc_serve::JournalEvent::promote`], which folds like a publish,
//! 3. only then does [`nc_serve::ModelRegistry::swap`] make the candidate current.
//!
//! A `kill -9` between any two of these restores consistently: before (2) the journal
//! still names the old incumbent; after (2) it names the promoted version, whose
//! artifact — written in (1) — is on disk and carries the [`neurocard::PromotionRecord`]
//! explaining the decision.  The journal is never behind the served state.
//!
//! Determinism: a [`StepReport`]'s [`StepReport::digest`] covers every decision input
//! and output, and excludes the report-only wall-clock fields; two runs of the same
//! config produce equal digest sequences, bit for bit.

use std::path::Path;
use std::sync::Arc;

use nc_sampler::seed::derive_stream_seed;
use nc_schema::JoinSchema;
use nc_serve::{
    JournalError, JournalEvent, ModelKey, ModelRegistry, ModelSelector, ServeError, SharedJournal,
};
use nc_storage::Database;
use neurocard::infer::SamplerScratch;
use neurocard::{schema_fingerprint, ModelArtifact, PromotionRecord};
use serde::Serialize;

use crate::config::PipelineConfig;
use crate::drift::{oracle_workload, DriftDetector};
use crate::ingest::{apply_batch, UpdateSource};
use crate::retrain::retrain_in_background;
use crate::shadow::{shadow_compare, ShadowReport};

/// Why the pipeline stopped.
#[derive(Debug)]
pub enum PipelineError {
    /// A registry operation failed.
    Serve(ServeError),
    /// A journal append failed (the mutation it guarded was not applied).
    Journal(JournalError),
    /// A candidate artifact failed to load back or to serialise.
    Artifact(String),
    /// Artifact file I/O failed.
    Io(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Serve(e) => write!(f, "registry error: {e}"),
            PipelineError::Journal(e) => write!(f, "journal error: {e}"),
            PipelineError::Artifact(msg) => write!(f, "artifact error: {msg}"),
            PipelineError::Io(msg) => write!(f, "artifact i/o error: {msg}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<ServeError> for PipelineError {
    fn from(e: ServeError) -> Self {
        PipelineError::Serve(e)
    }
}

impl From<JournalError> for PipelineError {
    fn from(e: JournalError) -> Self {
        PipelineError::Journal(e)
    }
}

/// Control-plane notifications, in decision order — the serving binary renders these
/// as progress markers (the library itself never prints).
#[derive(Debug, Clone)]
pub enum PipelineEvent {
    /// A step began.
    StepStarted(u64),
    /// The drift check concluded (fired or not).
    DriftChecked {
        /// The step.
        step: u64,
        /// Incumbent median q-error on this step's oracle.
        median_qerr: f64,
        /// Distribution shift against the last-retrain profile.
        shift: f64,
        /// Whether any signal fired.
        fired: bool,
    },
    /// A retrain attempt aborted (injected fault or trainer panic).
    RetrainAborted(String),
    /// The shadow comparison concluded.
    ShadowCompared(ShadowReport),
    /// The promotion was durably journaled; the registry swap happens next.
    PromotionJournaled(ModelKey),
    /// The swap completed; the candidate is now current.
    Promoted(ModelKey),
    /// The candidate lost (or lacked samples) and was retired.
    CandidateRetired(String),
}

/// Monotonic totals over a pipeline's life.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct PipelineCounters {
    /// Steps executed.
    pub steps: u64,
    /// Rows ingested from the update stream.
    pub ingested_rows: u64,
    /// Drift checks that fired.
    pub drift_detections: u64,
    /// Retrains that produced a candidate.
    pub retrains: u64,
    /// Retrain attempts aborted (fault or panic).
    pub retrain_aborts: u64,
    /// Shadow samples compared (both sides answered).
    pub shadow_comparisons: u64,
    /// Mirrored samples lost to `pipeline.shadow-drop`.
    pub shadow_drops: u64,
    /// Candidates promoted.
    pub promotions: u64,
    /// Candidates retired.
    pub retirements: u64,
    /// Non-finite / negative estimates seen anywhere (must stay 0).
    pub wrong_estimates: u64,
    /// Oracle queries the incumbent failed to answer.
    pub oracle_errors: u64,
}

/// Everything one step saw and decided.
#[derive(Debug, Clone, Serialize)]
pub struct StepReport {
    /// Step index (1-based).
    pub step: u64,
    /// Rows this step's batch appended.
    pub ingested_rows: u64,
    /// Total rows across all tables after ingest.
    pub total_rows: u64,
    /// Incumbent median q-error on this step's oracle sample.
    pub median_qerr: f64,
    /// Baseline median recorded at the last (re)train.
    pub baseline_qerr: f64,
    /// Distribution-shift metric.
    pub shift: f64,
    /// Oracle queries the incumbent could not answer.
    pub oracle_errors: u64,
    /// Whether drift fired this step.
    pub drift_fired: bool,
    /// Why the retrain aborted, when it did.
    pub retrain_aborted: Option<String>,
    /// The shadow comparison, when one ran.
    pub shadow: Option<ShadowReport>,
    /// The promoted key (rendered), when the candidate won.
    pub promoted: Option<String>,
    /// Why the candidate was retired, when it lost.
    pub retired: Option<String>,
    /// Wall-clock microseconds the retrain took (report-only).
    pub retrain_wall_us: u64,
}

impl StepReport {
    /// A replay digest over the *decision* fields: f64s as raw bits, wall-clock and
    /// latency fields excluded.  Two runs at the same config must produce equal
    /// digest sequences.
    pub fn digest(&self) -> String {
        let shadow = match &self.shadow {
            Some(s) => format!(
                "m{}d{}c{}i{:016x}g{:016x}w{}",
                s.mirrored,
                s.dropped,
                s.compared,
                s.incumbent_median_qerr.to_bits(),
                s.candidate_median_qerr.to_bits(),
                s.wrong_estimates
            ),
            None => "-".to_string(),
        };
        format!(
            "s{}:r{}:t{}:q{:016x}:b{:016x}:h{:016x}:e{}:f{}:a{:?}:S{}:P{:?}:R{:?}",
            self.step,
            self.ingested_rows,
            self.total_rows,
            self.median_qerr.to_bits(),
            self.baseline_qerr.to_bits(),
            self.shift.to_bits(),
            self.oracle_errors,
            self.drift_fired,
            self.retrain_aborted,
            shadow,
            self.promoted,
            self.retired
        )
    }
}

/// A whole run: per-step reports plus the counters.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineReport {
    /// Per-step reports, in order.
    pub steps: Vec<StepReport>,
    /// Totals.
    pub counters: PipelineCounters,
}

impl PipelineReport {
    /// The concatenated per-step [`StepReport::digest`] (the replay invariant).
    pub fn digest(&self) -> String {
        let parts: Vec<String> = self.steps.iter().map(|s| s.digest()).collect();
        parts.join("\n")
    }
}

/// The control plane for one served model name.
pub struct Pipeline<S: UpdateSource> {
    config: PipelineConfig,
    registry: Arc<ModelRegistry>,
    journal: Option<SharedJournal>,
    schema: Arc<JoinSchema>,
    db: Arc<Database>,
    source: S,
    detector: DriftDetector,
    scratch: SamplerScratch,
    fingerprint: u64,
    step: u64,
    counters: PipelineCounters,
}

fn write_artifact(path: &Path, artifact: &ModelArtifact) -> Result<(), PipelineError> {
    use std::io::Write;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| PipelineError::Io(format!("create {}: {e}", parent.display())))?;
        }
    }
    let mut file = std::fs::File::create(path)
        .map_err(|e| PipelineError::Io(format!("create {}: {e}", path.display())))?;
    file.write_all(&artifact.to_bytes())
        .map_err(|e| PipelineError::Io(format!("write {}: {e}", path.display())))?;
    // Durable before anything (journal, registry) references the path.
    file.sync_all()
        .map_err(|e| PipelineError::Io(format!("fsync {}: {e}", path.display())))?;
    Ok(())
}

fn total_rows(db: &Database) -> u64 {
    db.tables().map(|t| t.num_rows() as u64).sum()
}

impl<S: UpdateSource> Pipeline<S> {
    /// Builds the control plane over an already-registered incumbent.
    ///
    /// `registry` must hold `config.model_name` for `schema`'s fingerprint (the
    /// serving binary registers v1 before starting the pipeline).  The incumbent is
    /// scored on the step-0 oracle to seed the drift baseline, and the journal — when
    /// present — gets the configured compaction threshold installed.
    pub fn new(
        config: PipelineConfig,
        registry: Arc<ModelRegistry>,
        journal: Option<SharedJournal>,
        schema: Arc<JoinSchema>,
        db: Arc<Database>,
        source: S,
    ) -> Result<Self, PipelineError> {
        let fingerprint = schema_fingerprint(&schema);
        let mut scratch = SamplerScratch::new();
        let lease = registry.acquire(&ModelSelector::latest(
            fingerprint,
            config.model_name.as_str(),
        ))?;
        let oracle = oracle_workload(
            &db,
            &schema,
            derive_stream_seed(config.seed, 0, 0),
            config.oracle_sample,
        );
        let baseline = crate::drift::median_qerr(
            &oracle,
            |q| lease.estimate(q, None, &mut scratch).ok(),
            &mut SamplerScratch::new(),
        );
        drop(lease);
        if let Some(journal) = journal.as_ref() {
            journal.set_compact_threshold(config.journal_compact_bytes);
        }
        let detector = DriftDetector::new(&db, baseline);
        Ok(Pipeline {
            config,
            registry,
            journal,
            schema,
            db,
            source,
            detector,
            scratch,
            fingerprint,
            step: 0,
            counters: PipelineCounters::default(),
        })
    }

    /// The current snapshot.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// Totals so far.
    pub fn counters(&self) -> &PipelineCounters {
        &self.counters
    }

    /// One step with no observer.
    pub fn step(&mut self) -> Result<StepReport, PipelineError> {
        self.step_with(&mut |_| {})
    }

    /// Runs `n` steps, collecting the whole report.
    pub fn run(&mut self, n: u64) -> Result<PipelineReport, PipelineError> {
        let mut steps = Vec::with_capacity(n as usize);
        for _ in 0..n {
            steps.push(self.step()?);
        }
        Ok(PipelineReport {
            steps,
            counters: self.counters.clone(),
        })
    }

    fn append_journal(&self, event: &JournalEvent) -> Result<(), PipelineError> {
        match self.journal.as_ref() {
            Some(journal) => Ok(journal.append(event)?),
            None => Ok(()),
        }
    }

    /// Advances the world one batch and makes every decision for it, reporting each
    /// milestone through `observe` in order.
    pub fn step_with(
        &mut self,
        observe: &mut dyn FnMut(PipelineEvent),
    ) -> Result<StepReport, PipelineError> {
        self.step += 1;
        let step = self.step;
        observe(PipelineEvent::StepStarted(step));

        // 1. Ingest.
        let ingested = match self.source.next_batch() {
            Some(batch) => {
                self.db = Arc::new(apply_batch(&self.db, &batch));
                batch.len() as u64
            }
            None => 0,
        };

        // 2. Drift check against the live incumbent.
        let incumbent = self.registry.acquire(&ModelSelector::latest(
            self.fingerprint,
            self.config.model_name.as_str(),
        ))?;
        let scratch = &mut self.scratch;
        let (drift, _oracle) =
            self.detector
                .check(&self.db, &self.schema, &self.config, step, |q| {
                    incumbent.estimate(q, None, scratch).ok()
                });
        observe(PipelineEvent::DriftChecked {
            step,
            median_qerr: drift.median_qerr,
            shift: drift.shift,
            fired: drift.fired(),
        });
        self.counters.oracle_errors += drift.oracle_errors;

        let mut report = StepReport {
            step,
            ingested_rows: ingested,
            total_rows: total_rows(&self.db),
            median_qerr: drift.median_qerr,
            baseline_qerr: drift.baseline_qerr,
            shift: drift.shift,
            oracle_errors: drift.oracle_errors,
            drift_fired: drift.fired(),
            retrain_aborted: None,
            shadow: None,
            promoted: None,
            retired: None,
            retrain_wall_us: 0,
        };

        if drift.fired() {
            self.counters.drift_detections += 1;
            // 3. Background retrain on the drifted snapshot.
            let train_config =
                self.config
                    .model
                    .clone()
                    .with_seed(derive_stream_seed(self.config.seed, step, 2));
            let outcome = retrain_in_background(
                self.db.clone(),
                self.schema.clone(),
                train_config,
                &self.config.faults,
            );
            report.retrain_wall_us = outcome.wall_us;
            match outcome.artifact {
                None => {
                    let reason = outcome.aborted.unwrap_or_else(|| "unknown".to_string());
                    self.counters.retrain_aborts += 1;
                    observe(PipelineEvent::RetrainAborted(reason.clone()));
                    report.retrain_aborted = Some(reason);
                }
                Some(artifact) => {
                    self.counters.retrains += 1;
                    self.shadow_and_decide(step, &incumbent, artifact, &mut report, observe)?;
                }
            }
        }

        drop(incumbent);
        self.counters.steps += 1;
        self.counters.ingested_rows += ingested;
        // The injectable clock: chaos schedules pace the pipeline, not wall time.
        self.config.faults.sleep(self.config.step_pause);
        Ok(report)
    }

    /// Shadow-deploys `artifact`, compares it against the incumbent on mirrored
    /// traffic, and either promotes (journal-first) or retires it.
    fn shadow_and_decide(
        &mut self,
        step: u64,
        incumbent: &nc_serve::ModelLease,
        artifact: ModelArtifact,
        report: &mut StepReport,
        observe: &mut dyn FnMut(PipelineEvent),
    ) -> Result<(), PipelineError> {
        let config = &self.config;
        let core = Arc::new(
            artifact
                .to_core()
                .map_err(|e| PipelineError::Artifact(e.to_string()))?,
        );
        let candidate_path = config
            .artifact_dir
            .join(format!("{}.candidate-step{}.ncar", config.model_name, step));
        write_artifact(&candidate_path, &artifact)?;

        // Shadow registration is journaled like any publish: a crash while the
        // comparison runs restores the candidate too (still unrouted — `Latest`
        // selectors for the served name cannot see the shadow name).
        let shadow_name = config.shadow_name();
        let shadow_key = ModelKey::new(self.fingerprint, shadow_name.clone(), 1);
        self.append_journal(&JournalEvent::publish(
            &shadow_key,
            candidate_path.to_string_lossy().as_ref(),
        ))?;
        let registered = self
            .registry
            .register_core(shadow_name.as_str(), core.clone())?;
        debug_assert_eq!(registered, shadow_key);
        let candidate = self.registry.acquire(&ModelSelector::Exact(shadow_key))?;

        // 4. Mirrored traffic: fresh workload, seeded mirror draws.
        let traffic = oracle_workload(
            &self.db,
            &self.schema,
            derive_stream_seed(config.seed, step, 3),
            config.oracle_sample,
        );
        let shadow = shadow_compare(
            incumbent,
            &candidate,
            &traffic,
            derive_stream_seed(config.seed, step, 4),
            config.mirror_per_mille,
            &config.faults,
            &mut self.scratch,
        );
        drop(candidate);
        observe(PipelineEvent::ShadowCompared(shadow.clone()));
        self.counters.shadow_comparisons += shadow.compared;
        self.counters.shadow_drops += shadow.dropped;
        self.counters.wrong_estimates += shadow.wrong_estimates;

        // 5. The promotion gate.
        let enough = shadow.compared >= config.min_shadow_samples;
        let wins =
            shadow.incumbent_median_qerr >= config.promote_margin * shadow.candidate_median_qerr;
        if enough && wins {
            let incumbent_version = incumbent.key().version;
            let promoted_key = ModelKey::new(
                self.fingerprint,
                config.model_name.clone(),
                self.registry
                    .latest(self.fingerprint, &config.model_name)
                    .map_or(1, |k| k.version + 1),
            );
            let record = PromotionRecord {
                pipeline_seed: format!("{:016x}", config.seed),
                step,
                incumbent_version,
                shadow_samples: shadow.compared,
                incumbent_median_qerr: shadow.incumbent_median_qerr,
                candidate_median_qerr: shadow.candidate_median_qerr,
                promote_margin: config.promote_margin,
                qerr_regression_threshold: config.qerr_regression_threshold,
                verdict: "promoted".to_string(),
            };
            let promoted = artifact.with_promotion(record);
            let promoted_path = config.artifact_dir.join(format!(
                "{}-v{}.ncar",
                config.model_name, promoted_key.version
            ));
            write_artifact(&promoted_path, &promoted)?;
            // Write-ahead: the journal names the promoted version before the swap,
            // so a crash in between restores the *promoted* state (its artifact is
            // already durable) — the journal is never behind the served state.
            self.append_journal(&JournalEvent::promote(
                &promoted_key,
                promoted_path.to_string_lossy().as_ref(),
            ))?;
            observe(PipelineEvent::PromotionJournaled(promoted_key.clone()));
            let receipt = self
                .registry
                .swap(self.fingerprint, &config.model_name, core)?;
            debug_assert_eq!(receipt.new, promoted_key);
            observe(PipelineEvent::Promoted(promoted_key.clone()));
            self.counters.promotions += 1;
            report.promoted = Some(promoted_key.to_string());
            self.detector
                .rebaseline(&self.db, shadow.candidate_median_qerr);
        } else {
            let reason = if !enough {
                format!(
                    "insufficient shadow samples ({} < {})",
                    shadow.compared, config.min_shadow_samples
                )
            } else {
                format!(
                    "candidate lost (median {:.4} vs incumbent {:.4}, margin {})",
                    shadow.candidate_median_qerr,
                    shadow.incumbent_median_qerr,
                    config.promote_margin
                )
            };
            self.counters.retirements += 1;
            observe(PipelineEvent::CandidateRetired(reason.clone()));
            report.retired = Some(reason);
        }

        // Retire the shadow registration either way (journaled, write-ahead).
        self.append_journal(&JournalEvent::deregister(
            self.fingerprint,
            shadow_name.as_str(),
        ))?;
        self.registry.deregister(self.fingerprint, &shadow_name)?;
        report.shadow = Some(shadow);
        Ok(())
    }
}
