//! Rolling per-column statistics and the distribution-shift metric.
//!
//! The drift detector's *model-free* signal: a [`ColumnProfile`] summarises each
//! column of a snapshot, and [`shift_metric`] measures how far the current snapshot's
//! profiles have moved from the reference recorded at the last retrain.  The metric is
//! a pure function of the data, so shift decisions replay bit-identically.

use std::collections::{BTreeMap, HashSet};

use nc_storage::{Database, Value};

/// Summary statistics of one column (deterministic; no sampling).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnProfile {
    /// Total rows (including NULLs).
    pub rows: u64,
    /// NULL count.
    pub nulls: u64,
    /// Distinct non-NULL values.
    pub distinct: u64,
    /// Mean of non-NULL integer values (0 for string columns).
    pub mean: f64,
    /// Population standard deviation of non-NULL integer values (0 for strings).
    pub std: f64,
}

/// Profiles every column of every table, keyed `"table.column"` (BTreeMap so
/// iteration — and therefore every downstream fold — is deterministic).
pub fn profile_database(db: &Database) -> BTreeMap<String, ColumnProfile> {
    let mut out = BTreeMap::new();
    let mut names: Vec<&str> = db.table_names();
    names.sort_unstable();
    for table_name in names {
        let table = match db.table(table_name) {
            Some(t) => t,
            None => continue,
        };
        for column in table.columns() {
            let mut nulls = 0u64;
            let mut distinct: HashSet<Value> = HashSet::new();
            let mut count = 0u64;
            let mut sum = 0.0f64;
            let mut sum_sq = 0.0f64;
            for value in column.iter() {
                match value {
                    Value::Null => nulls += 1,
                    Value::Int(i) => {
                        distinct.insert(Value::Int(i));
                        count += 1;
                        let x = i as f64;
                        sum += x;
                        sum_sq += x * x;
                    }
                    other => {
                        distinct.insert(other);
                    }
                }
            }
            let mean = if count > 0 { sum / count as f64 } else { 0.0 };
            let var = if count > 0 {
                (sum_sq / count as f64 - mean * mean).max(0.0)
            } else {
                0.0
            };
            out.insert(
                format!("{table_name}.{}", column.name()),
                ColumnProfile {
                    rows: column.len() as u64,
                    nulls,
                    distinct: distinct.len() as u64,
                    mean,
                    std: var.sqrt(),
                },
            );
        }
    }
    out
}

/// Standardised distribution movement between two profiles: the maximum over shared
/// columns of `|Δmean| / max(std_ref, 1e-6)` (integer columns) and the relative
/// distinct-count growth `|Δdistinct| / max(distinct_ref, 1)` (all columns).
///
/// Columns present in only one profile are ignored — schema changes are a retrain
/// trigger upstream of this metric, not a "shift".
pub fn shift_metric(
    reference: &BTreeMap<String, ColumnProfile>,
    current: &BTreeMap<String, ColumnProfile>,
) -> f64 {
    let mut shift = 0.0f64;
    for (name, reference) in reference {
        let current = match current.get(name) {
            Some(c) => c,
            None => continue,
        };
        let mean_shift = (current.mean - reference.mean).abs() / reference.std.max(1e-6);
        let distinct_shift = (current.distinct as f64 - reference.distinct as f64).abs()
            / (reference.distinct.max(1) as f64);
        shift = shift.max(mean_shift).max(distinct_shift);
    }
    shift
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_storage::TableBuilder;

    fn db_with_c(values: &[i64]) -> Database {
        let mut db = Database::new();
        let mut t = TableBuilder::new("T", &["c"]);
        for &v in values {
            t.push_row(vec![Value::Int(v)]);
        }
        db.add_table(t.finish());
        db
    }

    #[test]
    fn profile_counts_and_moments() {
        let db = db_with_c(&[1, 2, 3, 2]);
        let profile = profile_database(&db);
        let c = &profile["T.c"];
        assert_eq!(c.rows, 4);
        assert_eq!(c.nulls, 0);
        assert_eq!(c.distinct, 3);
        assert!((c.mean - 2.0).abs() < 1e-12);
        assert!(c.std > 0.0);
    }

    #[test]
    fn shift_is_zero_on_identical_and_large_on_moved() {
        let a = profile_database(&db_with_c(&[0, 1, 2, 3, 4, 5]));
        let b = profile_database(&db_with_c(&[100, 101, 102, 103, 104, 105]));
        assert_eq!(shift_metric(&a, &a), 0.0);
        assert!(
            shift_metric(&a, &b) > 10.0,
            "a 100-sigma-ish move registers"
        );
    }

    #[test]
    fn shift_ignores_columns_missing_on_either_side() {
        let a = profile_database(&db_with_c(&[1, 2]));
        let empty = BTreeMap::new();
        assert_eq!(shift_metric(&a, &empty), 0.0);
        assert_eq!(shift_metric(&empty, &a), 0.0);
    }
}
