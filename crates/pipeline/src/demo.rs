//! A seeded two-table environment with a drifting update stream.
//!
//! The demo models the paper's §6.6 update experiment as a stream: a fact table
//! (`orders`) joining a dimension (`users`), whose post-drift batches introduce both
//! *new join keys* (users 8–9 appear and orders skew onto them) and *new literal
//! values* (`cat` jumps into the 40s) — exactly the movement a model trained on the
//! base snapshot cannot have learned.  Every row derives from the seed via SplitMix64,
//! so the whole scenario — and therefore every pipeline decision downstream of it —
//! replays bit-identically.

use std::sync::Arc;

use nc_sampler::seed::{derive_stream_seed, splitmix64_mix, GOLDEN_GAMMA};
use nc_schema::{JoinEdge, JoinSchema};
use nc_storage::{Database, TableBuilder, Value};

use crate::ingest::{UpdateBatch, UpdateSource};

/// The demo database and its join schema.
pub struct DemoEnv {
    /// Base snapshot (160 orders over 8 users).
    pub db: Arc<Database>,
    /// `orders ⋈ users` on `user`, rooted at `orders`.
    pub schema: Arc<JoinSchema>,
}

/// Builds the base snapshot: `orders(user, cat)` with `user ∈ 0..8`, `cat ∈ 0..5`,
/// and `users(user, tier)` with one row per user.
pub fn demo_env(seed: u64) -> DemoEnv {
    let mut db = Database::new();
    let mut orders = TableBuilder::new("orders", &["user", "cat"]);
    for i in 0..160u64 {
        let draw = splitmix64_mix(seed ^ i.wrapping_add(GOLDEN_GAMMA));
        orders.push_row(vec![
            Value::Int((draw % 8) as i64),
            Value::Int(((draw >> 16) % 5) as i64),
        ]);
    }
    db.add_table(orders.finish());
    let mut users = TableBuilder::new("users", &["user", "tier"]);
    for user in 0..8i64 {
        users.push_row(vec![Value::Int(user), Value::Int(user % 3)]);
    }
    db.add_table(users.finish());
    let schema = JoinSchema::new(
        vec!["orders".into(), "users".into()],
        vec![JoinEdge::parse("orders.user", "users.user")],
        "orders",
    )
    .expect("demo schema is valid");
    DemoEnv {
        db: Arc::new(db),
        schema: Arc::new(schema),
    }
}

/// The drifting stream: same-distribution batches until `drift_at`, then skewed ones.
///
/// Pre-drift batches are statistically indistinguishable from the base snapshot.
/// From step `drift_at` on, orders concentrate on the two *new* users 8–9 (inserted
/// into `users` by the first drifted batch) with `cat ∈ 40..50` — a shift the drift
/// detector sees both as raw distribution movement and as q-error regression once
/// oracle literals start landing on values the incumbent never trained on.
pub struct DriftingSource {
    seed: u64,
    rows_per_batch: usize,
    drift_at: u64,
    produced: u64,
}

impl DriftingSource {
    /// A stream drifting at step `drift_at` (the stream itself is unbounded; the
    /// pipeline decides how many steps to run).
    pub fn new(seed: u64, drift_at: u64) -> Self {
        DriftingSource {
            seed,
            rows_per_batch: 40,
            drift_at,
            produced: 0,
        }
    }
}

impl UpdateSource for DriftingSource {
    fn next_batch(&mut self) -> Option<UpdateBatch> {
        self.produced += 1;
        let step = self.produced;
        let stream = derive_stream_seed(self.seed, step, 1);
        let mut rows: Vec<(String, Vec<Value>)> = Vec::with_capacity(self.rows_per_batch + 2);
        if step == self.drift_at {
            // The dimension grows first so the skewed fact rows still inner-join.
            for user in 8..10i64 {
                rows.push(("users".into(), vec![Value::Int(user), Value::Int(user % 3)]));
            }
        }
        for i in 0..self.rows_per_batch as u64 {
            let draw = splitmix64_mix(stream ^ i.wrapping_add(GOLDEN_GAMMA));
            let row = if step >= self.drift_at {
                vec![
                    Value::Int(8 + (draw % 2) as i64),
                    Value::Int(40 + ((draw >> 16) % 10) as i64),
                ]
            } else {
                vec![
                    Value::Int((draw % 8) as i64),
                    Value::Int(((draw >> 16) % 5) as i64),
                ]
            };
            rows.push(("orders".into(), row));
        }
        Some(UpdateBatch { step, rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::apply_batch;
    use crate::stats::{profile_database, shift_metric};

    #[test]
    fn env_is_seed_deterministic() {
        let a = demo_env(21);
        let b = demo_env(21);
        for table in ["orders", "users"] {
            let (ta, tb) = (a.db.table(table).unwrap(), b.db.table(table).unwrap());
            assert_eq!(ta.num_rows(), tb.num_rows());
            for row in 0..ta.num_rows() {
                for col in ta.column_names() {
                    assert_eq!(
                        ta.column(col).unwrap().value(row),
                        tb.column(col).unwrap().value(row)
                    );
                }
            }
        }
    }

    #[test]
    fn pre_drift_batches_barely_move_the_profile_and_drifted_ones_slam_it() {
        let env = demo_env(21);
        let reference = profile_database(&env.db);
        let mut source = DriftingSource::new(21, 3);
        let calm = apply_batch(&env.db, &source.next_batch().unwrap());
        assert!(
            shift_metric(&reference, &profile_database(&calm)) < 1.0,
            "pre-drift batches stay close to the base distribution"
        );
        let _ = source.next_batch();
        let drifted = apply_batch(&calm, &source.next_batch().unwrap());
        assert!(
            shift_metric(&reference, &profile_database(&drifted)) > 4.0,
            "the first drifted batch moves cat by several reference sigmas"
        );
        assert_eq!(drifted.table("users").unwrap().num_rows(), 10);
    }
}
