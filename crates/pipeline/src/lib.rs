//! # nc-pipeline
//!
//! The continuous-retraining control plane: the loop that keeps a served NeuroCard
//! model honest as its underlying data changes.  NeuroCard's §6.6 update experiment
//! (retrain-on-append for the DMV table) is a one-shot measurement; this crate closes
//! the loop operationally, the way ByteCard and Scardina (PAPERS.md) argue a learned
//! estimator must be deployed:
//!
//! 1. **Ingest** ([`ingest`]): a seeded update stream appends row batches to the live
//!    [`nc_storage::Database`] snapshot; per-column rolling statistics ([`stats`])
//!    track distribution movement.
//! 2. **Detect** ([`drift`]): each step, the incumbent model is scored on a rolling
//!    oracle sample (generated workload + exact [`nc_exec::true_cardinality`]
//!    answers).  Drift fires on q-error regression against the baseline recorded at
//!    the last (re)train, or on raw distribution shift — both thresholds typed in
//!    [`PipelineConfig`], both decisions pure functions of the seeded stream.
//! 3. **Retrain** ([`retrain`]): a candidate is trained on the drifted snapshot on a
//!    background thread (serving threads never block on training), emitting a
//!    [`neurocard::ModelArtifact`].
//! 4. **Shadow-deploy** ([`shadow`]): the candidate registers under a shadow name no
//!    [`nc_serve::ModelSelector::Latest`] ever routes to, and a configurable fraction
//!    of traffic is mirrored to it through a second lease; per-query q-error (and
//!    report-only latency) are compared against the incumbent.
//! 5. **Promote** ([`pipeline`]): only when the candidate beats the incumbent by the
//!    configured margin over enough mirrored samples does the controller swap it in —
//!    write-ahead journaling the promotion ([`nc_serve::JournalEvent::promote`]) and
//!    stamping the decision into the new artifact's manifest
//!    ([`neurocard::PromotionRecord`]), so a `kill -9` at any point restores a
//!    consistent registry and the promoted artifact explains itself.
//!
//! **Determinism:** every decision (drift verdicts, retrain seeds, mirror draws,
//! promotion verdicts) derives from `(PipelineConfig::seed, step)` via the workspace
//! SplitMix64 streams.  Replaying a pipeline at the same seed reproduces bit-identical
//! [`StepReport`] digests; wall-clock only ever lands in report-only latency fields.
//! All pacing waits go through [`nc_serve::FaultInjector::sleep`], the injectable
//! clock, so chaos schedules stay replayable too.

pub mod config;
pub mod demo;
pub mod drift;
pub mod ingest;
pub mod pipeline;
pub mod retrain;
pub mod shadow;
pub mod stats;

pub use config::PipelineConfig;
pub use demo::{demo_env, DemoEnv, DriftingSource};
pub use drift::{oracle_workload, DriftDetector, DriftReport, OracleCase};
pub use ingest::{apply_batch, UpdateBatch, UpdateSource};
pub use pipeline::{
    Pipeline, PipelineCounters, PipelineError, PipelineEvent, PipelineReport, StepReport,
};
pub use retrain::{retrain_in_background, RetrainOutcome};
pub use shadow::{shadow_compare, ShadowReport};
pub use stats::{profile_database, shift_metric, ColumnProfile};
