//! Background retraining: producing a candidate artifact off the serving threads.
//!
//! Training runs on a dedicated spawned thread and is *joined* by the pipeline step —
//! the registry's serving threads never participate, and the pipeline's control flow
//! stays sequential and replayable.  The candidate's weights are a pure function of
//! `(training config, snapshot)`, so a replayed retrain emits bit-identical artifact
//! bytes.
//!
//! The `pipeline.retrain-fail` fault point aborts an attempt before it starts
//! (modelling a trainer OOM / preemption); the pipeline records the abort and tries
//! again on the next fired drift check, exactly like a production retrain queue.

use std::sync::Arc;
use std::time::Instant;

use nc_schema::JoinSchema;
use nc_serve::FaultInjector;
use nc_storage::Database;
use neurocard::{ModelArtifact, NeuroCard, NeuroCardConfig};

/// What one retrain attempt produced.
#[derive(Debug)]
pub struct RetrainOutcome {
    /// The candidate artifact (`None` when the attempt aborted).
    pub artifact: Option<ModelArtifact>,
    /// Why the attempt aborted (injected fault or trainer panic), if it did.
    pub aborted: Option<String>,
    /// Wall-clock microseconds spent (report-only; never feeds a decision).
    pub wall_us: u64,
}

/// Trains a candidate on `db` on a background thread and waits for it.
///
/// `faults` is probed at `pipeline.retrain-fail` before spawning; a firing aborts the
/// attempt.  A trainer panic is caught at the join and reported as an abort too — a
/// failed retrain must never take the pipeline (or the serving process) down.
pub fn retrain_in_background(
    db: Arc<Database>,
    schema: Arc<JoinSchema>,
    config: NeuroCardConfig,
    faults: &FaultInjector,
) -> RetrainOutcome {
    let started = Instant::now();
    if let Some(msg) = faults.fail("pipeline.retrain-fail") {
        return RetrainOutcome {
            artifact: None,
            aborted: Some(msg),
            wall_us: started.elapsed().as_micros() as u64,
        };
    }
    let handle = std::thread::Builder::new()
        .name("nc-pipeline-retrain".to_string())
        .spawn(move || NeuroCard::train(db, schema, &config))
        .expect("spawn retrain thread");
    match handle.join() {
        Ok(artifact) => RetrainOutcome {
            artifact: Some(artifact),
            aborted: None,
            wall_us: started.elapsed().as_micros() as u64,
        },
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "trainer panicked".to_string());
            RetrainOutcome {
                artifact: None,
                aborted: Some(format!("trainer panic: {msg}")),
                wall_us: started.elapsed().as_micros() as u64,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::demo_env;

    #[test]
    fn retrains_deterministically_off_thread() {
        let env = demo_env(3);
        let config = NeuroCardConfig::tiny()
            .with_training_tuples(300)
            .with_seed(9);
        let faults = FaultInjector::disabled();
        let a = retrain_in_background(env.db.clone(), env.schema.clone(), config.clone(), &faults);
        let b = retrain_in_background(env.db.clone(), env.schema.clone(), config, &faults);
        let (a, b) = (a.artifact.expect("trains"), b.artifact.expect("trains"));
        assert_eq!(
            a.to_bytes(),
            b.to_bytes(),
            "same config + snapshot → bit-identical candidate artifacts"
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    fn injected_failure_aborts_without_training() {
        use nc_serve::FaultPlan;
        let env = demo_env(3);
        // Per-mille 1000: every draw fires.
        let faults = FaultPlan::new(1)
            .point("pipeline.retrain-fail", 1000)
            .injector();
        let outcome = retrain_in_background(
            env.db.clone(),
            env.schema.clone(),
            NeuroCardConfig::tiny().with_training_tuples(300),
            &faults,
        );
        assert!(outcome.artifact.is_none());
        assert!(outcome.aborted.unwrap().contains("pipeline.retrain-fail"));
    }
}
