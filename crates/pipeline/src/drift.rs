//! Drift detection: scoring the incumbent against a rolling oracle sample.
//!
//! Each step the detector regenerates a small workload against the *current*
//! snapshot (so filter literals track live data — the whole point when the stream
//! introduces values the incumbent has never seen), answers it exactly with
//! [`nc_exec::true_cardinality`], and scores the incumbent's median q-error.  Drift
//! fires on either signal:
//!
//! * **q-error regression** — median reaches `baseline × qerr_regression_threshold`,
//!   where the baseline was recorded at the last (re)train;
//! * **distribution shift** — the model-free [`crate::shift_metric`] against the
//!   profile at the last retrain reaches `shift_threshold` (catches drift before the
//!   estimator degrades, e.g. a fresh key range that no current query filters on).
//!
//! The oracle workload derives from `(seed, step)` alone, so a replay regenerates the
//! same queries, the same truths, and the same verdicts.

use std::collections::BTreeMap;
use std::sync::Arc;

use nc_sampler::seed::derive_stream_seed;
use nc_schema::{JoinSchema, Query};
use nc_storage::{Database, Value};
use nc_workloads::generator::{
    add_filter_from_literal, draw_inner_join_tuple, random_connected_subtree,
};
use nc_workloads::qerror::{q_error, ErrorSummary};
use neurocard::infer::SamplerScratch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::PipelineConfig;
use crate::stats::{profile_database, shift_metric, ColumnProfile};

/// One oracle query with its exact answer on the snapshot it was drawn from.
#[derive(Debug, Clone)]
pub struct OracleCase {
    /// The query.
    pub query: Query,
    /// Exact cardinality on the generating snapshot.
    pub truth: f64,
}

/// Generates `n` oracle cases against `db`, deterministically from `seed`.
///
/// Each case joins a random connected subtree (1–2 tables), filters on up to two
/// columns using literals drawn from a real inner-join tuple (so predicates are never
/// vacuously empty), and carries its exact cardinality.  Join-key columns are never
/// filtered: the estimator factors them out of its learned columns (they only exist
/// to the model through fanout scaling), so a predicate on one is unanswerable by
/// construction and would pollute the error signal.  Draws that land on an empty
/// join fall back to the unfiltered root-table query, keeping the case count fixed.
pub fn oracle_workload(
    db: &Arc<Database>,
    schema: &JoinSchema,
    seed: u64,
    n: usize,
) -> Vec<OracleCase> {
    let join_keys: std::collections::BTreeSet<(&str, &str)> = schema
        .edges()
        .iter()
        .flat_map(|e| [&e.left, &e.right])
        .map(|r| (r.table.as_str(), r.column.as_str()))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let size = 1 + rng.random_range(0..2usize.min(schema.tables().len()));
        let tables = random_connected_subtree(schema, size, &mut rng);
        let refs: Vec<&str> = tables.iter().map(|s| s.as_str()).collect();
        let mut query = Query::join(&refs);
        if let Some(tuple) = draw_inner_join_tuple(db, schema, &tables, &mut rng, 32) {
            let mut keys: Vec<&(String, String)> = tuple
                .keys()
                .filter(|(t, c)| !join_keys.contains(&(t.as_str(), c.as_str())))
                .collect();
            keys.sort();
            let filters = 1 + rng.random_range(0..2usize);
            for _ in 0..filters.min(keys.len()) {
                let (table, column) = keys.remove(rng.random_range(0..keys.len()));
                let literal = &tuple[&(table.clone(), column.clone())];
                let supports_range = matches!(literal, Value::Int(_));
                query = add_filter_from_literal(
                    query,
                    table,
                    column,
                    supports_range,
                    literal,
                    &mut rng,
                );
            }
        }
        let truth = nc_exec::true_cardinality(db, schema, &query) as f64;
        out.push(OracleCase { query, truth });
    }
    out
}

/// What one drift check saw and decided.
#[derive(Debug, Clone)]
pub struct DriftReport {
    /// Incumbent median q-error on this step's oracle sample.
    pub median_qerr: f64,
    /// The baseline median recorded at the last (re)train.
    pub baseline_qerr: f64,
    /// Distribution-shift metric against the last-retrain profile.
    pub shift: f64,
    /// Oracle queries the incumbent failed to answer (errors count toward drift: a
    /// model that cannot serve the live workload needs retraining).
    pub oracle_errors: u64,
    /// Whether the q-error signal fired.
    pub qerr_fired: bool,
    /// Whether the shift signal fired.
    pub shift_fired: bool,
}

impl DriftReport {
    /// Whether the detector fired at all (any signal).
    pub fn fired(&self) -> bool {
        self.qerr_fired || self.shift_fired || self.oracle_errors > 0
    }
}

/// The stateful detector: remembers the q-error baseline and column profile recorded
/// at the last retrain, and scores the incumbent each step.
pub struct DriftDetector {
    baseline_qerr: f64,
    reference: BTreeMap<String, ColumnProfile>,
}

impl DriftDetector {
    /// A detector baselined on `db` with `baseline_qerr` (the incumbent's median on
    /// the training-time oracle).
    pub fn new(db: &Database, baseline_qerr: f64) -> Self {
        DriftDetector {
            baseline_qerr: baseline_qerr.max(1.0),
            reference: profile_database(db),
        }
    }

    /// The current q-error baseline.
    pub fn baseline_qerr(&self) -> f64 {
        self.baseline_qerr
    }

    /// Re-baselines after a (re)train: the new incumbent's median becomes the
    /// regression reference and `db`'s profile the shift reference.
    pub fn rebaseline(&mut self, db: &Database, baseline_qerr: f64) {
        self.baseline_qerr = baseline_qerr.max(1.0);
        self.reference = profile_database(db);
    }

    /// Scores `estimate` (the incumbent) on this step's oracle sample and decides.
    ///
    /// `estimate` returns `None` for a query the model rejects; those count as
    /// `oracle_errors` and themselves fire the detector.
    pub fn check(
        &self,
        db: &Arc<Database>,
        schema: &JoinSchema,
        config: &PipelineConfig,
        step: u64,
        mut estimate: impl FnMut(&Query) -> Option<f64>,
    ) -> (DriftReport, Vec<OracleCase>) {
        let oracle_seed = derive_stream_seed(config.seed, step, 0);
        let oracle = oracle_workload(db, schema, oracle_seed, config.oracle_sample);
        let mut errors = Vec::with_capacity(oracle.len());
        let mut oracle_errors = 0u64;
        for case in &oracle {
            match estimate(&case.query) {
                Some(est) => errors.push(q_error(est, case.truth)),
                None => oracle_errors += 1,
            }
        }
        let median_qerr = if errors.is_empty() {
            f64::INFINITY
        } else {
            ErrorSummary::from_errors(&errors).median
        };
        let shift = shift_metric(&self.reference, &profile_database(db));
        let report = DriftReport {
            median_qerr,
            baseline_qerr: self.baseline_qerr,
            shift,
            oracle_errors,
            qerr_fired: median_qerr >= self.baseline_qerr * config.qerr_regression_threshold,
            shift_fired: shift >= config.shift_threshold,
        };
        (report, oracle)
    }
}

/// Convenience: the incumbent's median q-error over `oracle` through `scratch`
/// (used to compute baselines right after a train).
pub fn median_qerr(
    oracle: &[OracleCase],
    mut estimate: impl FnMut(&Query) -> Option<f64>,
    _scratch: &mut SamplerScratch,
) -> f64 {
    let errors: Vec<f64> = oracle
        .iter()
        .filter_map(|case| estimate(&case.query).map(|est| q_error(est, case.truth)))
        .collect();
    if errors.is_empty() {
        f64::INFINITY
    } else {
        ErrorSummary::from_errors(&errors).median
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::demo_env;

    #[test]
    fn oracle_workload_is_deterministic_and_answered() {
        let env = demo_env(11);
        let a = oracle_workload(&env.db, &env.schema, 42, 12);
        let b = oracle_workload(&env.db, &env.schema, 42, 12);
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(format!("{}", x.query), format!("{}", y.query));
            assert_eq!(x.truth.to_bits(), y.truth.to_bits());
        }
        let c = oracle_workload(&env.db, &env.schema, 43, 12);
        let differs = a
            .iter()
            .zip(&c)
            .any(|(x, y)| format!("{}", x.query) != format!("{}", y.query));
        assert!(differs, "different seeds draw different workloads");
    }

    #[test]
    fn perfect_estimator_never_fires_qerr() {
        let env = demo_env(11);
        let config = PipelineConfig::new(7, "/tmp/unused");
        let detector = DriftDetector::new(&env.db, 1.0);
        let (report, oracle) = detector.check(&env.db, &env.schema, &config, 1, |q| {
            Some(nc_exec::true_cardinality(&env.db, &env.schema, q) as f64)
        });
        assert_eq!(oracle.len(), config.oracle_sample);
        assert_eq!(report.oracle_errors, 0);
        assert!((report.median_qerr - 1.0).abs() < 1e-12);
        assert!(!report.qerr_fired);
        assert!(!report.shift_fired, "same snapshot cannot shift");
        assert!(!report.fired());
    }

    #[test]
    fn rejecting_estimator_fires_via_errors() {
        let env = demo_env(11);
        let config = PipelineConfig::new(7, "/tmp/unused");
        let detector = DriftDetector::new(&env.db, 1.0);
        let (report, _) = detector.check(&env.db, &env.schema, &config, 1, |_| None);
        assert!(report.oracle_errors > 0);
        assert!(report.fired());
    }
}
