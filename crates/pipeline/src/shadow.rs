//! Shadow comparison: mirroring traffic to an unrouted candidate.
//!
//! The candidate registers under the shadow name (`"{name}.shadow"`), which no
//! `Latest` selector for the served name ever resolves to — production routing is
//! untouched while the comparison runs.  A configurable per-mille of traffic is
//! mirrored: the incumbent serves every query (it *is* production), and mirrored
//! queries are additionally answered by the candidate through a second lease, with
//! per-query q-error (decision input) and latency (report-only) recorded for both.
//!
//! Mirror draws derive from the pipeline seed and the query index — not from time,
//! not from load — so the exact mirrored subset replays.  The `pipeline.shadow-drop`
//! fault point models a lost mirror sample: the query still serves, the comparison
//! just loses that data point (and the promotion gate's `min_shadow_samples` guards
//! against deciding on too few survivors).

use std::time::Instant;

use nc_sampler::seed::{splitmix64_mix, GOLDEN_GAMMA};
use nc_serve::{FaultInjector, ModelLease};
use nc_workloads::qerror::{q_error, ErrorSummary};
use neurocard::infer::SamplerScratch;
use serde::Serialize;

use crate::drift::OracleCase;

/// The outcome of one shadow comparison window.
#[derive(Debug, Clone, Serialize)]
pub struct ShadowReport {
    /// Queries the mirror draw selected.
    pub mirrored: u64,
    /// Mirrored queries lost to the `pipeline.shadow-drop` fault.
    pub dropped: u64,
    /// Samples actually compared (both sides answered).
    pub compared: u64,
    /// Incumbent median q-error over the compared samples.
    pub incumbent_median_qerr: f64,
    /// Candidate median q-error over the compared samples.
    pub candidate_median_qerr: f64,
    /// Estimates that came back non-finite or negative from either side (must stay 0;
    /// surfaced so benches can assert it).
    pub wrong_estimates: u64,
    /// Incumbent p99 latency in microseconds (report-only).
    pub incumbent_p99_us: u64,
    /// Candidate p99 latency in microseconds (report-only).
    pub candidate_p99_us: u64,
}

fn p99_us(mut samples: Vec<u64>) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let rank = ((samples.len() as f64) * 0.99).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

/// Serves `cases` on the incumbent and mirrors a seeded subset to the candidate.
///
/// `mirror_seed` should derive from `(config.seed, step)`; the i-th case mirrors when
/// `splitmix64_mix(mirror_seed ^ (i + GOLDEN_GAMMA)) % 1000 < mirror_per_mille`.
pub fn shadow_compare(
    incumbent: &ModelLease,
    candidate: &ModelLease,
    cases: &[OracleCase],
    mirror_seed: u64,
    mirror_per_mille: u32,
    faults: &FaultInjector,
    scratch: &mut SamplerScratch,
) -> ShadowReport {
    let mut mirrored = 0u64;
    let mut dropped = 0u64;
    let mut wrong = 0u64;
    let mut incumbent_errs = Vec::new();
    let mut candidate_errs = Vec::new();
    let mut incumbent_lat = Vec::new();
    let mut candidate_lat = Vec::new();
    for (i, case) in cases.iter().enumerate() {
        // Production serve: the incumbent answers every query regardless of the
        // mirror draw (latency is measured around the estimate only).
        let started = Instant::now();
        let incumbent_est = incumbent.estimate(&case.query, None, scratch).ok();
        incumbent_lat.push(started.elapsed().as_micros() as u64);
        let draw = splitmix64_mix(mirror_seed ^ (i as u64).wrapping_add(GOLDEN_GAMMA));
        if draw % 1000 >= u64::from(mirror_per_mille) {
            continue;
        }
        mirrored += 1;
        if faults.fires("pipeline.shadow-drop") {
            dropped += 1;
            continue;
        }
        let started = Instant::now();
        let candidate_est = candidate.estimate(&case.query, None, scratch).ok();
        candidate_lat.push(started.elapsed().as_micros() as u64);
        match (incumbent_est, candidate_est) {
            (Some(inc), Some(cand)) => {
                if !inc.is_finite() || inc < 0.0 || !cand.is_finite() || cand < 0.0 {
                    wrong += 1;
                    continue;
                }
                incumbent_errs.push(q_error(inc, case.truth));
                candidate_errs.push(q_error(cand, case.truth));
            }
            // A side that errors loses the sample: the comparison only scores
            // queries both models answered (an incumbent that *cannot* answer
            // already fired the drift detector's error counter upstream).
            _ => {}
        }
    }
    let median = |errs: &[f64]| {
        if errs.is_empty() {
            f64::INFINITY
        } else {
            ErrorSummary::from_errors(errs).median
        }
    };
    ShadowReport {
        mirrored,
        dropped,
        compared: incumbent_errs.len() as u64,
        incumbent_median_qerr: median(&incumbent_errs),
        candidate_median_qerr: median(&candidate_errs),
        wrong_estimates: wrong,
        incumbent_p99_us: p99_us(incumbent_lat),
        candidate_p99_us: p99_us(candidate_lat),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::demo_env;
    use crate::drift::oracle_workload;
    use nc_serve::{ModelRegistry, ModelSelector};
    use neurocard::{NeuroCard, NeuroCardConfig};
    use std::sync::Arc;

    fn leased_pair() -> (Arc<ModelRegistry>, ModelLease, ModelLease, Vec<OracleCase>) {
        let env = demo_env(5);
        let config = NeuroCardConfig::tiny().with_training_tuples(300);
        let artifact = NeuroCard::train(env.db.clone(), env.schema.clone(), &config);
        let core = Arc::new(artifact.to_core().expect("loads"));
        let registry = Arc::new(ModelRegistry::new());
        let inc_key = registry.register_core("m", core.clone()).unwrap();
        let cand_key = registry.register_core("m.shadow", core).unwrap();
        let incumbent = registry
            .acquire(&ModelSelector::Exact(inc_key))
            .expect("incumbent lease");
        let candidate = registry
            .acquire(&ModelSelector::Exact(cand_key))
            .expect("candidate lease");
        let cases = oracle_workload(&env.db, &env.schema, 77, 40);
        (registry, incumbent, candidate, cases)
    }

    #[test]
    fn mirror_subset_is_seeded_and_identical_models_tie() {
        let (_registry, incumbent, candidate, cases) = leased_pair();
        let mut scratch = SamplerScratch::new();
        let faults = FaultInjector::disabled();
        let a = shadow_compare(
            &incumbent,
            &candidate,
            &cases,
            123,
            500,
            &faults,
            &mut scratch,
        );
        let b = shadow_compare(
            &incumbent,
            &candidate,
            &cases,
            123,
            500,
            &faults,
            &mut scratch,
        );
        assert_eq!(a.mirrored, b.mirrored, "mirror draws replay");
        assert_eq!(a.compared, b.compared);
        assert!(a.mirrored > 0 && a.mirrored < cases.len() as u64);
        assert_eq!(a.dropped, 0);
        assert_eq!(a.wrong_estimates, 0);
        // Same model on both sides: identical medians, bit for bit.
        assert_eq!(
            a.incumbent_median_qerr.to_bits(),
            a.candidate_median_qerr.to_bits()
        );
    }

    #[test]
    fn per_mille_bounds_are_all_or_nothing() {
        let (_registry, incumbent, candidate, cases) = leased_pair();
        let mut scratch = SamplerScratch::new();
        let faults = FaultInjector::disabled();
        let none = shadow_compare(&incumbent, &candidate, &cases, 9, 0, &faults, &mut scratch);
        assert_eq!(none.mirrored, 0);
        assert_eq!(none.compared, 0);
        assert!(none.candidate_median_qerr.is_infinite());
        let all = shadow_compare(
            &incumbent,
            &candidate,
            &cases,
            9,
            1000,
            &faults,
            &mut scratch,
        );
        assert_eq!(all.mirrored, cases.len() as u64);
    }
}
