//! Crash-restart durability of wire deregisters against the `neurocard-serve` binary.
//!
//! The write-ahead contract for admin mutations: a deregister acknowledged over the
//! wire is journalled *before* the routing table changes, so a `kill -9` immediately
//! after the acknowledgement can never resurrect the model on restart.  The
//! surviving model must come back serving bit-identical estimates.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use nc_schema::{JoinEdge, JoinSchema, Query};
use nc_serve::{ModelSelector, ServeClient, ServeError};
use nc_storage::{Database, TableBuilder, Value};
use neurocard::{schema_fingerprint, ModelArtifact, NeuroCard, NeuroCardConfig};

fn trained_artifact_bytes() -> Vec<u8> {
    let mut db = Database::new();
    let mut a = TableBuilder::new("A", &["x", "c"]);
    for i in 0..50i64 {
        a.push_row(vec![Value::Int(i % 6), Value::Int(i % 4)]);
    }
    db.add_table(a.finish());
    let mut b = TableBuilder::new("B", &["x", "d"]);
    for i in 0..70i64 {
        b.push_row(vec![Value::Int(i % 6), Value::Int(i % 3)]);
    }
    db.add_table(b.finish());
    let schema = JoinSchema::new(
        vec!["A".into(), "B".into()],
        vec![JoinEdge::parse("A.x", "B.x")],
        "A",
    )
    .unwrap();
    let config = NeuroCardConfig::tiny().with_training_tuples(600);
    NeuroCard::train(Arc::new(db), Arc::new(schema), &config)
        .to_bytes()
        .to_vec()
}

/// Spawns `neurocard-serve` and blocks until it prints its bound address.
fn spawn_server(args: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_neurocard-serve"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawning neurocard-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(rest) = line.strip_prefix("serving on ") {
                    break rest
                        .split_whitespace()
                        .next()
                        .expect("an address after 'serving on'")
                        .to_string();
                }
            }
            other => panic!("server exited before announcing its address: {other:?}"),
        }
    };
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn connect(addr: &str) -> ServeClient {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match ServeClient::connect(addr) {
            Ok(c) => return c,
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10))
            }
            Err(e) => panic!("could not connect to {addr}: {e}"),
        }
    }
}

#[test]
fn a_wire_deregister_survives_kill_dash_nine() {
    let dir = {
        let mut p = std::env::temp_dir();
        p.push(format!("nc-admin-dereg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        p
    };
    let artifact_path: PathBuf = dir.join("model.ncar");
    let journal_path: PathBuf = dir.join("registry.jsonl");
    let bytes = trained_artifact_bytes();
    std::fs::write(&artifact_path, &bytes).unwrap();

    let core = ModelArtifact::from_bytes(&bytes)
        .unwrap()
        .to_core()
        .unwrap();
    let fingerprint = schema_fingerprint(core.schema());
    let probe = Query::join(&["A", "B"]);
    let want = core.estimate(&probe);

    // First life: two models over the same artifact, both journalled at publish.
    let keep_arg = format!("keep={}", artifact_path.display());
    let drop_arg = format!("drop={}", artifact_path.display());
    let (mut child, addr) = spawn_server(&[
        "--listen",
        "127.0.0.1:0",
        "--journal",
        journal_path.to_str().unwrap(),
        &keep_arg,
        &drop_arg,
    ]);
    let mut client = connect(&addr);
    let keep = ModelSelector::latest(fingerprint, "keep");
    let drop_sel = ModelSelector::latest(fingerprint, "drop");
    assert_eq!(client.estimate(&keep, &probe).unwrap().key.version, 1);
    assert_eq!(client.estimate(&drop_sel, &probe).unwrap().key.version, 1);

    // The admin mutation over the wire: acknowledged, then immediately SIGKILLed.
    let gone = client.deregister(fingerprint, "drop").unwrap();
    assert_eq!(gone.name, "drop");
    assert_eq!(gone.version, 1);
    assert!(matches!(
        client.estimate(&drop_sel, &probe),
        Err(ServeError::UnknownModel(_))
    ));
    child.kill().unwrap();
    child.wait().unwrap();

    // Second life, journal only: the deregister must have been durable *before* the
    // acknowledgement — "drop" stays gone, "keep" serves bit-identically.
    let (mut child, addr) = spawn_server(&[
        "--listen",
        "127.0.0.1:0",
        "--journal",
        journal_path.to_str().unwrap(),
    ]);
    let mut client = connect(&addr);
    assert!(
        matches!(
            client.estimate(&drop_sel, &probe),
            Err(ServeError::UnknownModel(_))
        ),
        "SIGKILL after an acknowledged deregister resurrected the model"
    );
    let reply = client.estimate(&keep, &probe).unwrap();
    assert_eq!(reply.key.name, "keep");
    assert_eq!(reply.estimate.to_bits(), want.to_bits());
    // Deregistering a model that is already gone reports the typed error.
    assert!(matches!(
        client.deregister(fingerprint, "drop"),
        Err(ServeError::UnknownModel(_))
    ));

    child.kill().unwrap();
    child.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
