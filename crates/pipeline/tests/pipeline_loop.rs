//! End-to-end acceptance of the retraining pipeline (PR 10).
//!
//! The full loop at a pinned seed: the seeded update stream degrades the incumbent →
//! drift fires → a candidate retrains in the background → it shadow-serves mirrored
//! traffic → the controller auto-promotes via atomic swap — with the promotion
//! write-ahead journaled, recorded in the new artifact's manifest, and the whole run
//! bit-identically replayable.  The losing-candidate path is pinned too: the shadow
//! rejects, the incumbent keeps serving, the candidate is retired.

use std::path::PathBuf;
use std::sync::Arc;

use nc_pipeline::{demo_env, DriftingSource, Pipeline, PipelineConfig, PipelineReport};
use nc_sampler::seed::derive_stream_seed;
use nc_serve::{
    JournalEvent, ModelKey, ModelRegistry, ModelSelector, RegistryJournal, SharedJournal,
};
use neurocard::infer::SamplerScratch;
use neurocard::{schema_fingerprint, ModelArtifact, NeuroCard, NeuroCardConfig};

const SEED: u64 = 0x10E0;
const STEPS: u64 = 8;

fn temp_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("nc-pipeline-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

/// Builds the world the serving binary would: demo env, incumbent trained on the base
/// snapshot, published at v1 with a write-ahead journal entry.
fn launch(
    dir: &PathBuf,
    seed: u64,
    configure: impl FnOnce(PipelineConfig) -> PipelineConfig,
) -> (Pipeline<DriftingSource>, Arc<ModelRegistry>, PathBuf, u64) {
    let env = demo_env(seed);
    let fingerprint = schema_fingerprint(&env.schema);
    let train = NeuroCardConfig::tiny()
        .with_training_tuples(600)
        .with_seed(derive_stream_seed(seed, 0, 2));
    let artifact = NeuroCard::train(env.db.clone(), env.schema.clone(), &train);
    let artifact_path = dir.join("demo-v1.ncar");
    std::fs::write(&artifact_path, &artifact.to_bytes()).unwrap();

    let journal_path = dir.join("registry.jsonl");
    let (journal, survivors) = RegistryJournal::open(&journal_path).unwrap();
    assert!(survivors.is_empty(), "fresh journal");
    let journal = SharedJournal::new(journal);
    let key = ModelKey::new(fingerprint, "demo", 1);
    journal
        .append(&JournalEvent::publish(
            &key,
            artifact_path.to_string_lossy().as_ref(),
        ))
        .unwrap();

    let registry = Arc::new(ModelRegistry::new());
    let core = Arc::new(artifact.to_core().unwrap());
    assert_eq!(registry.register_core("demo", core).unwrap(), key);

    let config = configure(PipelineConfig::new(seed, dir));
    let pipeline = Pipeline::new(
        config,
        registry.clone(),
        Some(journal),
        env.schema.clone(),
        env.db.clone(),
        DriftingSource::new(seed, 3),
    )
    .unwrap();
    (pipeline, registry, journal_path, fingerprint)
}

fn run(dir: &PathBuf, seed: u64) -> (PipelineReport, Arc<ModelRegistry>, PathBuf, u64) {
    let (mut pipeline, registry, journal_path, fingerprint) = launch(dir, seed, |c| c);
    let report = pipeline.run(STEPS).unwrap();
    (report, registry, journal_path, fingerprint)
}

#[test]
fn stream_degrades_incumbent_then_drift_retrain_shadow_promote() {
    let dir = temp_dir("e2e");
    let (report, registry, journal_path, fingerprint) = run(&dir, SEED);

    // The control flow happened: drift fired after the stream turned, a candidate
    // trained, shadow-served mirrored traffic, and won promotion.
    let c = &report.counters;
    assert!(c.drift_detections >= 1, "drift never fired: {c:?}");
    assert!(c.retrains >= 1, "no candidate trained: {c:?}");
    assert!(c.shadow_comparisons >= 8, "too few mirrored samples: {c:?}");
    assert!(c.promotions >= 1, "no candidate promoted: {c:?}");
    assert_eq!(c.wrong_estimates, 0, "a wrong estimate slipped through");
    assert_eq!(c.retrain_aborts, 0, "no faults armed, nothing may abort");

    // Pre-drift steps are quiet; the promotion lands after the stream drifts (step 3).
    assert!(!report.steps[0].drift_fired, "step 1 is pre-drift");
    // (The run may promote more than once; the manifest checks below are against the
    // LAST promotion, the one that produced the latest version.)
    let promoted_step = report
        .steps
        .iter()
        .rev()
        .find(|s| s.promoted.is_some())
        .expect("a promoting step");
    assert!(promoted_step.step >= 3);
    assert!(promoted_step.drift_fired);
    let shadow = promoted_step.shadow.as_ref().unwrap();
    assert!(
        shadow.incumbent_median_qerr >= shadow.candidate_median_qerr,
        "promotion requires the candidate to win: {shadow:?}"
    );

    // The registry swapped atomically: `demo` is past v1, the shadow is retired.
    let latest = registry.latest(fingerprint, "demo").unwrap();
    assert!(latest.version >= 2, "promotion must bump the version");
    assert!(
        !registry.keys().iter().any(|k| k.name == "demo.shadow"),
        "the shadow registration must be retired"
    );
    // The incumbent keeps serving after the whole run.
    let lease = registry
        .acquire(&ModelSelector::latest(fingerprint, "demo"))
        .unwrap();
    let estimate = lease
        .estimate(
            &nc_schema::Query::join(&["orders", "users"]),
            None,
            &mut SamplerScratch::new(),
        )
        .unwrap();
    assert!(estimate.is_finite() && estimate >= 0.0);

    // The promoted artifact carries the decision in its manifest.
    let promoted_path = dir.join(format!("demo-v{}.ncar", latest.version));
    let promoted = ModelArtifact::from_bytes(&std::fs::read(&promoted_path).unwrap()).unwrap();
    let record = promoted
        .manifest()
        .promotion
        .as_ref()
        .expect("promotion record stamped into the manifest");
    assert_eq!(record.verdict, "promoted");
    assert_eq!(record.pipeline_seed, format!("{SEED:016x}"));
    assert_eq!(record.step, promoted_step.step);
    assert_eq!(record.incumbent_version, latest.version - 1);
    assert!(record.shadow_samples >= 8);
    assert!(record.incumbent_median_qerr >= record.candidate_median_qerr);

    // The journal recorded it write-ahead and folds to the promoted state.
    let text = std::fs::read_to_string(&journal_path).unwrap();
    assert!(
        text.contains("\"op\":\"promote\""),
        "the promotion must be a distinct journal event"
    );
    let (_, survivors) = RegistryJournal::open_compacted(&journal_path).unwrap();
    let demo = survivors
        .iter()
        .find(|(k, _)| k.name == "demo")
        .expect("demo survives the fold");
    assert_eq!(demo.0, latest, "journal fold agrees with the live registry");
    assert!(
        !survivors.iter().any(|(k, _)| k.name == "demo.shadow"),
        "the shadow's journaled deregister folds it away"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replay_at_the_same_seed_is_bit_identical() {
    let dir_a = temp_dir("replay-a");
    let dir_b = temp_dir("replay-b");
    let (a, _, _, _) = run(&dir_a, SEED);
    let (b, _, _, _) = run(&dir_b, SEED);
    assert_eq!(
        a.digest(),
        b.digest(),
        "same seed must replay every decision bit-identically"
    );
    assert_eq!(a.counters, b.counters);
    // And the promoted artifacts themselves are byte-identical.
    for entry in std::fs::read_dir(&dir_a).unwrap() {
        let name = entry.unwrap().file_name();
        if name.to_string_lossy().ends_with(".ncar") {
            let bytes_a = std::fs::read(dir_a.join(&name)).unwrap();
            let bytes_b = std::fs::read(dir_b.join(&name)).unwrap();
            assert_eq!(bytes_a, bytes_b, "{name:?} differs between replays");
        }
    }
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn losing_candidate_is_retired_and_the_incumbent_keeps_serving() {
    let dir = temp_dir("loser");
    // An unmeetable margin: no candidate can ever win the shadow comparison.
    let (mut pipeline, registry, _journal, fingerprint) =
        launch(&dir, SEED, |c| c.with_promote_margin(1e18));
    let report = pipeline.run(STEPS).unwrap();

    let c = &report.counters;
    assert_eq!(c.promotions, 0, "nothing may promote under the margin");
    assert!(c.retirements >= 1, "losing candidates must be retired");
    assert!(c.drift_detections >= 1);
    assert_eq!(c.wrong_estimates, 0);
    let retired_step = report.steps.iter().find(|s| s.retired.is_some()).unwrap();
    assert!(retired_step.promoted.is_none());

    // The incumbent never moved and still serves.
    let latest = registry.latest(fingerprint, "demo").unwrap();
    assert_eq!(latest.version, 1, "the incumbent must keep its version");
    assert!(
        !registry.keys().iter().any(|k| k.name == "demo.shadow"),
        "retired candidates leave no registration behind"
    );
    let lease = registry
        .acquire(&ModelSelector::latest(fingerprint, "demo"))
        .unwrap();
    let estimate = lease
        .estimate(
            &nc_schema::Query::join(&["orders"]),
            None,
            &mut SamplerScratch::new(),
        )
        .unwrap();
    assert!(estimate.is_finite() && estimate >= 0.0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_compaction_runs_inline_while_the_pipeline_churns() {
    let dir = temp_dir("compact");
    // A tiny threshold: every few appends trip `maybe_compact`, folding the journal
    // back to one line per live model while promotions keep flowing through it.
    let (mut pipeline, _registry, journal_path, _fp) = launch(&dir, SEED, |mut c| {
        c.journal_compact_bytes = Some(512);
        c
    });
    let report = pipeline.run(STEPS).unwrap();
    assert!(report.counters.promotions >= 1);
    let size = std::fs::metadata(&journal_path).unwrap().len();
    assert!(
        size <= 512 + 256,
        "the journal must stay near the compaction threshold, got {size} bytes"
    );
    // The folded journal still restores the promoted state.
    let (_, survivors) = RegistryJournal::open_compacted(&journal_path).unwrap();
    assert!(survivors
        .iter()
        .any(|(k, _)| k.name == "demo" && k.version >= 2));
    let _ = std::fs::remove_dir_all(&dir);
}
