//! Crash-restart persistence of the `neurocard-serve` binary.
//!
//! The acceptance contract of the registry journal: `kill -9` the serving process,
//! restart it from the journal alone (no artifacts on the command line), and every
//! model comes back at the exact version it had — with estimates that are
//! bit-identical to a direct [`neurocard::EstimatorCore`], before and after the crash.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use nc_schema::{JoinEdge, JoinSchema, Predicate, Query};
use nc_serve::{ModelSelector, ServeClient};
use nc_storage::{Database, TableBuilder, Value};
use neurocard::{schema_fingerprint, ModelArtifact, NeuroCard, NeuroCardConfig};

fn trained_artifact_bytes() -> Vec<u8> {
    let mut db = Database::new();
    let mut a = TableBuilder::new("A", &["x", "c"]);
    for i in 0..50i64 {
        a.push_row(vec![Value::Int(i % 6), Value::Int(i % 4)]);
    }
    db.add_table(a.finish());
    let mut b = TableBuilder::new("B", &["x", "d"]);
    for i in 0..70i64 {
        b.push_row(vec![Value::Int(i % 6), Value::Int(i % 3)]);
    }
    db.add_table(b.finish());
    let schema = JoinSchema::new(
        vec!["A".into(), "B".into()],
        vec![JoinEdge::parse("A.x", "B.x")],
        "A",
    )
    .unwrap();
    let config = NeuroCardConfig::tiny().with_training_tuples(600);
    NeuroCard::train(Arc::new(db), Arc::new(schema), &config)
        .to_bytes()
        .to_vec()
}

fn workload() -> Vec<Query> {
    let mut queries = vec![Query::join(&["A", "B"]), Query::join(&["A"])];
    for v in 0..3i64 {
        queries.push(Query::join(&["A", "B"]).filter("A", "c", Predicate::eq(v)));
    }
    queries
}

/// Spawns `neurocard-serve` and blocks until it prints its bound address.
fn spawn_server(args: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_neurocard-serve"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawning neurocard-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(rest) = line.strip_prefix("serving on ") {
                    break rest
                        .split_whitespace()
                        .next()
                        .expect("an address after 'serving on'")
                        .to_string();
                }
            }
            other => panic!("server exited before announcing its address: {other:?}"),
        }
    };
    // Keep draining stdout in the background so the server never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn connect(addr: &str) -> ServeClient {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match ServeClient::connect(addr) {
            Ok(c) => return c,
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10))
            }
            Err(e) => panic!("could not connect to {addr}: {e}"),
        }
    }
}

#[test]
fn kill_dash_nine_then_restart_restores_every_model_from_the_journal() {
    let dir = {
        let mut p = std::env::temp_dir();
        p.push(format!("nc-journal-restart-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        p
    };
    let artifact_path: PathBuf = dir.join("model.ncar");
    let journal_path: PathBuf = dir.join("registry.jsonl");
    let bytes = trained_artifact_bytes();
    std::fs::write(&artifact_path, &bytes).unwrap();

    // Ground truth: the direct core the served estimates must match bit-for-bit.
    let core = ModelArtifact::from_bytes(&bytes)
        .unwrap()
        .to_core()
        .unwrap();
    let queries = workload();
    let sequential: Vec<f64> = queries.iter().map(|q| core.estimate(q)).collect();
    let fingerprint = schema_fingerprint(core.schema());

    // First life: publish the same name twice — register v1, hot-swap to v2 — with
    // every publish journalled.
    let artifact_arg = format!("m={}", artifact_path.display());
    let (mut child, addr) = spawn_server(&[
        "--listen",
        "127.0.0.1:0",
        "--journal",
        journal_path.to_str().unwrap(),
        &artifact_arg,
        &artifact_arg,
    ]);
    let mut client = connect(&addr);
    let selector = ModelSelector::latest(fingerprint, "m");
    let reply = client.estimate(&selector, &queries[0]).unwrap();
    assert_eq!(reply.key.version, 2, "second publish hot-swapped to v2");
    let v2_key = reply.key.clone();
    for (q, want) in queries.iter().zip(&sequential) {
        let got = client.estimate(&selector, q).unwrap().estimate;
        assert_eq!(got.to_bits(), want.to_bits(), "pre-crash estimate diverged");
    }

    // The crash: SIGKILL, no shutdown hooks, nothing flushed by the process itself.
    child.kill().unwrap();
    child.wait().unwrap();

    // Second life: NO artifacts on the command line — the journal alone must restore
    // the model, at version 2, serving bit-identical estimates.
    let (mut child, addr) = spawn_server(&[
        "--listen",
        "127.0.0.1:0",
        "--journal",
        journal_path.to_str().unwrap(),
    ]);
    let mut client = connect(&addr);
    let reply = client.estimate(&selector, &queries[0]).unwrap();
    assert_eq!(reply.key, v2_key, "restart must restore the exact version");
    for (q, want) in queries.iter().zip(&sequential) {
        let got = client.estimate(&selector, q).unwrap().estimate;
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "post-crash estimate diverged"
        );
    }
    // A client pinning the exact pre-crash key keeps working after the restart.
    let pinned = client
        .estimate(&ModelSelector::Exact(v2_key.clone()), &queries[1])
        .unwrap();
    assert_eq!(pinned.estimate.to_bits(), sequential[1].to_bits());

    child.kill().unwrap();
    child.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `kill -9` the server the instant a promotion hits the journal — *before* the swap
/// is known to have completed — then restart from the journal alone.  The write-ahead
/// ordering (artifact fsynced → promotion journaled → registry swap) must restore the
/// *promoted* version, serving estimates bit-identical to the promoted artifact's
/// direct core, with the promotion decision stamped in its manifest.
#[test]
fn kill_dash_nine_mid_promotion_restores_the_promoted_version() {
    let dir = {
        let mut p = std::env::temp_dir();
        p.push(format!("nc-promotion-crash-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        p
    };
    let journal_path = dir.join("registry.jsonl");
    let artifact_dir = dir.join("pipeline");
    let seed = 4242u64;

    // First life: the pipeline loop runs at full speed; we race it to the first
    // "journaled promotion" marker (printed between the journal append and the swap)
    // and SIGKILL right there.
    let mut child = Command::new(env!("CARGO_BIN_EXE_neurocard-serve"))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--journal",
            journal_path.to_str().unwrap(),
            "--pipeline",
            artifact_dir.to_str().unwrap(),
            "--pipeline-seed",
            &seed.to_string(),
            "--pipeline-pause-ms",
            "0",
            "--pipeline-steps",
            "12",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawning neurocard-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut journaled_version = None;
    for line in BufReader::new(stdout).lines() {
        let line = line.expect("server stdout");
        if let Some(key) = line.strip_prefix("pipeline: journaled promotion of ") {
            let version = key
                .rsplit_once("@v")
                .and_then(|(_, v)| v.trim().parse::<u64>().ok())
                .unwrap_or_else(|| panic!("unparsable promotion marker: {line}"));
            journaled_version = Some(version);
            break;
        }
        assert!(
            !line.starts_with("pipeline: done"),
            "the pipeline finished without ever journaling a promotion"
        );
    }
    let journaled_version = journaled_version.expect("a journaled promotion before EOF");
    child.kill().unwrap();
    child.wait().unwrap();

    // Second life: NO --pipeline, NO artifacts — the journal alone.  The promotion
    // was journaled (and its artifact fsynced) before the marker, so the restored
    // `demo` must be at least that version no matter where exactly the kill landed.
    let (mut child, addr) = spawn_server(&[
        "--listen",
        "127.0.0.1:0",
        "--journal",
        journal_path.to_str().unwrap(),
    ]);
    let mut client = connect(&addr);
    let env = nc_pipeline::demo_env(seed);
    let fingerprint = schema_fingerprint(&env.schema);
    let selector = ModelSelector::latest(fingerprint, "demo");
    let queries = vec![
        Query::join(&["orders", "users"]),
        Query::join(&["orders"]),
        Query::join(&["orders", "users"]).filter("orders", "cat", Predicate::eq(2)),
        Query::join(&["orders", "users"]).filter("users", "tier", Predicate::eq(1)),
    ];
    let reply = client.estimate(&selector, &queries[0]).unwrap();
    assert!(
        reply.key.version >= journaled_version,
        "restart restored v{} but v{journaled_version} was already journaled",
        reply.key.version
    );

    // The served model IS the promoted artifact: bit-identical estimates, and the
    // manifest carries the promotion decision.
    let promoted_path = artifact_dir.join(format!("demo-v{}.ncar", reply.key.version));
    let promoted = ModelArtifact::from_bytes(&std::fs::read(&promoted_path).unwrap()).unwrap();
    let record = promoted
        .manifest()
        .promotion
        .as_ref()
        .expect("the promoted artifact carries its promotion record");
    assert_eq!(record.verdict, "promoted");
    assert_eq!(record.pipeline_seed, format!("{seed:016x}"));
    assert_eq!(record.incumbent_version, reply.key.version - 1);
    let core = promoted.to_core().unwrap();
    for q in &queries {
        let got = client.estimate(&selector, q).unwrap().estimate;
        assert_eq!(
            got.to_bits(),
            core.estimate(q).to_bits(),
            "post-crash estimate diverged from the promoted artifact on {q}"
        );
    }

    child.kill().unwrap();
    child.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
