// The integration-tests crate exists only to host the cross-crate tests in /tests.
