//! Cross-crate determinism contract of the pipelined training path: for a fixed
//! `(seed, sampler_threads)` pair, the training sample stream — and therefore the trained
//! model and its estimates — is identical at every prefetch depth, and the persistent
//! [`SamplerPool`] reproduces the legacy one-shot [`sample_wide_batch_parallel`] wrapper
//! exactly.

use std::sync::Arc;

use nc_datagen::{job_light_database, job_light_schema, DataGenConfig};
use nc_sampler::{
    derive_stream_seed, sample_wide_batch_parallel, JoinSampler, SamplerPool, WideLayout,
};
use nc_schema::{Predicate, Query};
use neurocard::{NeuroCard, NeuroCardConfig};

fn job_light_env() -> (Arc<nc_storage::Database>, Arc<nc_schema::JoinSchema>) {
    let datagen = DataGenConfig {
        title_rows: 120,
        ..DataGenConfig::tiny()
    };
    (
        Arc::new(job_light_database(&datagen)),
        Arc::new(job_light_schema()),
    )
}

#[test]
fn pool_reproduces_legacy_wrapper_on_job_light() {
    let (db, schema) = job_light_env();
    let sampler = Arc::new(JoinSampler::new(db.clone(), schema.clone()));
    let layout = Arc::new(WideLayout::new(&db, &schema));
    for threads in [1usize, 3] {
        let pool = SamplerPool::new(sampler.clone(), layout.clone(), threads, 42, None);
        let pooled = pool.submit_indexed(0, 300).wait().into_wide();
        let legacy = sample_wide_batch_parallel(&sampler, &layout, 300, threads, 42);
        assert_eq!(pooled, legacy, "threads={threads}");
    }
}

#[test]
fn prefetch_depth_never_changes_estimates() {
    let (db, schema) = job_light_env();
    let query = Query::join(&["title", "cast_info"]).filter(
        "title",
        "production_year",
        Predicate::ge(2000i64),
    );

    let build = |depth: usize| {
        let mut config = NeuroCardConfig::tiny();
        config.training_tuples = 2_000;
        config.sampler_threads = 2;
        config.prefetch_depth = depth;
        NeuroCard::build(db.clone(), schema.clone(), &config)
    };

    let base = build(0);
    let base_bytes = base.model_bytes();
    let base_estimate = base.estimate(&query);
    for depth in [1usize, 2] {
        let other = build(depth);
        assert_eq!(
            base_bytes,
            other.model_bytes(),
            "prefetch depth {depth} changed the trained model"
        );
        assert_eq!(
            base_estimate,
            other.estimate(&query),
            "prefetch depth {depth} changed an estimate"
        );
    }
}

#[test]
fn stream_seeds_distinct_across_training_scale_grid() {
    // The trainer derives one stream per (batch, worker); a realistic training run's
    // whole grid must be collision-free.
    let mut seen = std::collections::HashSet::new();
    for batch in 0..2_000u64 {
        for worker in 0..8u64 {
            assert!(
                seen.insert(derive_stream_seed(42, batch, worker)),
                "seed collision at batch={batch} worker={worker}"
            );
        }
    }
}
