//! Cross-crate integration test: the paper's Figure 4 worked example, end to end.
//!
//! Checks that the executor, the join-count DP, the sampler's virtual columns and the
//! schema-subsetting plan all agree with the numbers printed in the paper.

use std::sync::Arc;

use nc_exec::enumerate_full_join;
use nc_sampler::{JoinCounts, JoinSampler, WideLayout};
use nc_schema::{ColumnRef, JoinEdge, JoinSchema, Predicate, Query, SubsetPlan};
use nc_storage::{Database, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn figure4() -> (Arc<Database>, Arc<JoinSchema>) {
    let mut db = Database::new();
    let mut a = TableBuilder::new("A", &["x"]);
    a.push_row(vec![Value::Int(1)]);
    a.push_row(vec![Value::Int(2)]);
    db.add_table(a.finish());
    let mut b = TableBuilder::new("B", &["x", "y"]);
    b.push_row(vec![Value::Int(1), Value::from("a")]);
    b.push_row(vec![Value::Int(2), Value::from("b")]);
    b.push_row(vec![Value::Int(2), Value::from("c")]);
    db.add_table(b.finish());
    let mut c = TableBuilder::new("C", &["y"]);
    c.push_row(vec![Value::from("c")]);
    c.push_row(vec![Value::from("c")]);
    c.push_row(vec![Value::from("d")]);
    db.add_table(c.finish());
    let schema = JoinSchema::new(
        vec!["A".into(), "B".into(), "C".into()],
        vec![JoinEdge::parse("A.x", "B.x"), JoinEdge::parse("B.y", "C.y")],
        "A",
    )
    .unwrap();
    (Arc::new(db), Arc::new(schema))
}

#[test]
fn executor_matches_the_paper_answers() {
    let (db, schema) = figure4();
    // Q1: 2 rows; Q2: 1 row (Figure 4d).
    let q1 = Query::join(&["A", "B", "C"]).filter("A", "x", Predicate::eq(2i64));
    let q2 = Query::join(&["A"]).filter("A", "x", Predicate::eq(2i64));
    assert_eq!(nc_exec::true_cardinality(&db, &schema, &q1), 2);
    assert_eq!(nc_exec::true_cardinality(&db, &schema, &q2), 1);
    // "In full join, |A.x=2| = 3" (comment above Q1 in Figure 4d).
    let rows = enumerate_full_join(&db, &schema);
    assert_eq!(rows.len(), 5);
    assert_eq!(
        rows.iter()
            .filter(|r| r.value(&db, "A", "x") == Value::Int(2))
            .count(),
        3
    );
}

#[test]
fn join_counts_and_full_join_size_match_figure_4b() {
    let (db, schema) = figure4();
    let counts = JoinCounts::compute(&db, &schema);
    assert_eq!(counts.table("A").row_weights, vec![1, 3]);
    assert_eq!(counts.table("B").row_weights, vec![1, 1, 2]);
    assert_eq!(counts.table("C").row_weights, vec![1, 1, 1]);
    assert_eq!(counts.full_join_rows(), 5);
}

#[test]
fn sampled_virtual_columns_match_figure_4c() {
    let (db, schema) = figure4();
    let sampler = JoinSampler::new(db.clone(), schema.clone());
    let layout = WideLayout::new(&db, &schema);
    let mut rng = StdRng::seed_from_u64(1);
    let mut seen_unmatched_c = false;
    for _ in 0..2000 {
        let sample = sampler.sample(&mut rng);
        let row = layout.materialize(&db, &sample);
        let fanout_bx = row[layout.fanout_index(&ColumnRef::parse("B.x")).unwrap()].clone();
        let bx = row[layout.index_of("B", "x").unwrap()].clone();
        // Fanout of B.x = 2 is 2, of B.x = 1 is 1, of a ⊥ B slot is 1 (Figure 4c).
        match bx {
            Value::Int(2) => assert_eq!(fanout_bx, Value::Int(2)),
            Value::Int(1) => assert_eq!(fanout_bx, Value::Int(1)),
            Value::Null => assert_eq!(fanout_bx, Value::Int(1)),
            other => panic!("unexpected B.x value {other:?}"),
        }
        // The unmatched C row 'd' must occasionally appear with indicators (0, 0, 1).
        if row[layout.index_of("C", "y").unwrap()] == Value::from("d") {
            assert_eq!(row[layout.indicator_index("A").unwrap()], Value::Int(0));
            assert_eq!(row[layout.indicator_index("B").unwrap()], Value::Int(0));
            assert_eq!(row[layout.indicator_index("C").unwrap()], Value::Int(1));
            seen_unmatched_c = true;
        }
    }
    assert!(
        seen_unmatched_c,
        "the ⊥-chain row of Figure 4c was never sampled"
    );
}

#[test]
fn subset_plan_downscales_by_the_papers_keys() {
    let (_, schema) = figure4();
    // Q2 omits B and C; the unique downscale keys are B.x and C.y (§6 example).
    let plan = SubsetPlan::build(&schema, &Query::join(&["A"]));
    assert_eq!(plan.omitted_tables, vec!["B".to_string(), "C".to_string()]);
    assert_eq!(
        plan.fanout_keys,
        vec![ColumnRef::parse("B.x"), ColumnRef::parse("C.y")]
    );
}
