//! The wire protocol end to end: property-based codec round-trips, and the TCP
//! front-end's determinism contract — for a fixed `(artifact, query, seed)`, an
//! estimate that crossed the wire is **bit-identical** to a direct sequential
//! [`EstimatorCore`] estimate.

use std::sync::Arc;

use proptest::prelude::*;

use nc_schema::{CompareOp, JoinEdge, JoinSchema, Predicate, Query, TableFilter};
use nc_serve::{
    decode_request, decode_result, encode_request, encode_result, ModelKey, ModelRegistry,
    ModelSelector, ServeClient, ServeError, ServeReply, ServeRequest, TcpServer,
};
use nc_storage::{Database, TableBuilder, Value};
use neurocard::{EstimatorCore, ModelArtifact, NeuroCard, NeuroCardConfig};

// ---- Property-based codec round-trips -----------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        1 => Just(Value::Null),
        4 => (-1_000_000i64..1_000_000).prop_map(Value::Int),
        4 => "[a-z ,.\"\n]{0,12}".prop_map(Value::from),
    ]
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        5 => (0usize..5, arb_value()).prop_map(|(op, v)| {
            let op = CompareOp::BINARY_OPS[op].clone();
            Predicate { op, literals: vec![v] }
        }),
        2 => proptest::collection::vec(arb_value(), 1..5)
            .prop_map(|vs| Predicate { op: CompareOp::In, literals: vs }),
    ]
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        proptest::collection::vec("[a-z_]{1,10}", 1..5),
        proptest::collection::vec(("[a-z_]{1,8}", "[a-z_]{1,8}", arb_predicate()), 0..4),
    )
        .prop_map(|(tables, filters)| Query {
            tables,
            filters: filters
                .into_iter()
                .map(|(table, column, predicate)| TableFilter {
                    table,
                    column,
                    predicate,
                })
                .collect(),
        })
}

fn arb_key() -> impl Strategy<Value = ModelKey> {
    (0u64..u64::MAX, "[a-z0-9_-]{1,16}", 1u64..1_000_000).prop_map(|(fp, name, version)| ModelKey {
        schema_fingerprint: fp,
        name,
        version,
    })
}

fn arb_selector() -> impl Strategy<Value = ModelSelector> {
    prop_oneof![
        arb_key().prop_map(ModelSelector::Exact),
        (0u64..u64::MAX, "[a-z0-9_-]{1,16}").prop_map(|(fp, name)| ModelSelector::latest(fp, name)),
        (0u64..u64::MAX).prop_map(ModelSelector::latest_for_schema),
    ]
}

fn arb_request() -> impl Strategy<Value = ServeRequest> {
    (
        arb_selector(),
        arb_query(),
        prop_oneof![
            1 => Just(None),
            2 => (1u64..100_000).prop_map(|n| Some(n as usize)),
        ],
        prop_oneof![
            2 => Just(neurocard::Precision::Exact),
            1 => Just(neurocard::Precision::Fast),
        ],
    )
        .prop_map(|(selector, query, samples, precision)| ServeRequest {
            selector,
            query,
            samples,
            precision,
        })
}

fn arb_error() -> impl Strategy<Value = ServeError> {
    prop_oneof![
        "[ -~]{0,40}".prop_map(|m| ServeError::Estimate(neurocard::EstimateError::InvalidQuery(m))),
        ("[a-z]{1,8}", "[a-z]{1,8}").prop_map(|(table, column)| ServeError::Estimate(
            neurocard::EstimateError::UnknownColumn { table, column }
        )),
        Just(ServeError::Estimate(
            neurocard::EstimateError::InvalidSampleCount
        )),
        "[ -~]{0,40}".prop_map(ServeError::UnknownModel),
        (arb_key(), arb_key())
            .prop_map(|(requested, current)| ServeError::StaleVersion { requested, current }),
        arb_key().prop_map(ServeError::AlreadyRegistered),
        Just(ServeError::ShuttingDown),
        "[ -~]{0,40}".prop_map(ServeError::Transport),
        "[ -~]{0,40}".prop_map(ServeError::Protocol),
    ]
}

proptest! {
    /// Any request survives the wire codec unchanged.
    #[test]
    fn requests_round_trip(request in arb_request()) {
        let bytes = encode_request(&request);
        prop_assert_eq!(decode_request(&bytes).unwrap(), request);
    }

    /// Any reply survives the wire codec with bit-exact estimates — including NaN,
    /// infinities and subnormals, since the wire carries raw f64 bits.
    #[test]
    fn replies_round_trip_bit_exactly(key in arb_key(), bits in 0u64..u64::MAX, flag in 0u64..2) {
        let degraded = flag == 1;
        let reply = ServeReply { key, estimate: f64::from_bits(bits), degraded };
        let back = decode_result(&encode_result(&Ok(reply.clone()))).unwrap().unwrap();
        prop_assert_eq!(back.key, reply.key);
        prop_assert_eq!(back.estimate.to_bits(), bits);
        prop_assert_eq!(back.degraded, degraded);
    }

    /// Any serving error survives the wire codec unchanged.
    #[test]
    fn errors_round_trip(error in arb_error()) {
        let back = decode_result(&encode_result(&Err(error.clone()))).unwrap();
        prop_assert_eq!(back, Err(error));
    }

    /// Truncating an encoded request anywhere yields a typed error, never a panic.
    #[test]
    fn truncated_requests_error_cleanly(request in arb_request(), frac in 0.0f64..1.0) {
        let bytes = encode_request(&request);
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        prop_assert!(decode_request(&bytes[..cut]).is_err());
    }
}

// ---- TCP end-to-end determinism ------------------------------------------------------

fn trained_core() -> (Arc<EstimatorCore>, u64) {
    let mut db = Database::new();
    let mut a = TableBuilder::new("A", &["x", "c"]);
    for i in 0..60i64 {
        a.push_row(vec![Value::Int(i % 6), Value::Int(i % 5)]);
    }
    db.add_table(a.finish());
    let mut b = TableBuilder::new("B", &["x", "d"]);
    for i in 0..80i64 {
        b.push_row(vec![Value::Int(i % 6), Value::Int(i % 3)]);
    }
    db.add_table(b.finish());
    let schema = JoinSchema::new(
        vec!["A".into(), "B".into()],
        vec![JoinEdge::parse("A.x", "B.x")],
        "A",
    )
    .unwrap();
    let config = NeuroCardConfig::tiny().with_training_tuples(600);
    let artifact = NeuroCard::train(Arc::new(db), Arc::new(schema), &config);
    // Serve through the full persistence path, as production would.
    let artifact = ModelArtifact::from_bytes(&artifact.to_bytes()).unwrap();
    let fingerprint = artifact.schema_fingerprint();
    (Arc::new(artifact.to_core().unwrap()), fingerprint)
}

fn workload() -> Vec<Query> {
    let mut queries = vec![Query::join(&["A", "B"]), Query::join(&["B"])];
    for v in 0..3i64 {
        queries.push(Query::join(&["A", "B"]).filter("A", "c", Predicate::eq(v)));
        queries.push(Query::join(&["B"]).filter("B", "d", Predicate::ge(v)));
        queries.push(
            Query::join(&["A", "B"])
                .filter("A", "c", Predicate::le(v))
                .filter(
                    "B",
                    "d",
                    Predicate::isin(vec![Value::Int(0), Value::Int(v)]),
                ),
        );
    }
    queries
}

#[test]
fn tcp_estimates_are_bit_identical_to_the_direct_core() {
    let (core, fingerprint) = trained_core();
    let queries = workload();
    let sequential: Vec<f64> = queries.iter().map(|q| core.estimate(q)).collect();

    let registry = Arc::new(ModelRegistry::new());
    let key = registry.register_core("neurocard", core.clone()).unwrap();
    assert_eq!(key.schema_fingerprint, fingerprint);
    let server = TcpServer::bind(registry.clone(), "127.0.0.1:0").unwrap();

    // Two concurrent wire clients, interleaved with in-process requests.
    std::thread::scope(|scope| {
        for offset in 0..2usize {
            let addr = server.local_addr();
            let queries = &queries;
            let sequential = &sequential;
            let key = &key;
            scope.spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                for i in 0..queries.len() {
                    let idx = (i + offset) % queries.len();
                    let reply = client
                        .estimate(&ModelSelector::Exact(key.clone()), &queries[idx])
                        .unwrap();
                    assert_eq!(
                        reply.estimate.to_bits(),
                        sequential[idx].to_bits(),
                        "wire estimate diverged on query {idx}"
                    );
                    assert_eq!(&reply.key, key);
                }
            });
        }
    });
    assert_eq!(server.served(), 2 * queries.len() as u64);

    // Selector indirection resolves to the same model: latest-by-name and
    // latest-for-schema estimates are the same bits.
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    for (selector, q) in [
        (ModelSelector::latest(fingerprint, "neurocard"), &queries[0]),
        (ModelSelector::latest_for_schema(fingerprint), &queries[1]),
    ] {
        let reply = client.estimate(&selector, q).unwrap();
        let direct = core.estimate(q);
        assert_eq!(reply.estimate.to_bits(), direct.to_bits());
    }

    // Typed errors cross the wire: unknown model, stale version, estimator errors.
    assert!(matches!(
        client.estimate(&ModelSelector::latest(fingerprint, "nope"), &queries[0]),
        Err(ServeError::UnknownModel(_))
    ));
    let receipt = registry
        .swap(fingerprint, "neurocard", core.clone())
        .unwrap();
    assert_eq!(
        client.estimate(&ModelSelector::Exact(key.clone()), &queries[0]),
        Err(ServeError::StaleVersion {
            requested: key.clone(),
            current: receipt.new.clone(),
        })
    );
    let bad = Query::join(&["A", "B"]).filter("A", "x", Predicate::eq(0i64));
    assert!(matches!(
        client.estimate(&ModelSelector::Exact(receipt.new.clone()), &bad),
        Err(ServeError::Estimate(
            neurocard::EstimateError::UnknownColumn { .. }
        ))
    ));
    // And the connection still serves after remote errors.
    let reply = client
        .estimate(&ModelSelector::Exact(receipt.new), &queries[0])
        .unwrap();
    assert_eq!(reply.estimate.to_bits(), sequential[0].to_bits());

    server.shutdown();
}

/// The two-tier contract over the wire: a `Precision::Fast` request reproduces a direct
/// fast-tier core call bit-for-bit (the fast tier relaxes bit-identity *to the exact
/// tier*, not its own determinism), and exact requests on the same connection stay
/// pinned to the sequential baseline.
#[test]
fn fast_precision_requests_are_deterministic_over_the_wire() {
    use neurocard::{Precision, SamplerScratch};

    let (core, fingerprint) = trained_core();
    let queries = workload();
    let mut scratch = SamplerScratch::new();
    let samples = core.config().progressive_samples;
    let direct_fast: Vec<f64> = queries
        .iter()
        .map(|q| {
            core.estimate_with_samples_scratch_precision(q, samples, &mut scratch, Precision::Fast)
        })
        .collect();
    let direct_exact: Vec<f64> = queries.iter().map(|q| core.estimate(q)).collect();

    let registry = Arc::new(ModelRegistry::new());
    let key = registry.register_core("neurocard", core.clone()).unwrap();
    let server = TcpServer::bind(registry, "127.0.0.1:0").unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    for (i, q) in queries.iter().enumerate() {
        let fast = client
            .request(
                &ServeRequest::new(ModelSelector::Exact(key.clone()), q.clone())
                    .with_precision(Precision::Fast),
            )
            .unwrap();
        assert_eq!(
            fast.estimate.to_bits(),
            direct_fast[i].to_bits(),
            "fast-tier wire estimate diverged on query {i}"
        );
        // Interleaved exact requests are untouched by the fast tier.
        let exact = client
            .estimate(&ModelSelector::Exact(key.clone()), q)
            .unwrap();
        assert_eq!(exact.estimate.to_bits(), direct_exact[i].to_bits());
        // Both tiers produce sane cardinalities.
        assert!(fast.estimate.is_finite() && fast.estimate >= 1.0);
    }
    assert_eq!(fingerprint, key.schema_fingerprint);
    server.shutdown();
}
