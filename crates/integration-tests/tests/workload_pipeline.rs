//! Integration test of the full benchmark pipeline: data generation → workload generation →
//! ground truth → estimator evaluation → reporting, for all three workloads at tiny scale.
//!
//! This is the same code path the `nc-bench` binaries use (via `nc_bench::harness`), so it
//! protects the reproduction harness itself from regressions.

use nc_baselines::{
    CardinalityEstimator, IbjsEstimator, PostgresLikeEstimator, UniformJoinSampleEstimator,
};
use nc_bench::harness::{evaluate, true_cardinalities};
use nc_bench::{BenchEnv, HarnessConfig};
use nc_workloads::report::{render_error_table, ErrorTableRow};
use nc_workloads::{job_light_queries, job_light_ranges_queries, job_m_queries};

#[test]
fn job_light_pipeline_runs_for_all_estimators() {
    let config = HarnessConfig::tiny();
    let env = BenchEnv::job_light(&config);
    let queries = job_light_queries(&env.db, &env.schema, config.queries, config.seed);
    assert!(!queries.is_empty());
    let truths = true_cardinalities(&env, &queries);
    assert!(truths.iter().all(|t| *t >= 1.0));

    let postgres = PostgresLikeEstimator::build(&env.db, &env.schema);
    let ibjs = IbjsEstimator::new(env.db.clone(), env.schema.clone(), 500, 1);
    let uniform = UniformJoinSampleEstimator::new(env.db.clone(), env.schema.clone(), 500, 1);

    let mut rows = Vec::new();
    for est in [
        &postgres as &dyn CardinalityEstimator,
        &ibjs as &dyn CardinalityEstimator,
        &uniform as &dyn CardinalityEstimator,
    ] {
        let result = evaluate(est, &queries, &truths);
        assert_eq!(result.latencies.len(), queries.len());
        assert!(result.summary.median >= 1.0);
        rows.push(ErrorTableRow::new(
            result.name,
            result.size_bytes,
            result.summary,
        ));
    }
    let table = render_error_table("pipeline smoke", &rows);
    assert!(table.contains("Postgres-like"));
    assert!(table.contains("IBJS"));
    assert!(table.contains("UniformJoinSamples"));
}

#[test]
fn ranges_and_job_m_workloads_generate_and_score() {
    let config = HarnessConfig::tiny();
    let light = BenchEnv::job_light(&config);
    let ranges = job_light_ranges_queries(&light.db, &light.schema, 6, 5);
    assert_eq!(ranges.len(), 6);
    for q in &ranges {
        assert!(q.validate(&light.schema).is_ok());
    }

    let m = BenchEnv::job_m(&config);
    let m_queries = job_m_queries(&m.db, &m.schema, 5, 6);
    assert_eq!(m_queries.len(), 5);
    let truths = true_cardinalities(&m, &m_queries);
    let postgres = PostgresLikeEstimator::build(&m.db, &m.schema);
    let result = evaluate(&postgres, &m_queries, &truths);
    assert!(result.summary.max >= 1.0);
}
