//! The nonblocking TCP front-end, end to end (PR 6).
//!
//! Everything the reactor promises, exercised over real sockets with a real
//! NeuroCard model:
//!
//! * **bit-identity** — estimates served over TCP, by any number of pipelined
//!   clients, are bit-for-bit equal to direct sequential [`EstimatorCore`] calls,
//! * **zero lost requests across hot swap** — publishing v2/v3 mid-flight never
//!   surfaces an error or a stale-then-fresh-then-stale version to any client,
//! * **slow-loris containment** — a connection dribbling a partial frame is
//!   disconnected on the stall clock while pipelined neighbours finish untouched.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use nc_schema::{JoinEdge, JoinSchema, Predicate, Query};
use nc_serve::{ModelRegistry, ModelSelector, ReactorConfig, ServeClient, ServeRequest, TcpServer};
use nc_storage::{Database, TableBuilder, Value};
use neurocard::{schema_fingerprint, EstimatorCore, ModelArtifact, NeuroCard, NeuroCardConfig};

fn trained_artifact_bytes() -> (Vec<u8>, Vec<Query>) {
    let mut db = Database::new();
    let mut a = TableBuilder::new("A", &["x", "c"]);
    for i in 0..60i64 {
        a.push_row(vec![Value::Int(i % 7), Value::Int(i % 4)]);
    }
    db.add_table(a.finish());
    let mut b = TableBuilder::new("B", &["x", "d"]);
    for i in 0..90i64 {
        b.push_row(vec![Value::Int(i % 7), Value::Int(i % 3)]);
    }
    db.add_table(b.finish());
    let schema = JoinSchema::new(
        vec!["A".into(), "B".into()],
        vec![JoinEdge::parse("A.x", "B.x")],
        "A",
    )
    .unwrap();
    let config = NeuroCardConfig::tiny().with_training_tuples(600);
    let artifact = NeuroCard::train(Arc::new(db), Arc::new(schema), &config);
    let mut queries = vec![Query::join(&["A", "B"]), Query::join(&["A"])];
    for v in 0..3i64 {
        queries.push(Query::join(&["A", "B"]).filter("A", "c", Predicate::eq(v)));
        queries.push(Query::join(&["B"]).filter("B", "d", Predicate::le(v)));
    }
    (artifact.to_bytes().to_vec(), queries)
}

fn load_core(bytes: &[u8]) -> Arc<EstimatorCore> {
    Arc::new(
        ModelArtifact::from_bytes(bytes)
            .expect("artifact bytes round-trip")
            .to_core()
            .expect("weights load"),
    )
}

#[test]
fn pipelined_clients_over_tcp_are_bit_identical_to_the_direct_core() {
    let (bytes, queries) = trained_artifact_bytes();
    let core = load_core(&bytes);
    let fingerprint = schema_fingerprint(core.schema());
    let sequential: Vec<f64> = queries.iter().map(|q| core.estimate(q)).collect();

    let registry = Arc::new(ModelRegistry::new());
    registry.publish(fingerprint, "m", load_core(&bytes));
    let server = TcpServer::bind(registry, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let selector = ModelSelector::latest(fingerprint, "m");

    const CLIENTS: usize = 4;
    const ROUNDS: usize = 3;
    std::thread::scope(|scope| {
        for client_id in 0..CLIENTS {
            let (queries, sequential, selector) = (&queries, &sequential, &selector);
            scope.spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                for round in 0..ROUNDS {
                    // The pipelining path: every request of the round goes on the
                    // wire before any reply is read; the server must answer them
                    // strictly in order.
                    let order: Vec<usize> = (0..queries.len())
                        .map(|i| (i + client_id + round) % queries.len())
                        .collect();
                    for &idx in &order {
                        client
                            .send_request(&ServeRequest::new(
                                selector.clone(),
                                queries[idx].clone(),
                            ))
                            .unwrap();
                    }
                    for &idx in &order {
                        let reply = client.recv_result().unwrap();
                        assert_eq!(
                            reply.estimate.to_bits(),
                            sequential[idx].to_bits(),
                            "client {client_id} diverged on query {idx} (round {round})"
                        );
                    }
                }
            });
        }
    });

    let expected = (CLIENTS * ROUNDS * queries.len()) as u64;
    assert_eq!(server.served(), expected, "every request was answered");
    let stats = server.stats();
    assert_eq!(stats.overloaded, 0);
    assert_eq!(stats.stalled_disconnects, 0);
    assert_eq!(stats.overflow_disconnects, 0);
    server.shutdown();
}

#[test]
fn hot_swap_under_tcp_load_loses_zero_requests() {
    let (bytes, queries) = trained_artifact_bytes();
    let core = load_core(&bytes);
    let fingerprint = schema_fingerprint(core.schema());
    let sequential: Vec<f64> = queries.iter().map(|q| core.estimate(q)).collect();

    let registry = Arc::new(ModelRegistry::new());
    registry.publish(fingerprint, "m", load_core(&bytes));
    let server = TcpServer::bind(registry.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    let selector = ModelSelector::latest(fingerprint, "m");
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for client_id in 0..3usize {
            let (queries, sequential, selector, stop) = (&queries, &sequential, &selector, &stop);
            scope.spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                let mut last_version = 0u64;
                let mut idx = client_id;
                // Hammer until both swaps have landed; every single reply must be
                // an estimate (zero lost requests) at a non-decreasing version.
                while !stop.load(Ordering::Relaxed) {
                    idx = (idx + 1) % queries.len();
                    let reply = client
                        .estimate(selector, &queries[idx])
                        .expect("no request may be lost across a hot swap");
                    assert!(
                        reply.key.version >= last_version,
                        "client {client_id} went back in time: \
                         v{} after v{last_version}",
                        reply.key.version
                    );
                    last_version = reply.key.version;
                    assert_eq!(
                        reply.estimate.to_bits(),
                        sequential[idx].to_bits(),
                        "v{last_version} diverged on query {idx}"
                    );
                }
                last_version
            });
        }

        // Two hot swaps (same artifact bytes, so bit-identity must hold across
        // versions) while the clients are mid-flight.
        for _ in 0..2 {
            std::thread::sleep(Duration::from_millis(30));
            registry.publish(fingerprint, "m", load_core(&bytes));
        }
        std::thread::sleep(Duration::from_millis(30));
        stop.store(true, Ordering::Relaxed);
    });

    // Every connected client reached the final version before stopping.
    let mut probe = ServeClient::connect(addr).unwrap();
    assert_eq!(
        probe.estimate(&selector, &queries[0]).unwrap().key.version,
        3
    );
    assert_eq!(server.stats().overloaded, 0);
    server.shutdown();
}

#[test]
fn slow_loris_is_disconnected_while_pipelined_neighbours_finish() {
    let (bytes, queries) = trained_artifact_bytes();
    let core = load_core(&bytes);
    let fingerprint = schema_fingerprint(core.schema());
    let sequential: Vec<f64> = queries.iter().map(|q| core.estimate(q)).collect();

    let registry = Arc::new(ModelRegistry::new());
    registry.publish(fingerprint, "m", load_core(&bytes));
    let config = ReactorConfig {
        stall_timeout: Duration::from_millis(150),
        ..ReactorConfig::default()
    };
    let server = TcpServer::bind_with(registry, "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();
    let selector = ModelSelector::latest(fingerprint, "m");

    // The attacker: dribbles half a length prefix, then goes quiet.
    let mut loris = TcpStream::connect(addr).unwrap();
    loris.write_all(&[0x10, 0x00]).unwrap();

    // A healthy pipelined client on the same reactor, unaffected throughout.
    let mut client = ServeClient::connect(addr).unwrap();
    for q in &queries {
        client
            .send_request(&ServeRequest::new(selector.clone(), q.clone()))
            .unwrap();
    }
    for want in &sequential {
        assert_eq!(
            client.recv_result().unwrap().estimate.to_bits(),
            want.to_bits()
        );
    }

    // The stall clock fires: the loris is disconnected (EOF or reset on read),
    // having consumed one connection slot for `stall_timeout`, not forever.
    loris
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut buf = [0u8; 16];
    match loris.read(&mut buf) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("the stalled connection got {n} bytes instead of a close"),
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.stats().stalled_disconnects == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.stats().stalled_disconnects, 1);

    // The healthy client's connection survived the sweep.
    let reply = client.estimate(&selector, &queries[0]).unwrap();
    assert_eq!(reply.estimate.to_bits(), sequential[0].to_bits());
    server.shutdown();
}
