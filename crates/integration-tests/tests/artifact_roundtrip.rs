//! Losslessness contract of the model artifact (PR 4): for **random** tiny
//! configurations, training an estimator, exporting it with `to_artifact().to_bytes()`,
//! and reloading it with `NeuroCard::from_artifact_bytes` yields an estimator whose
//! estimates are **bit-identical** to the original, for every query and sample budget
//! tried — i.e. persistence is invisible to estimation.

use std::sync::Arc;

use nc_datagen::{job_light_database, job_light_schema, DataGenConfig};
use nc_schema::{Predicate, Query};
use nc_storage::{Database, TableBuilder, Value};
use nc_workloads::job_light_queries;
use neurocard::{ModelArtifact, NeuroCard, NeuroCardConfig};
use proptest::prelude::*;

/// Random-but-tiny estimator configurations: vary every architectural knob the artifact
/// must persist (embedding width, depth, factorization bits, join-key modelling, seed).
fn arb_config() -> impl Strategy<Value = NeuroCardConfig> {
    (
        2usize..7,   // d_emb
        8usize..25,  // d_hidden
        1usize..3,   // num_blocks
        0u32..9,     // fact bits; 0 = disabled
        1u64..1_000, // seed
        400usize..900,
    )
        .prop_map(|(d_emb, d_hidden, num_blocks, bits, seed, tuples)| {
            let mut config = NeuroCardConfig::tiny();
            config.d_emb = d_emb;
            config.d_hidden = d_hidden;
            config.num_blocks = num_blocks;
            config.fact_bits = if bits < 2 { None } else { Some(bits) };
            config.seed = seed;
            config.training_tuples = tuples;
            config.progressive_samples = 24;
            config.model_join_keys = seed % 3 == 0;
            config
        })
}

fn tiny_db(seed: u64) -> (Arc<Database>, Arc<nc_schema::JoinSchema>) {
    let mut db = Database::new();
    let mut a = TableBuilder::new("A", &["x", "c", "s"]);
    for i in 0..40i64 {
        let i = i + (seed % 7) as i64;
        a.push_row(vec![
            Value::Int(i % 5),
            Value::Int(i % 3),
            Value::from(format!("v{}", i % 4)),
        ]);
    }
    db.add_table(a.finish());
    let mut b = TableBuilder::new("B", &["x", "d"]);
    for i in 0..55i64 {
        b.push_row(vec![Value::Int(i % 5), Value::Int(i % 6)]);
    }
    db.add_table(b.finish());
    let schema = nc_schema::JoinSchema::new(
        vec!["A".into(), "B".into()],
        vec![nc_schema::JoinEdge::parse("A.x", "B.x")],
        "A",
    )
    .unwrap();
    (Arc::new(db), Arc::new(schema))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random config → train → bytes → load: estimates are bit-identical.
    #[test]
    fn random_configs_round_trip_losslessly(config in arb_config()) {
        let (db, schema) = tiny_db(config.seed);
        let trained = NeuroCard::build(db, schema, &config);
        let bytes = trained.to_artifact().to_bytes();
        let loaded = NeuroCard::from_artifact_bytes(&bytes).expect("load just-written artifact");

        let queries = [
            Query::join(&["A", "B"]),
            Query::join(&["A"]),
            Query::join(&["B"]).filter("B", "d", Predicate::le(3i64)),
            Query::join(&["A", "B"]).filter("A", "c", Predicate::eq(1i64)),
            Query::join(&["A"]).filter("A", "s", Predicate::eq("v2")),
        ];
        for q in &queries {
            for samples in [1usize, 7, config.progressive_samples] {
                prop_assert_eq!(
                    trained.estimate_with_samples(q, samples).to_bits(),
                    loaded.estimate_with_samples(q, samples).to_bits()
                );
            }
        }
        // Serialisation itself is deterministic: re-exporting the loaded model gives the
        // same bytes.
        prop_assert_eq!(&loaded.to_artifact().to_bytes(), &bytes);
    }
}

/// The same contract end-to-end on the JOB-light environment the benchmarks use,
/// through a real file on disk.
#[test]
fn job_light_artifact_file_round_trip() {
    let datagen = DataGenConfig {
        title_rows: 100,
        ..DataGenConfig::tiny()
    };
    let db = Arc::new(job_light_database(&datagen));
    let schema = Arc::new(job_light_schema());
    let mut config = NeuroCardConfig::tiny();
    config.training_tuples = 1_500;

    let artifact = NeuroCard::train(db.clone(), schema.clone(), &config);
    let path = std::env::temp_dir().join("nc_integration_artifact.ncar");
    std::fs::write(&path, artifact.to_bytes()).unwrap();

    let bytes = std::fs::read(&path).unwrap();
    let parsed = ModelArtifact::from_bytes(&bytes).unwrap();
    assert_eq!(parsed.manifest().tuples_trained, 1_500);
    let loaded = NeuroCard::from_artifact(&parsed).unwrap();
    // Reference estimator trained identically (training is deterministic).
    let trained = NeuroCard::build(db.clone(), schema.clone(), &config);

    let queries = job_light_queries(&db, &schema, 10, 7);
    for q in &queries {
        assert_eq!(
            trained.estimate(q).to_bits(),
            loaded.estimate(q).to_bits(),
            "query {q} diverged after the file round trip"
        );
    }
    // Batch estimation works identically on the artifact-backed estimator.
    assert_eq!(
        trained.estimate_batch(&queries),
        loaded.estimate_batch(&queries)
    );
    let _ = std::fs::remove_file(&path);
}
