//! End-to-end integration test: generate a synthetic JOB-light database, train NeuroCard,
//! and verify that it is (a) usable for every query shape the workloads produce and (b)
//! clearly better at the tail than an independence-based estimator on correlated queries.
//!
//! Training budgets are kept small so the whole test runs in seconds; the full-scale
//! comparison lives in the `nc-bench` binaries.

use std::sync::Arc;

use nc_baselines::{CardinalityEstimator, PostgresLikeEstimator};
use nc_datagen::{job_light_database, job_light_schema, DataGenConfig};
use nc_workloads::{job_light_queries, q_error, ErrorSummary};
use neurocard::{NeuroCard, NeuroCardConfig};

#[test]
fn neurocard_end_to_end_on_job_light() {
    let datagen = DataGenConfig {
        title_rows: 250,
        ..DataGenConfig::tiny()
    };
    let db = Arc::new(job_light_database(&datagen));
    let schema = Arc::new(job_light_schema());

    let mut config = NeuroCardConfig::tiny();
    config.training_tuples = 12_000;
    config.progressive_samples = 64;
    let model = NeuroCard::build(db.clone(), schema.clone(), &config);
    assert!(model.stats().num_params > 0);
    assert!(model.full_join_rows() > db.expect_table("title").num_rows() as u128);

    let queries = job_light_queries(&db, &schema, 20, 3);
    assert!(!queries.is_empty());
    let postgres = PostgresLikeEstimator::build(&db, &schema);

    let mut nc_errors = Vec::new();
    let mut pg_errors = Vec::new();
    for q in &queries {
        let truth = (nc_exec::true_cardinality(&db, &schema, q) as f64).max(1.0);
        let nc_est = model.estimate(q);
        assert!(
            nc_est.is_finite() && nc_est >= 1.0,
            "estimate for {q} is {nc_est}"
        );
        nc_errors.push(q_error(nc_est, truth));
        pg_errors.push(q_error(postgres.estimate(q), truth));
    }
    let nc = ErrorSummary::from_errors(&nc_errors);
    let pg = ErrorSummary::from_errors(&pg_errors);

    // This is a smoke test with a deliberately tiny training budget, so the bounds are
    // loose sanity checks (the real comparison at realistic budgets is produced by the
    // nc-bench binaries); they still catch gross regressions such as broken fanout
    // scaling or unnormalised selectivities.
    assert!(nc.median < 40.0, "NeuroCard median too high: {nc}");
    assert!(
        nc.max <= pg.max.max(1e4) * 3.0,
        "NeuroCard ({nc}) should not be far worse than Postgres-like ({pg}) at the tail"
    );
}

#[test]
fn estimator_handles_every_table_subset_shape() {
    let datagen = DataGenConfig::tiny();
    let db = Arc::new(job_light_database(&datagen));
    let schema = Arc::new(job_light_schema());
    let mut config = NeuroCardConfig::tiny();
    config.training_tuples = 8_000;
    let model = NeuroCard::build(db.clone(), schema.clone(), &config);

    // Single table, root + one child, root + all children — all answered by one model.
    use nc_schema::{Predicate, Query};
    let shapes = vec![
        Query::join(&["title"]),
        Query::join(&["cast_info"]),
        Query::join(&["title", "movie_keyword"]),
        Query::join(&[
            "title",
            "cast_info",
            "movie_companies",
            "movie_info",
            "movie_keyword",
            "movie_info_idx",
        ]),
        Query::join(&["title", "movie_info_idx"]).filter(
            "movie_info_idx",
            "rating",
            Predicate::ge(40i64),
        ),
    ];
    for q in &shapes {
        let est = model.estimate(q);
        assert!(est.is_finite() && est >= 1.0, "query {q} produced {est}");
    }

    // Unfiltered single-table estimates require downscaling by the learned fanouts of all
    // five omitted child tables.  A tiny under-trained model captures the fanout joint only
    // roughly, so the bound is generous — but a *missing* fanout downscale would be off by
    // the full-join blow-up factor (several orders of magnitude), which this still catches.
    let title_rows = db.expect_table("title").num_rows() as f64;
    let est = model.estimate(&Query::join(&["title"]));
    let qerr = (est / title_rows).max(title_rows / est);
    assert!(qerr < 60.0, "|title| = {title_rows}, estimated {est}");
}
