//! Determinism contract of the inference fast path (PR 3): for a fixed
//! `(model, query, seed)` the zero-allocation / GEMM-backed / compacting progressive
//! sampler returns **bit-identical** estimates to the pre-optimization reference path,
//! and [`NeuroCard::estimate_batch`] is bit-identical to calling
//! [`NeuroCard::estimate`] sequentially, at every thread count the scheduler picks.

use std::sync::Arc;

use nc_datagen::{job_light_database, job_light_schema, DataGenConfig};
use nc_schema::{Predicate, Query};
use nc_workloads::job_light_ranges_queries;
use neurocard::{EstimateError, NeuroCard, NeuroCardConfig};

fn build_model() -> (
    NeuroCard,
    Arc<nc_storage::Database>,
    Arc<nc_schema::JoinSchema>,
) {
    let datagen = DataGenConfig {
        title_rows: 120,
        ..DataGenConfig::tiny()
    };
    let db = Arc::new(job_light_database(&datagen));
    let schema = Arc::new(job_light_schema());
    let mut config = NeuroCardConfig::tiny();
    config.training_tuples = 2_000;
    (
        NeuroCard::build(db.clone(), schema.clone(), &config),
        db,
        schema,
    )
}

#[test]
fn fast_path_is_bit_identical_to_reference_path() {
    let (model, db, schema) = build_model();
    let mut queries = job_light_ranges_queries(&db, &schema, 12, 99);
    // Cover the constraint kinds the generator may not hit: a bare single-table query
    // (all-fanout downscaling) and an unfiltered full join (indicators only).
    queries.push(Query::join(&["title"]));
    queries.push(Query::join(&["title", "cast_info", "movie_companies"]));

    for (i, query) in queries.iter().enumerate() {
        for samples in [1usize, 33, 64] {
            let reference = model.estimate_with_samples_reference(query, samples);
            let fast = model.estimate_with_samples(query, samples);
            assert!(
                reference == fast,
                "query {i} ({query}) samples {samples}: reference {reference} != fast {fast}"
            );
        }
    }
}

#[test]
fn estimate_batch_matches_sequential_estimates() {
    let (model, db, schema) = build_model();
    let mut queries = job_light_ranges_queries(&db, &schema, 10, 7);
    queries.push(Query::join(&["title"]).filter(
        "title",
        "production_year",
        Predicate::ge(2000i64),
    ));

    let sequential: Vec<f64> = queries.iter().map(|q| model.estimate(q)).collect();
    let batch = model.estimate_batch(&queries);
    assert_eq!(sequential, batch);

    // Scratch reuse across a batch must not leak state between queries: estimating the
    // same workload twice through the batch API is also identical.
    assert_eq!(batch, model.estimate_batch(&queries));
}

#[test]
fn try_estimate_surfaces_unmodelled_columns_as_errors() {
    let (model, _db, _schema) = build_model();
    // Join keys are not modelled under the default `model_join_keys = false`, so a filter
    // on one is an UnknownColumn error, not a panic.
    let bad = Query::join(&["title", "cast_info"]).filter("title", "id", Predicate::eq(1i64));
    assert_eq!(
        model.try_estimate(&bad),
        Err(EstimateError::UnknownColumn {
            table: "title".into(),
            column: "id".into(),
        })
    );
    // A valid query round-trips through the fallible API with the same value.
    let good = Query::join(&["title", "cast_info"]);
    assert_eq!(model.try_estimate(&good), Ok(model.estimate(&good)));
}
