//! Hot swap under load: the registry's drain discipline, end to end.
//!
//! Client threads hammer a [`RegistryService`] with "latest NeuroCard" requests while
//! the main thread publishes v1 → v2 → v3.  The contract under test:
//!
//! * **zero lost requests** — no `ServeError` of any kind across the swaps,
//! * **monotonic version observation** — a client that saw v(n) never sees v(n-1),
//! * **drain before retirement** — a superseded version is retired exactly when its
//!   last in-flight lease drops, never earlier,
//! * **determinism** — every estimate, from every version (same artifact bytes), is
//!   bit-identical to a direct sequential [`EstimatorCore`] estimate.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use nc_schema::{JoinEdge, JoinSchema, Predicate, Query};
use nc_serve::{ModelRegistry, ModelSelector, RegistryService, ServeRequest, ServiceConfig};
use nc_storage::{Database, TableBuilder, Value};
use neurocard::{EstimatorCore, ModelArtifact, NeuroCard, NeuroCardConfig};

fn trained_artifact_bytes() -> (Vec<u8>, Vec<Query>) {
    let mut db = Database::new();
    let mut a = TableBuilder::new("A", &["x", "c"]);
    for i in 0..60i64 {
        a.push_row(vec![Value::Int(i % 7), Value::Int(i % 4)]);
    }
    db.add_table(a.finish());
    let mut b = TableBuilder::new("B", &["x", "d"]);
    for i in 0..90i64 {
        b.push_row(vec![Value::Int(i % 7), Value::Int(i % 3)]);
    }
    db.add_table(b.finish());
    let schema = JoinSchema::new(
        vec!["A".into(), "B".into()],
        vec![JoinEdge::parse("A.x", "B.x")],
        "A",
    )
    .unwrap();
    let config = NeuroCardConfig::tiny().with_training_tuples(600);
    let artifact = NeuroCard::train(Arc::new(db), Arc::new(schema), &config);
    let mut queries = vec![Query::join(&["A", "B"]), Query::join(&["A"])];
    for v in 0..3i64 {
        queries.push(Query::join(&["A", "B"]).filter("A", "c", Predicate::eq(v)));
        queries.push(Query::join(&["B"]).filter("B", "d", Predicate::le(v)));
    }
    (artifact.to_bytes().to_vec(), queries)
}

fn load_core(bytes: &[u8]) -> Arc<EstimatorCore> {
    Arc::new(
        ModelArtifact::from_bytes(bytes)
            .expect("artifact bytes round-trip")
            .to_core()
            .expect("weights load"),
    )
}

#[test]
fn swap_under_load_loses_nothing_and_drains_before_retiring() {
    let (bytes, queries) = trained_artifact_bytes();
    let artifact = ModelArtifact::from_bytes(&bytes).unwrap();
    let fingerprint = artifact.schema_fingerprint();
    // v1..v3 are loaded from the same bytes: distinct version identities, identical
    // estimates — so determinism stays assertable across the swaps.
    let v1 = load_core(&bytes);
    // The clients below request 16 samples; the sequential baseline must match.
    let sequential: Vec<f64> = queries
        .iter()
        .map(|q| v1.try_estimate_with_samples(q, 16).unwrap())
        .collect();

    let registry = Arc::new(ModelRegistry::new());
    let k1 = registry.register_core("neurocard", v1).unwrap();
    assert_eq!(k1.version, 1);
    let service = RegistryService::new(
        registry.clone(),
        ServiceConfig {
            workers: 2,
            queue_depth: 4,
            default_samples: Some(16),
        },
    );

    let stop = AtomicBool::new(false);
    let selector = ModelSelector::latest(fingerprint, "neurocard");
    let (observed, receipts) = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..3usize)
            .map(|client_id| {
                let handle = service.handle();
                let stop = &stop;
                let queries = &queries;
                let sequential = &sequential;
                let selector = &selector;
                scope.spawn(move || {
                    let mut observed: Vec<u64> = Vec::new();
                    let mut i = client_id;
                    // Hammer until the swapper says stop — every reply must succeed.
                    while !stop.load(Ordering::Relaxed) {
                        let idx = i % queries.len();
                        let reply = handle
                            .request(
                                ServeRequest::new(selector.clone(), queries[idx].clone())
                                    .with_samples(16),
                            )
                            .expect("no request may fail across a hot swap");
                        assert_eq!(
                            reply.estimate.to_bits(),
                            sequential[idx].to_bits(),
                            "estimate diverged on query {idx} (version {})",
                            reply.key.version
                        );
                        observed.push(reply.key.version);
                        i += 1;
                    }
                    observed
                })
            })
            .collect();

        // Swap v1 → v2 → v3 while the clients hammer; after each swap, wait for the
        // superseded version to drain and assert it retired only then.
        let mut receipts = Vec::new();
        for _ in 0..2 {
            std::thread::sleep(Duration::from_millis(30));
            let retired_before = registry.stats().retired;
            let receipt = registry
                .swap(fingerprint, "neurocard", load_core(&bytes))
                .unwrap();
            assert!(
                registry.wait_drained(&receipt.old, Duration::from_secs(30)),
                "{} must drain once its in-flight requests finish",
                receipt.old
            );
            // Retirement happened (exactly once for this version), and only via the
            // drain path or an empty-at-swap fast path — never while still leased.
            assert_eq!(registry.stats().retired, retired_before + 1);
            assert!(!registry
                .draining_versions()
                .iter()
                .any(|k| k == &receipt.old));
            receipts.push(receipt);
        }
        std::thread::sleep(Duration::from_millis(30));
        stop.store(true, Ordering::Relaxed);
        (
            clients
                .into_iter()
                .map(|c| c.join().expect("client panicked"))
                .collect::<Vec<_>>(),
            receipts,
        )
    });

    let stats = service.shutdown();
    let total: usize = observed.iter().map(|o| o.len()).sum();
    assert_eq!(stats.served, total);
    assert!(total > 0, "clients must have served requests");

    // Monotonic version observation per client, and v3 is current at the end.
    for versions in &observed {
        assert!(
            versions.windows(2).all(|w| w[0] <= w[1]),
            "a client observed a version rollback: {versions:?}"
        );
        assert!(versions.iter().all(|&v| (1..=3).contains(&v)));
    }
    assert_eq!(receipts.last().unwrap().new.version, 3);
    assert_eq!(
        registry.latest(fingerprint, "neurocard"),
        Some(receipts.last().unwrap().new.clone())
    );
    // Nothing left draining; both superseded versions were retired.
    assert!(registry.draining_versions().is_empty());
    let rstats = registry.stats();
    assert_eq!(rstats.swaps, 2);
    assert_eq!(rstats.retired, 2);
    assert_eq!(rstats.models, 1);
}

#[test]
fn an_explicit_lease_blocks_retirement_until_dropped() {
    let (bytes, queries) = trained_artifact_bytes();
    let fingerprint = ModelArtifact::from_bytes(&bytes)
        .unwrap()
        .schema_fingerprint();
    let registry = ModelRegistry::new();
    let k1 = registry.register_core("m", load_core(&bytes)).unwrap();

    // Pin v1 explicitly (as a long-running request would), then swap.
    let lease = registry.acquire(&ModelSelector::Exact(k1.clone())).unwrap();
    let receipt = registry.swap(fingerprint, "m", load_core(&bytes)).unwrap();
    assert!(!receipt.old_retired_immediately);
    assert_eq!(registry.draining_versions(), vec![k1.clone()]);
    // The drain does not complete while the lease lives...
    assert!(!registry.wait_drained(&k1, Duration::from_millis(20)));
    assert_eq!(registry.stats().retired, 0);
    // ...the pinned version still serves, bit-identically to a fresh load...
    let mut scratch = neurocard::SamplerScratch::new();
    assert_eq!(
        lease
            .estimate(&queries[0], Some(16), &mut scratch)
            .unwrap()
            .to_bits(),
        load_core(&bytes)
            .try_estimate_with_samples(&queries[0], 16)
            .unwrap()
            .to_bits()
    );
    // ...and retirement happens at the drop, not before.
    drop(lease);
    assert!(registry.wait_drained(&k1, Duration::from_secs(5)));
    assert_eq!(registry.stats().retired, 1);
    assert!(registry.draining_versions().is_empty());
}
