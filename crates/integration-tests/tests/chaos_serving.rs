//! Chaos serving: the full TCP stack under deterministic fault injection (PR 8).
//!
//! The serving tier's robustness contract, exercised end to end at a pinned seed:
//!
//! * **Nothing wrong, ever.**  With worker panics, injected latency, partial
//!   socket I/O and client-side connection drops all firing, every request a
//!   client completes is either bit-identical to the direct [`EstimatorCore`]
//!   answer, or explicitly `degraded` (the stats fallback), or a typed error —
//!   never a silently wrong estimate.
//! * **Retries hide the chaos.**  With a generous retry budget, all four
//!   concurrent clients complete *every* request; the fault arithmetic closes
//!   exactly (each worker panic and each connection drop is one retry).
//! * **Replayable.**  A single-client scenario rerun at the same seed reproduces
//!   bit-identical fault-point hit counts, retry counters and estimates.
//!
//! Fault hooks exist only under `debug_assertions` (the workspace test profile
//! keeps them on; release builds compile them away).
#![cfg(debug_assertions)]

use std::sync::Arc;
use std::time::Duration;

use nc_sampler::seed::derive_stream_seed;
use nc_schema::{JoinEdge, JoinSchema, Predicate, Query};
use nc_serve::{
    ClientConfig, FaultCount, FaultPlan, ModelRegistry, ModelSelector, ReactorConfig, ServeClient,
    ServeRequest, StatsFallback, TcpServer,
};
use nc_storage::{Database, TableBuilder, Value};
use neurocard::infer::SamplerScratch;
use neurocard::{schema_fingerprint, EstimatorCore, ModelArtifact, NeuroCard, NeuroCardConfig};

const CHAOS_SEED: u64 = 0xC0A5;

fn fixture() -> (Vec<u8>, Vec<Query>, Arc<Database>, Arc<JoinSchema>) {
    let mut db = Database::new();
    let mut a = TableBuilder::new("A", &["x", "c"]);
    for i in 0..60i64 {
        a.push_row(vec![Value::Int(i % 7), Value::Int(i % 4)]);
    }
    db.add_table(a.finish());
    let mut b = TableBuilder::new("B", &["x", "d"]);
    for i in 0..90i64 {
        b.push_row(vec![Value::Int(i % 7), Value::Int(i % 3)]);
    }
    db.add_table(b.finish());
    let schema = Arc::new(
        JoinSchema::new(
            vec!["A".into(), "B".into()],
            vec![JoinEdge::parse("A.x", "B.x")],
            "A",
        )
        .unwrap(),
    );
    let db = Arc::new(db);
    let config = NeuroCardConfig::tiny().with_training_tuples(600);
    let artifact = NeuroCard::train(db.clone(), schema.clone(), &config);
    let mut queries = vec![Query::join(&["A", "B"]), Query::join(&["A"])];
    for v in 0..3i64 {
        queries.push(Query::join(&["A", "B"]).filter("A", "c", Predicate::eq(v)));
        queries.push(Query::join(&["B"]).filter("B", "d", Predicate::le(v)));
    }
    (artifact.to_bytes().to_vec(), queries, db, schema)
}

fn load_core(bytes: &[u8]) -> Arc<EstimatorCore> {
    Arc::new(
        ModelArtifact::from_bytes(bytes)
            .expect("artifact bytes round-trip")
            .to_core()
            .expect("weights load"),
    )
}

fn client_config(chaos_seed: u64, client_id: u64, drop_per_mille: u32) -> ClientConfig {
    ClientConfig {
        request_timeout: Duration::from_secs(30),
        max_retries: 12,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(10),
        retry_seed: derive_stream_seed(chaos_seed, 1, client_id),
        faults: FaultPlan::new(derive_stream_seed(chaos_seed, 2, client_id))
            .point("client.conn-drop", drop_per_mille)
            .injector(),
        ..ClientConfig::default()
    }
}

#[test]
fn four_chaos_clients_at_the_pinned_seed_complete_everything_correctly() {
    let (bytes, queries, db, schema) = fixture();
    let core = load_core(&bytes);
    let fingerprint = schema_fingerprint(core.schema());
    let sequential: Vec<f64> = queries.iter().map(|q| core.estimate(q)).collect();

    // The degraded answer a ghost selector must fall back to, computed directly.
    let fallback = StatsFallback::from_database(&db, schema.clone());
    let ghost_want = {
        use nc_serve::ServingEstimator;
        let mut scratch = SamplerScratch::new();
        fallback.serve(&queries[0], 1, &mut scratch).unwrap()
    };

    let registry = Arc::new(ModelRegistry::new());
    registry.publish(fingerprint, "m", load_core(&bytes));
    registry.set_fallback(Arc::new(StatsFallback::from_database(&db, schema.clone())));
    let server_faults = FaultPlan::chaos(CHAOS_SEED).injector();
    let config = ReactorConfig {
        io_threads: 2,
        workers: 2,
        faults: server_faults.clone(),
        ..ReactorConfig::default()
    };
    let server = TcpServer::bind_with(registry, "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();
    let selector = ModelSelector::latest(fingerprint, "m");
    let ghost = ModelSelector::latest(fingerprint, "ghost");

    const CLIENTS: u64 = 4;
    const ROUNDS: usize = 3;
    let client_injectors: Vec<_> = (0..CLIENTS)
        .map(|id| client_config(CHAOS_SEED, id, 150))
        .collect();

    let retries_total: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client_id| {
                let (queries, sequential, selector, ghost) =
                    (&queries, &sequential, &selector, &ghost);
                let config = client_injectors[client_id as usize].clone();
                scope.spawn(move || {
                    let mut client = ServeClient::connect_with(addr, config).unwrap();
                    for round in 0..ROUNDS {
                        for (idx, q) in queries.iter().enumerate() {
                            let reply = client
                                .request(&ServeRequest::new(selector.clone(), q.clone()))
                                .unwrap_or_else(|e| {
                                    panic!(
                                        "client {client_id} round {round} query {idx} \
                                         exhausted its retry budget: {e}"
                                    )
                                });
                            assert!(!reply.degraded, "live model must not degrade");
                            assert_eq!(
                                reply.estimate.to_bits(),
                                sequential[idx].to_bits(),
                                "client {client_id} got a WRONG estimate under chaos \
                                 (round {round}, query {idx})"
                            );
                        }
                    }
                    // A selector matching no model degrades to the stats fallback —
                    // flagged, versioned 0, and bit-identical to the direct fallback.
                    let reply = client
                        .request(&ServeRequest::new(ghost.clone(), queries[0].clone()))
                        .expect("degraded requests still complete under chaos");
                    assert!(reply.degraded);
                    assert_eq!(reply.key.name, "stats-fallback");
                    assert_eq!(reply.key.version, 0);
                    assert_eq!(reply.estimate.to_bits(), ghost_want.to_bits());
                    client.retries()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });

    // The fault arithmetic closes exactly.  Every attempt that reaches the server
    // is one job; every job draws `worker.panic` once, and draws `worker.delay`
    // unless the panic fired first.  Every panic and every client-side connection
    // drop costs exactly one retry (all requests completed, so no fault was ever
    // absorbed by giving up).
    let requests = CLIENTS * (ROUNDS * queries.len() + 1) as u64;
    let count = |counts: &[FaultCount], point: &str| -> (u64, u64) {
        counts
            .iter()
            .find(|c| c.point == point)
            .map(|c| (c.hits, c.fired))
            .unwrap_or((0, 0))
    };
    let server_counts = server_faults.counts();
    let (panic_hits, panic_fired) = count(&server_counts, "worker.panic");
    let (delay_hits, _) = count(&server_counts, "worker.delay");
    let drops_fired: u64 = client_injectors
        .iter()
        .map(|c| count(&c.faults.counts(), "client.conn-drop").1)
        .sum();
    assert!(
        panic_fired > 0,
        "the pinned seed must actually inject panics"
    );
    assert!(
        drops_fired > 0,
        "the pinned seed must actually drop connections"
    );
    assert_eq!(
        panic_hits,
        requests + panic_fired,
        "jobs = requests + retried panics"
    );
    assert_eq!(delay_hits, panic_hits - panic_fired);
    assert_eq!(retries_total, panic_fired + drops_fired);
    assert_eq!(server.served(), panic_hits);
    server.shutdown();
}

/// One single-client scenario: sequential, so every fault draw is reached in a
/// deterministic order — the whole run must replay bit-identically.
fn replay_run(chaos_seed: u64) -> (Vec<FaultCount>, Vec<FaultCount>, u64, u64, Vec<u64>) {
    let (bytes, queries, _, _) = fixture();
    let core = load_core(&bytes);
    let fingerprint = schema_fingerprint(core.schema());

    let registry = Arc::new(ModelRegistry::new());
    registry.publish(fingerprint, "m", load_core(&bytes));
    let server_faults = FaultPlan::new(chaos_seed)
        .point("worker.panic", 120)
        .point_with_delay("worker.delay", 150, Duration::from_millis(1))
        .injector();
    let config = ReactorConfig {
        io_threads: 1,
        workers: 1,
        faults: server_faults.clone(),
        ..ReactorConfig::default()
    };
    let server = TcpServer::bind_with(registry, "127.0.0.1:0", config).unwrap();
    let client_config = client_config(chaos_seed, 0, 250);
    let client_faults = client_config.faults.clone();
    let mut client = ServeClient::connect_with(server.local_addr(), client_config).unwrap();

    let selector = ModelSelector::latest(fingerprint, "m");
    let mut bits = Vec::new();
    for round in 0..2 {
        for q in &queries {
            let reply = client
                .request(&ServeRequest::new(selector.clone(), q.clone()))
                .unwrap_or_else(|e| panic!("round {round}: {e}"));
            bits.push(reply.estimate.to_bits());
        }
    }
    let out = (
        server_faults.counts(),
        client_faults.counts(),
        client.retries(),
        client.reconnects(),
        bits,
    );
    server.shutdown();
    out
}

#[test]
fn rerunning_the_same_seed_reproduces_identical_fault_counts() {
    let a = replay_run(CHAOS_SEED);
    let b = replay_run(CHAOS_SEED);
    assert_eq!(
        a.0, b.0,
        "server fault-point hit counts diverged between runs"
    );
    assert_eq!(
        a.1, b.1,
        "client fault-point hit counts diverged between runs"
    );
    assert_eq!((a.2, a.3), (b.2, b.3), "retry/reconnect counters diverged");
    assert_eq!(a.4, b.4, "estimates diverged");
    // And the chaos was real: faults fired on both sides.
    assert!(a.0.iter().any(|c| c.fired > 0), "no server fault fired");
    assert!(a.1.iter().any(|c| c.fired > 0), "no client fault fired");

    // A different seed yields a different schedule (the seed is load-bearing).
    let c = replay_run(CHAOS_SEED ^ 0xFFFF);
    assert_ne!(
        a.0, c.0,
        "different seeds produced identical fault schedules"
    );
}

/// One full pipeline run under the chaos plan: the `pipeline.*` fault points fire on
/// a replayable schedule, aborted retrains and dropped mirror samples are accounted
/// one-for-one, and no wrong estimate ever slips through.
fn chaos_pipeline_run(chaos_seed: u64) -> (Vec<FaultCount>, String, nc_pipeline::PipelineCounters) {
    use nc_pipeline::{demo_env, DriftingSource, Pipeline, PipelineConfig};

    let pipeline_seed = 0x10E0u64;
    let env = demo_env(pipeline_seed);
    let train = NeuroCardConfig::tiny()
        .with_training_tuples(600)
        .with_seed(derive_stream_seed(pipeline_seed, 0, 2));
    let artifact = NeuroCard::train(env.db.clone(), env.schema.clone(), &train);
    let registry = Arc::new(ModelRegistry::new());
    registry
        .register_core("demo", Arc::new(artifact.to_core().unwrap()))
        .unwrap();

    let dir = std::env::temp_dir().join(format!(
        "nc-chaos-pipeline-{}-{chaos_seed:x}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let faults = FaultPlan::chaos(chaos_seed).injector();
    let mut config = PipelineConfig::new(pipeline_seed, &dir).with_faults(faults.clone());
    config.model_name = "demo".to_string();
    let mut pipeline = Pipeline::new(
        config,
        registry,
        None,
        env.schema.clone(),
        env.db.clone(),
        DriftingSource::new(pipeline_seed, 3),
    )
    .unwrap();
    let report = pipeline.run(10).unwrap();
    let out = (faults.counts(), report.digest(), report.counters);
    let _ = std::fs::remove_dir_all(&dir);
    out
}

#[test]
fn pipeline_under_chaos_is_accounted_and_replayable() {
    let (counts, digest, counters) = chaos_pipeline_run(CHAOS_SEED);

    // The pipeline points are armed and the schedule reached them.
    let fired = |name: &str| {
        counts
            .iter()
            .find(|c| c.point == name)
            .map(|c| c.fired)
            .unwrap_or_else(|| panic!("chaos plan lost the {name} point"))
    };
    let retrain_fails = fired("pipeline.retrain-fail");
    let shadow_drops = fired("pipeline.shadow-drop");
    assert!(
        retrain_fails + shadow_drops > 0,
        "no pipeline fault fired over 10 chaos steps: {counts:?}"
    );

    // Every fault is accounted one-for-one in the counters, and chaos never
    // produces a wrong estimate — faults lose samples, not correctness.
    assert_eq!(counters.retrain_aborts, retrain_fails);
    assert_eq!(counters.shadow_drops, shadow_drops);
    assert_eq!(counters.wrong_estimates, 0);

    // The whole run — fault schedule included — replays bit-identically.
    let (counts_b, digest_b, counters_b) = chaos_pipeline_run(CHAOS_SEED);
    assert_eq!(counts, counts_b, "fault-point hit counts diverged");
    assert_eq!(digest, digest_b, "decision digests diverged");
    assert_eq!(counters, counters_b);

    // A different chaos seed yields a different schedule.
    let (counts_c, _, _) = chaos_pipeline_run(CHAOS_SEED ^ 0x5A5A);
    assert_ne!(counts, counts_c, "the chaos seed is not load-bearing");
}
