//! Cross-crate property test: on randomly generated small schemas, the linear-time join
//! count DP, the brute-force full-join enumeration and the empirical distribution of the
//! sampler all agree.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use nc_exec::enumerate_full_join;
use nc_sampler::{JoinCounts, JoinSampler};
use nc_schema::{JoinEdge, JoinSchema};
use nc_storage::{Database, TableBuilder, Value};

/// Builds a random 3-table chain A(x) — B(x, y) — C(y) with small domains so the full join
/// stays enumerable.
fn build_chain(
    a_keys: &[i64],
    b_rows: &[(i64, i64)],
    c_keys: &[i64],
) -> (Arc<Database>, Arc<JoinSchema>) {
    let mut db = Database::new();
    let mut a = TableBuilder::new("A", &["x"]);
    for &k in a_keys {
        a.push_row(vec![if k < 0 { Value::Null } else { Value::Int(k) }]);
    }
    db.add_table(a.finish());
    let mut b = TableBuilder::new("B", &["x", "y"]);
    for &(x, y) in b_rows {
        b.push_row(vec![
            if x < 0 { Value::Null } else { Value::Int(x) },
            Value::Int(y),
        ]);
    }
    db.add_table(b.finish());
    let mut c = TableBuilder::new("C", &["y"]);
    for &k in c_keys {
        c.push_row(vec![Value::Int(k)]);
    }
    db.add_table(c.finish());
    let schema = JoinSchema::new(
        vec!["A".into(), "B".into(), "C".into()],
        vec![JoinEdge::parse("A.x", "B.x"), JoinEdge::parse("B.y", "C.y")],
        "A",
    )
    .unwrap();
    (Arc::new(db), Arc::new(schema))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// |J| from the DP equals the brute-force enumeration size for arbitrary small inputs,
    /// including NULL keys and dangling rows.
    #[test]
    fn join_counts_match_bruteforce(
        a_keys in prop::collection::vec(-1i64..4, 1..6),
        b_rows in prop::collection::vec((-1i64..4, 0i64..3), 0..8),
        c_keys in prop::collection::vec(0i64..3, 0..6),
    ) {
        let (db, schema) = build_chain(&a_keys, &b_rows, &c_keys);
        let counts = JoinCounts::compute(&db, &schema);
        let rows = enumerate_full_join(&db, &schema);
        prop_assert_eq!(counts.full_join_rows(), rows.len() as u128);
    }

    /// The sampler's empirical distribution over full-join rows is uniform (within noise),
    /// i.e. unbiased simple random sampling as §4 requires.
    #[test]
    fn sampler_is_uniform(
        a_keys in prop::collection::vec(0i64..3, 1..4),
        b_rows in prop::collection::vec((0i64..3, 0i64..2), 1..5),
        c_keys in prop::collection::vec(0i64..2, 0..4),
        seed in 0u64..1000,
    ) {
        let (db, schema) = build_chain(&a_keys, &b_rows, &c_keys);
        let rows = enumerate_full_join(&db, &schema);
        prop_assume!(!rows.is_empty() && rows.len() <= 40);
        let sampler = JoinSampler::new(db.clone(), schema.clone());
        prop_assert_eq!(sampler.full_join_rows(), rows.len() as u128);

        let mut rng = StdRng::seed_from_u64(seed);
        let n = 4_000usize;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            let s = sampler.sample(&mut rng);
            *counts.entry(s.slots).or_insert(0usize) += 1;
        }
        // Every sampled assignment is a real full-join row, and frequencies are within a
        // generous tolerance of uniform.
        let expected = n as f64 / rows.len() as f64;
        for (slots, count) in &counts {
            let is_real = rows.iter().any(|r| &r.assignment == slots);
            prop_assert!(is_real, "sampled assignment {slots:?} is not a full-join row");
            prop_assert!((*count as f64) < expected * 2.0 + 30.0);
        }
    }
}
