//! Determinism contract of the serving layer (PR 4): an [`EstimatorService`] over an
//! artifact-loaded model returns **bit-identical** estimates to sequential
//! [`EstimatorCore::estimate`] calls, at every worker count and under concurrent
//! clients — concurrency must be invisible to results.

use std::sync::Arc;

use nc_datagen::{job_light_database, job_light_schema, DataGenConfig};
use nc_serve::{EstimatorService, ServeError, ServiceConfig};
use nc_workloads::job_light_queries;
use neurocard::{EstimateError, NeuroCard, NeuroCardConfig};

#[test]
fn service_matches_sequential_estimates_under_concurrency() {
    let datagen = DataGenConfig {
        title_rows: 100,
        ..DataGenConfig::tiny()
    };
    let db = Arc::new(job_light_database(&datagen));
    let schema = Arc::new(job_light_schema());
    let mut config = NeuroCardConfig::tiny();
    config.training_tuples = 1_500;
    config.progressive_samples = 24;

    // Train once, serve from the persisted bytes — the production shape.
    let artifact_bytes = NeuroCard::train(db.clone(), schema.clone(), &config).to_bytes();
    let core = neurocard::ModelArtifact::from_bytes(&artifact_bytes)
        .unwrap()
        .to_core()
        .map(Arc::new)
        .unwrap();

    let queries = job_light_queries(&db, &schema, 12, 5);
    let sequential: Vec<f64> = queries.iter().map(|q| core.estimate(q)).collect();

    for workers in [1usize, 3] {
        let service = EstimatorService::new(
            core.clone(),
            ServiceConfig {
                workers,
                queue_depth: 2, // force queueing and handoffs
                default_samples: None,
            },
        );
        std::thread::scope(|scope| {
            for client in 0..4usize {
                let handle = service.handle();
                let queries = &queries;
                let sequential = &sequential;
                scope.spawn(move || {
                    for round in 0..2 {
                        for i in 0..queries.len() {
                            let idx = (i + client * 3 + round) % queries.len();
                            let est = handle.estimate(&queries[idx]).unwrap();
                            assert_eq!(
                                est.to_bits(),
                                sequential[idx].to_bits(),
                                "client {client} (workers {workers}) diverged on query {idx}"
                            );
                        }
                    }
                });
            }
        });
        let stats = service.shutdown();
        assert_eq!(stats.served, 4 * 2 * queries.len());
        assert!(stats.p50_us <= stats.p99_us);
    }

    // The error surface crosses the service boundary intact.
    let service = EstimatorService::new(core, ServiceConfig::with_workers(2));
    assert_eq!(
        service.estimate_with_samples(&queries[0], 0),
        Err(ServeError::Estimate(EstimateError::InvalidSampleCount))
    );
}
