//! JOB-light demo: the scenario the paper's introduction motivates — a star-schema movie
//! database where child-table contents correlate with the fact table, so independence-based
//! estimators go wrong on join queries.
//!
//! Builds the synthetic 6-table JOB-light database, trains NeuroCard once, and compares its
//! estimates against a Postgres-style histogram estimator on a handful of queries.
//!
//! Run with:
//! ```text
//! cargo run --release --example job_light_demo
//! ```

use std::sync::Arc;

use nc_baselines::{CardinalityEstimator, PostgresLikeEstimator};
use nc_datagen::{job_light_database, job_light_schema, DataGenConfig};
use nc_schema::{Predicate, Query};
use neurocard::{NeuroCard, NeuroCardConfig};

fn main() {
    let datagen = DataGenConfig {
        title_rows: 600,
        ..DataGenConfig::default()
    };
    let db = Arc::new(job_light_database(&datagen));
    let schema = Arc::new(job_light_schema());
    println!(
        "synthetic IMDB-like database: {} tables, {} total rows",
        schema.num_tables(),
        db.total_rows()
    );

    let mut config = NeuroCardConfig::default();
    config.training_tuples = 25_000;
    println!("training a single NeuroCard model over the full outer join of all 6 tables...");
    let neurocard = NeuroCard::build(db.clone(), schema.clone(), &config);
    let postgres = PostgresLikeEstimator::build(&db, &schema);
    println!(
        "NeuroCard size: {} KB; Postgres-like stats size: {} KB\n",
        neurocard.size_bytes() / 1024,
        postgres.size_bytes() / 1024
    );

    let queries = vec![
        Query::join(&["title", "cast_info"])
            .filter("title", "production_year", Predicate::ge(2005i64))
            .filter("cast_info", "role_id", Predicate::eq(2i64)),
        Query::join(&["title", "movie_companies", "movie_keyword"])
            .filter("title", "kind_id", Predicate::eq(1i64))
            .filter("movie_companies", "company_type_id", Predicate::eq(2i64)),
        Query::join(&["title", "movie_info", "movie_info_idx"])
            .filter("movie_info", "info_type_id", Predicate::le(5i64))
            .filter("movie_info_idx", "rating", Predicate::ge(60i64)),
        Query::join(&["title"]).filter("title", "production_year", Predicate::le(1990i64)),
    ];

    println!(
        "{:<4} {:>14} {:>14} {:>14} {:>10} {:>10}",
        "#", "truth", "NeuroCard", "Postgres", "q-err NC", "q-err PG"
    );
    for (i, q) in queries.iter().enumerate() {
        let truth = (nc_exec::true_cardinality(&db, &schema, q) as f64).max(1.0);
        let nc = neurocard.estimate(q);
        let pg = postgres.estimate(q);
        let qe = |e: f64| (e.max(1.0) / truth).max(truth / e.max(1.0));
        println!(
            "{:<4} {:>14.0} {:>14.1} {:>14.1} {:>10.2} {:>10.2}",
            i + 1,
            truth,
            nc,
            pg,
            qe(nc),
            qe(pg)
        );
    }
    println!("\nqueries touch different subsets of tables; the same single NeuroCard model");
    println!("answers all of them (no per-join-template estimators, no independence).");
}
