//! Quickstart: build a NeuroCard estimator over a small synthetic database and ask it a few
//! cardinality questions.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use nc_schema::{JoinEdge, JoinSchema, Predicate, Query};
use nc_storage::{Database, TableBuilder, Value};
use neurocard::{NeuroCard, NeuroCardConfig};

fn main() {
    // 1. Build a tiny two-table database: orders and their line items.
    let mut db = Database::new();
    let mut orders = TableBuilder::new("orders", &["id", "status", "year"]);
    let mut items = TableBuilder::new("items", &["order_id", "category", "qty"]);
    for i in 0..500i64 {
        let status = i % 3; // 0 = open, 1 = shipped, 2 = returned
        orders.push_row(vec![
            Value::Int(i),
            Value::Int(status),
            Value::Int(2015 + i % 10),
        ]);
        // Shipped orders have more line items, and their categories depend on the year.
        let n_items = if status == 1 { 4 } else { 1 };
        for k in 0..n_items {
            items.push_row(vec![
                Value::Int(i),
                Value::Int((i % 10 + k) % 6),
                Value::Int(1 + (i + k) % 5),
            ]);
        }
    }
    db.add_table(orders.finish());
    db.add_table(items.finish());
    let db = Arc::new(db);

    // 2. Describe the join schema: orders.id = items.order_id, rooted at orders.
    let schema = Arc::new(
        JoinSchema::new(
            vec!["orders".into(), "items".into()],
            vec![JoinEdge::parse("orders.id", "items.order_id")],
            "orders",
        )
        .expect("valid schema"),
    );

    // 3. Train a single estimator over the full outer join of both tables.
    let mut config = NeuroCardConfig::default();
    config.training_tuples = 20_000;
    println!(
        "training NeuroCard on {} tuples sampled from the full join...",
        config.training_tuples
    );
    let model = NeuroCard::build(db.clone(), schema.clone(), &config);
    println!(
        "model: {} parameters ({} KB), |full join| = {} rows\n",
        model.stats().num_params,
        model.size_bytes() / 1024,
        model.full_join_rows()
    );

    // 4. Ask it cardinality questions on any subset of the tables.
    let queries = vec![
        Query::join(&["orders"]).filter("orders", "status", Predicate::eq(1i64)),
        Query::join(&["orders", "items"]).filter("orders", "status", Predicate::eq(1i64)),
        Query::join(&["orders", "items"])
            .filter("orders", "year", Predicate::ge(2020i64))
            .filter("items", "category", Predicate::eq(3i64)),
        Query::join(&["items"]).filter("items", "qty", Predicate::ge(4i64)),
    ];
    for q in &queries {
        let estimate = model.estimate(q);
        let truth = nc_exec::true_cardinality(&db, &schema, q) as f64;
        println!("{q}");
        println!(
            "  estimate = {estimate:.1}   truth = {truth}   q-error = {:.2}\n",
            (estimate.max(1.0) / truth.max(1.0)).max(truth.max(1.0) / estimate.max(1.0))
        );
    }
}
