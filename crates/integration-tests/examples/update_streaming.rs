//! Update strategies under streaming ingest (paper §7.6): keep an estimator fresh as new
//! partitions of the fact table arrive.
//!
//! The example partitions the synthetic JOB-light database by `production_year`, ingests
//! the partitions one by one, and shows how a never-updated ("stale") model degrades while
//! a few incremental gradient steps ("fast update") keep the estimator accurate.
//!
//! Run with:
//! ```text
//! cargo run --release --example update_streaming
//! ```

use std::sync::Arc;

use nc_datagen::{job_light_database, job_light_schema, partitioned_snapshots, DataGenConfig};
use nc_schema::{Predicate, Query};
use neurocard::{estimator::BuildOptions, NeuroCard, NeuroCardConfig};

fn q_error(estimate: f64, truth: f64) -> f64 {
    let (e, t) = (estimate.max(1.0), truth.max(1.0));
    (e / t).max(t / e)
}

fn main() {
    let datagen = DataGenConfig {
        title_rows: 500,
        ..DataGenConfig::default()
    };
    let full_db = Arc::new(job_light_database(&datagen));
    let schema = Arc::new(job_light_schema());
    let snapshots: Vec<Arc<nc_storage::Database>> =
        partitioned_snapshots(&full_db, &schema, "production_year", 4)
            .into_iter()
            .map(Arc::new)
            .collect();
    println!(
        "4 cumulative snapshots of the database: {:?} total rows",
        snapshots.iter().map(|s| s.total_rows()).collect::<Vec<_>>()
    );

    // Both estimators start from the same model trained on the first snapshot; the
    // dictionaries cover the full database so later values are representable.
    let mut config = NeuroCardConfig::default();
    config.training_tuples = 15_000;
    let options = BuildOptions {
        dictionary_db: Some(full_db.clone()),
        biased_sampler: false,
    };
    println!("training the initial model on snapshot 1...");
    let stale = NeuroCard::build_with(
        snapshots[0].clone(),
        schema.clone(),
        &config,
        options.clone(),
    );
    let mut fresh = NeuroCard::build_with(snapshots[0].clone(), schema.clone(), &config, options);

    let queries = vec![
        Query::join(&["title", "cast_info"]).filter(
            "title",
            "production_year",
            Predicate::ge(1990i64),
        ),
        Query::join(&["title", "movie_keyword"]).filter("title", "kind_id", Predicate::eq(1i64)),
        Query::join(&["title"]).filter("title", "production_year", Predicate::ge(2000i64)),
    ];

    println!(
        "\n{:<10} {:>22} {:>22}",
        "snapshot", "stale (mean q-error)", "fast-update (mean q-error)"
    );
    for (i, snapshot) in snapshots.iter().enumerate() {
        if i > 0 {
            // Fast update: re-point the sampler at the new snapshot and take a small number
            // of gradient steps (1% of the original budget).
            fresh.ingest_snapshot(snapshot.clone(), config.training_tuples / 100 + 200);
        }
        let mean = |model: &NeuroCard| {
            let mut total = 0.0;
            for q in &queries {
                let truth = nc_exec::true_cardinality(snapshot, &schema, q) as f64;
                total += q_error(model.estimate(q), truth);
            }
            total / queries.len() as f64
        };
        println!(
            "{:<10} {:>22.2} {:>22.2}",
            i + 1,
            mean(&stale),
            mean(&fresh)
        );
    }
    println!("\nThe stale model's error grows as new partitions change the data distribution;");
    println!("a handful of incremental gradient steps after each ingest keeps the fast-update");
    println!("model close to its original accuracy (paper Table 6).");
}
