//! Schema subsetting walkthrough: reproduces the paper's Figure 4 worked example (§6) in
//! code.
//!
//! Three tables A(x), B(x, y), C(y); the full outer join has 5 rows.  Querying the full
//! join naively gives the wrong answer for queries that omit tables; indicator constraints
//! and fanout downscaling fix it.  The example prints the augmented full join, the join
//! counts, and NeuroCard's estimates for the paper's Q1 and Q2.
//!
//! Run with:
//! ```text
//! cargo run --release --example schema_subsetting
//! ```

use std::sync::Arc;

use nc_exec::enumerate_full_join;
use nc_sampler::JoinCounts;
use nc_schema::{JoinEdge, JoinSchema, Predicate, Query, SubsetPlan};
use nc_storage::{Database, TableBuilder, Value};
use neurocard::{NeuroCard, NeuroCardConfig};

fn figure4_database() -> (Arc<Database>, Arc<JoinSchema>) {
    let mut db = Database::new();
    let mut a = TableBuilder::new("A", &["x"]);
    a.push_row(vec![Value::Int(1)]);
    a.push_row(vec![Value::Int(2)]);
    db.add_table(a.finish());
    let mut b = TableBuilder::new("B", &["x", "y"]);
    b.push_row(vec![Value::Int(1), Value::from("a")]);
    b.push_row(vec![Value::Int(2), Value::from("b")]);
    b.push_row(vec![Value::Int(2), Value::from("c")]);
    db.add_table(b.finish());
    let mut c = TableBuilder::new("C", &["y"]);
    c.push_row(vec![Value::from("c")]);
    c.push_row(vec![Value::from("c")]);
    c.push_row(vec![Value::from("d")]);
    db.add_table(c.finish());
    let schema = JoinSchema::new(
        vec!["A".into(), "B".into(), "C".into()],
        vec![JoinEdge::parse("A.x", "B.x"), JoinEdge::parse("B.y", "C.y")],
        "A",
    )
    .unwrap();
    (Arc::new(db), Arc::new(schema))
}

fn main() {
    let (db, schema) = figure4_database();

    println!("=== Figure 4a: schema A(x) — B(x,y) — C(y) ===\n");

    println!("=== Figure 4b: join counts (Exact Weight DP) ===");
    let counts = JoinCounts::compute(&db, &schema);
    for table in schema.bfs_order() {
        let tc = counts.table(table);
        println!(
            "  {table}: row weights {:?}, ⊥ weight {}",
            tc.row_weights, tc.null_weight
        );
    }
    println!("  |full join| = {}\n", counts.full_join_rows());

    println!("=== Figure 4c: the augmented full outer join ===");
    for row in enumerate_full_join(&db, &schema) {
        let fmt = |t: &str, c: &str| row.value(&db, t, c).to_string();
        println!(
            "  A.x={:<2} B=({:<2}{:<2}) C.y={:<2}  indicators=({},{},{})",
            fmt("A", "x"),
            fmt("B", "x"),
            fmt("B", "y"),
            fmt("C", "y"),
            row.indicator("A"),
            row.indicator("B"),
            row.indicator("C"),
        );
    }

    println!("\n=== Figure 4d: schema subsetting ===");
    let q1 = Query::join(&["A", "B", "C"]).filter("A", "x", Predicate::eq(2i64));
    let q2 = Query::join(&["A"]).filter("A", "x", Predicate::eq(2i64));
    for (name, q, expected) in [
        ("Q1 (A ⋈ B ⋈ C, A.x = 2)", &q1, 2u128),
        ("Q2 (A only, A.x = 2)", &q2, 1),
    ] {
        let plan = SubsetPlan::build(&schema, q);
        println!("  {name}: true answer {expected}");
        println!("    joined tables  : {:?}", plan.joined_tables);
        println!("    omitted tables : {:?}", plan.omitted_tables);
        println!(
            "    fanout keys    : {:?}",
            plan.fanout_keys
                .iter()
                .map(|k| k.to_string())
                .collect::<Vec<_>>()
        );
        assert_eq!(nc_exec::true_cardinality(&db, &schema, q), expected);
    }

    println!("\n=== NeuroCard on the example ===");
    let mut config = NeuroCardConfig::tiny();
    config.training_tuples = 8_000;
    config.progressive_samples = 200;
    // This example filters the join key column A.x directly, so keep join keys in the model.
    config.model_join_keys = true;
    let model = NeuroCard::build(db.clone(), schema.clone(), &config);
    for (name, q, expected) in [("Q1", &q1, 2.0), ("Q2", &q2, 1.0)] {
        let est = model.estimate(q);
        println!("  {name}: estimate {est:.2} (true {expected})");
    }
    println!("\nWithout indicator constraints Q1 would be estimated at |J|·P(A.x=2) = 3, and");
    println!("without fanout downscaling Q2 would also be ≈3 — the corrections of §6 are");
    println!("what brings both back to the true values.");
}
