//! Join queries: a connected subset of the schema's tables plus single-table filters.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::join_schema::JoinSchema;
use crate::predicate::Predicate;

/// A filter on one column of one table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableFilter {
    /// Table the filter applies to (must be one of the query's joined tables).
    pub table: String,
    /// Column within the table.
    pub column: String,
    /// The predicate.
    pub predicate: Predicate,
}

impl TableFilter {
    /// Creates a filter.
    pub fn new(table: impl Into<String>, column: impl Into<String>, predicate: Predicate) -> Self {
        TableFilter {
            table: table.into(),
            column: column.into(),
            predicate,
        }
    }
}

impl fmt::Display for TableFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}",
            self.predicate
                .render(&format!("{}.{}", self.table, self.column))
        )
    }
}

/// Errors from query validation against a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query references a table the schema does not declare.
    UnknownTable(String),
    /// The query's joined tables do not form a connected subtree of the schema.
    NotConnected,
    /// A filter references a table the query does not join.
    FilterOnUnjoinedTable(String),
    /// The query joins no tables.
    Empty,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownTable(t) => write!(f, "query joins unknown table {t:?}"),
            QueryError::NotConnected => {
                write!(f, "query tables do not form a connected join subgraph")
            }
            QueryError::FilterOnUnjoinedTable(t) => {
                write!(
                    f,
                    "filter references table {t:?} which the query does not join"
                )
            }
            QueryError::Empty => write!(f, "query must join at least one table"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A cardinality-estimation query: an inner join over `tables` (a connected subtree of the
/// schema) with a conjunction of single-table `filters`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Query {
    /// Joined tables (order irrelevant, duplicates removed).
    pub tables: Vec<String>,
    /// Conjunctive single-table filters.
    pub filters: Vec<TableFilter>,
}

impl Query {
    /// Creates a query over the given tables with no filters.
    pub fn join(tables: &[&str]) -> Self {
        let mut seen = BTreeSet::new();
        let tables = tables
            .iter()
            .filter(|t| seen.insert(t.to_string()))
            .map(|t| t.to_string())
            .collect();
        Query {
            tables,
            filters: Vec::new(),
        }
    }

    /// Adds a filter (builder style).
    pub fn filter(
        mut self,
        table: impl Into<String>,
        column: impl Into<String>,
        predicate: Predicate,
    ) -> Self {
        self.filters
            .push(TableFilter::new(table, column, predicate));
        self
    }

    /// Whether `table` is joined by this query.
    pub fn joins(&self, table: &str) -> bool {
        self.tables.iter().any(|t| t == table)
    }

    /// Filters applying to `table`.
    pub fn filters_on(&self, table: &str) -> Vec<&TableFilter> {
        self.filters.iter().filter(|f| f.table == table).collect()
    }

    /// Number of joined tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Validates the query against a schema.
    pub fn validate(&self, schema: &JoinSchema) -> Result<(), QueryError> {
        if self.tables.is_empty() {
            return Err(QueryError::Empty);
        }
        for t in &self.tables {
            if !schema.contains(t) {
                return Err(QueryError::UnknownTable(t.clone()));
            }
        }
        if !schema.is_connected_subset(&self.tables) {
            return Err(QueryError::NotConnected);
        }
        for f in &self.filters {
            if !self.joins(&f.table) {
                return Err(QueryError::FilterOnUnjoinedTable(f.table.clone()));
            }
        }
        Ok(())
    }

    /// A compact SQL-ish rendering for logs and reports.
    pub fn render(&self) -> String {
        let mut s = format!("SELECT COUNT(*) FROM {}", self.tables.join(" ⋈ "));
        if !self.filters.is_empty() {
            let parts: Vec<String> = self.filters.iter().map(|f| f.to_string()).collect();
            s.push_str(" WHERE ");
            s.push_str(&parts.join(" AND "));
        }
        s
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join_schema::JoinEdge;
    use crate::predicate::Predicate;

    fn schema() -> JoinSchema {
        JoinSchema::new(
            vec!["t".into(), "ci".into(), "mc".into()],
            vec![
                JoinEdge::parse("t.id", "ci.movie_id"),
                JoinEdge::parse("t.id", "mc.movie_id"),
            ],
            "t",
        )
        .unwrap()
    }

    #[test]
    fn build_and_validate() {
        let q = Query::join(&["t", "ci"]).filter("t", "year", Predicate::ge(2000i64));
        assert!(q.validate(&schema()).is_ok());
        assert_eq!(q.num_tables(), 2);
        assert!(q.joins("t"));
        assert!(!q.joins("mc"));
        assert_eq!(q.filters_on("t").len(), 1);
        assert!(q.filters_on("ci").is_empty());
        assert!(q.render().contains("WHERE"));
        assert!(q.to_string().contains("t.year >= 2000"));
    }

    #[test]
    fn duplicate_tables_removed() {
        let q = Query::join(&["t", "t", "ci"]);
        assert_eq!(q.num_tables(), 2);
    }

    #[test]
    fn validation_errors() {
        let s = schema();
        assert_eq!(Query::join(&[]).validate(&s), Err(QueryError::Empty));
        assert!(matches!(
            Query::join(&["nope"]).validate(&s),
            Err(QueryError::UnknownTable(_))
        ));
        assert_eq!(
            Query::join(&["ci", "mc"]).validate(&s),
            Err(QueryError::NotConnected)
        );
        let q = Query::join(&["t"]).filter("ci", "role", Predicate::eq(1i64));
        assert!(matches!(
            q.validate(&s),
            Err(QueryError::FilterOnUnjoinedTable(_))
        ));
        for e in [
            QueryError::Empty,
            QueryError::NotConnected,
            QueryError::UnknownTable("x".into()),
            QueryError::FilterOnUnjoinedTable("x".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
