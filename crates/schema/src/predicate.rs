//! Single-column filter predicates.
//!
//! The paper's estimator supports equality and range filters (`<`, `>`, `<=`, `>=`, `=`)
//! plus `IN` on discrete or numerical columns (§3.3), with the overall filter clause being
//! a conjunction of single-table filters.  NULL never satisfies any predicate (SQL
//! three-valued logic collapsed to "unknown = false", which is what COUNT(*) observes).

use serde::{Deserialize, Serialize};

use nc_storage::Value;

/// Comparison operator of a filter predicate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `IN (v1, v2, ...)`
    In,
}

impl CompareOp {
    /// All binary comparison operators (excludes `IN`); handy for query generators.
    pub const BINARY_OPS: [CompareOp; 5] = [
        CompareOp::Eq,
        CompareOp::Lt,
        CompareOp::Le,
        CompareOp::Gt,
        CompareOp::Ge,
    ];

    /// SQL spelling of the operator.
    pub fn sql(&self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
            CompareOp::In => "IN",
        }
    }
}

/// A predicate on one column: `column <op> literal` (or `column IN (literals)`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Predicate {
    /// The comparison operator.
    pub op: CompareOp,
    /// Literal operands: exactly one for binary operators, one or more for `IN`.
    pub literals: Vec<Value>,
}

impl Predicate {
    /// `column = literal`
    pub fn eq(literal: impl Into<Value>) -> Self {
        Predicate {
            op: CompareOp::Eq,
            literals: vec![literal.into()],
        }
    }

    /// `column < literal`
    pub fn lt(literal: impl Into<Value>) -> Self {
        Predicate {
            op: CompareOp::Lt,
            literals: vec![literal.into()],
        }
    }

    /// `column <= literal`
    pub fn le(literal: impl Into<Value>) -> Self {
        Predicate {
            op: CompareOp::Le,
            literals: vec![literal.into()],
        }
    }

    /// `column > literal`
    pub fn gt(literal: impl Into<Value>) -> Self {
        Predicate {
            op: CompareOp::Gt,
            literals: vec![literal.into()],
        }
    }

    /// `column >= literal`
    pub fn ge(literal: impl Into<Value>) -> Self {
        Predicate {
            op: CompareOp::Ge,
            literals: vec![literal.into()],
        }
    }

    /// `column IN (literals...)`
    pub fn isin(literals: Vec<Value>) -> Self {
        assert!(!literals.is_empty(), "IN list must not be empty");
        Predicate {
            op: CompareOp::In,
            literals,
        }
    }

    /// Constructs a predicate from an operator and literals.
    pub fn new(op: CompareOp, literals: Vec<Value>) -> Self {
        match op {
            CompareOp::In => Self::isin(literals),
            _ => {
                assert_eq!(
                    literals.len(),
                    1,
                    "binary operators take exactly one literal"
                );
                Predicate { op, literals }
            }
        }
    }

    /// The single literal of a binary predicate.  Panics on `IN`.
    pub fn literal(&self) -> &Value {
        assert_ne!(
            self.op,
            CompareOp::In,
            "IN predicates have multiple literals"
        );
        &self.literals[0]
    }

    /// Evaluates the predicate against a value.  NULL input never matches.
    pub fn matches(&self, value: &Value) -> bool {
        if value.is_null() {
            return false;
        }
        match self.op {
            CompareOp::Eq => value == &self.literals[0],
            CompareOp::Lt => value < &self.literals[0],
            CompareOp::Le => value <= &self.literals[0],
            CompareOp::Gt => value > &self.literals[0],
            CompareOp::Ge => value >= &self.literals[0],
            CompareOp::In => self.literals.contains(value),
        }
    }

    /// The inclusive (lower, upper) value bounds this predicate imposes, when it is a
    /// simple range/equality predicate.  `IN` returns `None` (handled separately).
    pub fn value_bounds(&self) -> Option<(Option<&Value>, Option<&Value>)> {
        match self.op {
            CompareOp::Eq => Some((Some(&self.literals[0]), Some(&self.literals[0]))),
            CompareOp::Le => Some((None, Some(&self.literals[0]))),
            CompareOp::Ge => Some((Some(&self.literals[0]), None)),
            // Strict bounds are conservatively widened to inclusive here; exact semantics
            // are preserved by `matches`, and the code-level translation tightens them
            // again using the dictionary (see nc-storage::dict and neurocard::encoding).
            CompareOp::Lt => Some((None, Some(&self.literals[0]))),
            CompareOp::Gt => Some((Some(&self.literals[0]), None)),
            CompareOp::In => None,
        }
    }

    /// Human-readable SQL-ish rendering, e.g. `production_year <= 2005`.
    pub fn render(&self, column: &str) -> String {
        match self.op {
            CompareOp::In => {
                let items: Vec<String> = self.literals.iter().map(|v| format!("{v}")).collect();
                format!("{column} IN ({})", items.join(", "))
            }
            _ => format!("{column} {} {}", self.op.sql(), self.literals[0]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_ops_match() {
        assert!(Predicate::eq(5i64).matches(&Value::Int(5)));
        assert!(!Predicate::eq(5i64).matches(&Value::Int(6)));
        assert!(Predicate::lt(5i64).matches(&Value::Int(4)));
        assert!(!Predicate::lt(5i64).matches(&Value::Int(5)));
        assert!(Predicate::le(5i64).matches(&Value::Int(5)));
        assert!(Predicate::gt(5i64).matches(&Value::Int(6)));
        assert!(Predicate::ge(5i64).matches(&Value::Int(5)));
        assert!(!Predicate::ge(5i64).matches(&Value::Int(4)));
    }

    #[test]
    fn string_ranges() {
        let p = Predicate::ge("N612");
        assert!(p.matches(&Value::from("N700")));
        assert!(p.matches(&Value::from("N612")));
        assert!(!p.matches(&Value::from("A100")));
    }

    #[test]
    fn in_predicate() {
        let p = Predicate::isin(vec![Value::Int(1), Value::Int(3)]);
        assert!(p.matches(&Value::Int(1)));
        assert!(p.matches(&Value::Int(3)));
        assert!(!p.matches(&Value::Int(2)));
    }

    #[test]
    fn null_never_matches() {
        for p in [
            Predicate::eq(1i64),
            Predicate::lt(1i64),
            Predicate::ge(1i64),
            Predicate::isin(vec![Value::Null, Value::Int(1)]),
        ] {
            assert!(!p.matches(&Value::Null), "{p:?} matched NULL");
        }
    }

    #[test]
    fn bounds_and_render() {
        assert_eq!(
            Predicate::eq(5i64).value_bounds(),
            Some((Some(&Value::Int(5)), Some(&Value::Int(5))))
        );
        assert_eq!(
            Predicate::le(5i64).value_bounds(),
            Some((None, Some(&Value::Int(5))))
        );
        assert_eq!(
            Predicate::gt(5i64).value_bounds(),
            Some((Some(&Value::Int(5)), None))
        );
        assert_eq!(Predicate::isin(vec![Value::Int(1)]).value_bounds(), None);
        assert_eq!(
            Predicate::le(2005i64).render("production_year"),
            "production_year <= 2005"
        );
        assert_eq!(
            Predicate::isin(vec![Value::Int(1), Value::Int(2)]).render("kind_id"),
            "kind_id IN (1, 2)"
        );
        assert_eq!(CompareOp::Eq.sql(), "=");
        assert_eq!(Predicate::eq(3i64).literal(), &Value::Int(3));
    }

    #[test]
    #[should_panic(expected = "exactly one literal")]
    fn binary_with_two_literals_panics() {
        Predicate::new(CompareOp::Eq, vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    #[should_panic(expected = "IN list must not be empty")]
    fn empty_in_panics() {
        Predicate::isin(vec![]);
    }

    #[test]
    fn every_binary_op_agrees_with_integer_comparison() {
        // Exhaustive check of operator semantics over a small integer grid.
        for lit in -3i64..=3 {
            for v in -3i64..=3 {
                let value = Value::Int(v);
                let cases: [(Predicate, bool); 5] = [
                    (Predicate::eq(lit), v == lit),
                    (Predicate::lt(lit), v < lit),
                    (Predicate::le(lit), v <= lit),
                    (Predicate::gt(lit), v > lit),
                    (Predicate::ge(lit), v >= lit),
                ];
                for (p, expected) in cases {
                    assert_eq!(
                        p.matches(&value),
                        expected,
                        "{} on value {v}",
                        p.render("c")
                    );
                }
            }
        }
    }

    #[test]
    fn binary_ops_constant_is_complete_and_distinct() {
        assert_eq!(CompareOp::BINARY_OPS.len(), 5);
        assert!(!CompareOp::BINARY_OPS.contains(&CompareOp::In));
        let spellings: std::collections::HashSet<&str> =
            CompareOp::BINARY_OPS.iter().map(|op| op.sql()).collect();
        assert_eq!(spellings.len(), 5, "operator spellings must be distinct");
    }

    #[test]
    fn strict_and_inclusive_ops_differ_only_at_the_literal() {
        let lt = Predicate::lt(10i64);
        let le = Predicate::le(10i64);
        let gt = Predicate::gt(10i64);
        let ge = Predicate::ge(10i64);
        for v in [-100i64, 0, 9, 10, 11, 100] {
            let value = Value::Int(v);
            if v == 10 {
                assert!(!lt.matches(&value) && le.matches(&value));
                assert!(!gt.matches(&value) && ge.matches(&value));
            } else {
                assert_eq!(lt.matches(&value), le.matches(&value));
                assert_eq!(gt.matches(&value), ge.matches(&value));
            }
        }
    }

    #[test]
    fn string_equality_and_in_semantics() {
        let p = Predicate::eq("drama");
        assert!(p.matches(&Value::from("drama")));
        assert!(!p.matches(&Value::from("Drama"))); // case-sensitive
        let p = Predicate::isin(vec![Value::from("a"), Value::from("b")]);
        assert!(p.matches(&Value::from("a")));
        assert!(!p.matches(&Value::from("ab")));
        assert_eq!(p.render("genre"), "genre IN (a, b)");
    }

    #[test]
    fn in_with_duplicate_literals_still_matches_once() {
        let p = Predicate::isin(vec![Value::Int(2), Value::Int(2), Value::Int(5)]);
        assert!(p.matches(&Value::Int(2)));
        assert!(p.matches(&Value::Int(5)));
        assert!(!p.matches(&Value::Int(3)));
    }

    #[test]
    fn matches_is_consistent_with_value_bounds() {
        // Any value accepted by `matches` must lie inside the (conservative, inclusive)
        // bounds reported by `value_bounds`.
        let preds = [
            Predicate::eq(0i64),
            Predicate::lt(0i64),
            Predicate::le(0i64),
            Predicate::gt(0i64),
            Predicate::ge(0i64),
        ];
        for p in &preds {
            let (lo, hi) = p.value_bounds().expect("binary predicates have bounds");
            for v in -5i64..=5 {
                let value = Value::Int(v);
                if p.matches(&value) {
                    if let Some(lo) = lo {
                        assert!(&value >= lo, "{} accepted {v} below bound", p.render("c"));
                    }
                    if let Some(hi) = hi {
                        assert!(&value <= hi, "{} accepted {v} above bound", p.render("c"));
                    }
                }
            }
        }
    }

    #[test]
    fn new_routes_in_through_isin_validation() {
        let p = Predicate::new(CompareOp::In, vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(p.op, CompareOp::In);
        assert_eq!(p.literals.len(), 2);
        let q = Predicate::new(CompareOp::Ge, vec![Value::Int(9)]);
        assert_eq!(q.literal(), &Value::Int(9));
    }

    #[test]
    #[should_panic(expected = "multiple literals")]
    fn literal_on_in_predicate_panics() {
        Predicate::isin(vec![Value::Int(1), Value::Int(2)]).literal();
    }
}
