//! Schema subsetting (paper §6).
//!
//! NeuroCard learns the distribution of the *full outer join* of all tables.  When a query
//! touches only a subset `Q` of the tables, the estimate must be corrected:
//!
//! * every joined table `T ∈ Q` contributes an **indicator constraint** `1_T = 1`
//!   (restricting the probability space to rows that actually have a partner in `T`), and
//! * every omitted table `R ∉ Q` contributes a **fanout downscale** by `F_{R.key}` where
//!   `R.key` is the *unique* join key of `R` lying on the tree path from `R` to `Q`
//!   (uniqueness follows from the schema being a tree).
//!
//! [`SubsetPlan`] precomputes both sets for a query.

use serde::{Deserialize, Serialize};

use crate::join_schema::{ColumnRef, JoinSchema};
use crate::query::Query;

/// The schema-subsetting plan of a query: which indicator constraints to add and which
/// fanout columns to divide by.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubsetPlan {
    /// Tables joined by the query (indicator constraint `1_T = 1` for each).
    pub joined_tables: Vec<String>,
    /// Tables omitted by the query.
    pub omitted_tables: Vec<String>,
    /// For every omitted table, the unique fanout key used to downscale (paper Eq. 9).
    pub fanout_keys: Vec<ColumnRef>,
}

impl SubsetPlan {
    /// Builds the plan for `query` against `schema`.
    ///
    /// The query should already have been validated ([`Query::validate`]); this function
    /// panics on inconsistencies rather than reporting them a second time.
    pub fn build(schema: &JoinSchema, query: &Query) -> SubsetPlan {
        let joined: Vec<String> = schema
            .tables()
            .iter()
            .filter(|t| query.joins(t))
            .cloned()
            .collect();
        assert!(
            !joined.is_empty(),
            "query must join at least one schema table"
        );
        let omitted: Vec<String> = schema
            .tables()
            .iter()
            .filter(|t| !query.joins(t))
            .cloned()
            .collect();

        let mut fanout_keys = Vec::with_capacity(omitted.len());
        for r in &omitted {
            fanout_keys.push(fanout_key_for_omitted(schema, r, &joined));
        }

        SubsetPlan {
            joined_tables: joined,
            omitted_tables: omitted,
            fanout_keys,
        }
    }

    /// `(omitted table, fanout key)` pairs.
    pub fn downscales(&self) -> impl Iterator<Item = (&String, &ColumnRef)> {
        self.omitted_tables.iter().zip(self.fanout_keys.iter())
    }

    /// Whether the query touches every table of the schema (no downscaling needed).
    pub fn is_full_schema(&self) -> bool {
        self.omitted_tables.is_empty()
    }
}

/// Finds the unique join key of omitted table `omitted` that lies on the edge incident to
/// `omitted` along the tree path towards the queried tables (paper §6, "Handling fanout
/// scaling for multi-key joins").
fn fanout_key_for_omitted(schema: &JoinSchema, omitted: &str, joined: &[String]) -> ColumnRef {
    // Pick any queried table and walk the unique tree path from `omitted` towards it.  The
    // first edge on that path is incident to `omitted`; its endpoint on the `omitted` side
    // is the downscale key.
    let target = joined
        .first()
        .expect("at least one joined table is required");
    let path = schema.path(omitted, target);
    assert!(
        path.len() >= 2,
        "omitted table must differ from joined tables"
    );
    let next = &path[1];
    let edges = schema.edges_between(omitted, next);
    assert!(
        !edges.is_empty(),
        "adjacent tables on a tree path must share a join edge"
    );
    // With a composite (multi-column) join condition between the two tables, any of the
    // key columns gives the same fanout count by construction of the virtual fanout
    // columns (they are defined per join *edge endpoint*).  We deterministically pick the
    // first in edge order.
    edges[0]
        .endpoint(omitted)
        .expect("edge touches the omitted table")
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join_schema::JoinEdge;

    /// Figure 4 schema: A(x) — B(x, y) — C(y).
    fn abc() -> JoinSchema {
        JoinSchema::new(
            vec!["A".into(), "B".into(), "C".into()],
            vec![JoinEdge::parse("A.x", "B.x"), JoinEdge::parse("B.y", "C.y")],
            "A",
        )
        .unwrap()
    }

    #[test]
    fn full_schema_query_has_no_downscale() {
        let s = abc();
        let q = Query::join(&["A", "B", "C"]);
        let plan = SubsetPlan::build(&s, &q);
        assert!(plan.is_full_schema());
        assert_eq!(plan.joined_tables.len(), 3);
        assert_eq!(plan.downscales().count(), 0);
    }

    #[test]
    fn paper_q2_downscales_by_bx_and_cy() {
        // Q2 in Figure 4d: SELECT COUNT(*) FROM A WHERE A.x = 2.  Omitted: B, C.
        // B's unique key towards A is B.x; C's unique key towards A is C.y (path C→B→A,
        // edge incident to C is B.y = C.y, endpoint on C's side is C.y).
        let s = abc();
        let q = Query::join(&["A"]);
        let plan = SubsetPlan::build(&s, &q);
        assert_eq!(plan.omitted_tables, vec!["B".to_string(), "C".to_string()]);
        assert_eq!(
            plan.fanout_keys,
            vec![ColumnRef::parse("B.x"), ColumnRef::parse("C.y")]
        );
        assert!(!plan.is_full_schema());
    }

    #[test]
    fn middle_table_omitted() {
        // Query on A ⋈ B: C omitted, downscale by C.y.
        let s = abc();
        let plan = SubsetPlan::build(&s, &Query::join(&["A", "B"]));
        assert_eq!(plan.omitted_tables, vec!["C".to_string()]);
        assert_eq!(plan.fanout_keys, vec![ColumnRef::parse("C.y")]);

        // Query on B ⋈ C: A omitted, downscale by A.x.
        let plan = SubsetPlan::build(&s, &Query::join(&["B", "C"]));
        assert_eq!(plan.omitted_tables, vec!["A".to_string()]);
        assert_eq!(plan.fanout_keys, vec![ColumnRef::parse("A.x")]);
    }

    #[test]
    fn star_schema_downscale_keys() {
        let s = JoinSchema::new(
            vec!["t".into(), "ci".into(), "mc".into()],
            vec![
                JoinEdge::parse("t.id", "ci.movie_id"),
                JoinEdge::parse("t.id", "mc.movie_id"),
            ],
            "t",
        )
        .unwrap();
        let plan = SubsetPlan::build(&s, &Query::join(&["t", "ci"]));
        assert_eq!(plan.omitted_tables, vec!["mc".to_string()]);
        assert_eq!(plan.fanout_keys, vec![ColumnRef::parse("mc.movie_id")]);
    }
}
