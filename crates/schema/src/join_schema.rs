//! The join schema: a tree of tables connected by equi-join edges.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;

use serde::{Deserialize, Serialize};

/// A `table.column` reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ColumnRef {
    /// Table name.
    pub table: String,
    /// Column name within the table.
    pub column: String,
}

impl ColumnRef {
    /// Creates a reference from table and column names.
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            table: table.into(),
            column: column.into(),
        }
    }

    /// Parses a `"table.column"` string.  Panics if there is no dot.
    pub fn parse(s: &str) -> Self {
        let (t, c) = s
            .split_once('.')
            .unwrap_or_else(|| panic!("column reference {s:?} must look like table.column"));
        ColumnRef::new(t, c)
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

/// An equi-join edge between two tables.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinEdge {
    /// One endpoint.
    pub left: ColumnRef,
    /// The other endpoint.
    pub right: ColumnRef,
}

impl JoinEdge {
    /// Creates an edge `left.table.left.column = right.table.right.column`.
    pub fn new(left: ColumnRef, right: ColumnRef) -> Self {
        assert_ne!(
            left.table, right.table,
            "self-joins must duplicate the table first"
        );
        JoinEdge { left, right }
    }

    /// Convenience constructor from `"t1.c1"`, `"t2.c2"` strings.
    pub fn parse(left: &str, right: &str) -> Self {
        JoinEdge::new(ColumnRef::parse(left), ColumnRef::parse(right))
    }

    /// Whether this edge touches `table`.
    pub fn touches(&self, table: &str) -> bool {
        self.left.table == table || self.right.table == table
    }

    /// The endpoint belonging to `table`, if any.
    pub fn endpoint(&self, table: &str) -> Option<&ColumnRef> {
        if self.left.table == table {
            Some(&self.left)
        } else if self.right.table == table {
            Some(&self.right)
        } else {
            None
        }
    }

    /// The endpoint *not* belonging to `table`, if the edge touches it.
    pub fn other_endpoint(&self, table: &str) -> Option<&ColumnRef> {
        if self.left.table == table {
            Some(&self.right)
        } else if self.right.table == table {
            Some(&self.left)
        } else {
            None
        }
    }
}

impl fmt::Display for JoinEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.left, self.right)
    }
}

/// Errors from schema validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// An edge references a table that was not declared.
    UnknownTable(String),
    /// The same table was declared twice.
    DuplicateTable(String),
    /// The join graph is not connected.
    Disconnected {
        /// Tables unreachable from the root.
        unreachable: Vec<String>,
    },
    /// The join graph contains a cycle (NeuroCard assumes acyclic schemas; see §4.2).
    Cyclic,
    /// The designated root table was not declared.
    UnknownRoot(String),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::UnknownTable(t) => write!(f, "edge references unknown table {t:?}"),
            SchemaError::DuplicateTable(t) => write!(f, "table {t:?} declared more than once"),
            SchemaError::Disconnected { unreachable } => {
                write!(
                    f,
                    "join schema is not connected; unreachable: {unreachable:?}"
                )
            }
            SchemaError::Cyclic => write!(f, "join schema contains a cycle"),
            SchemaError::UnknownRoot(t) => write!(f, "root table {t:?} was not declared"),
        }
    }
}

impl std::error::Error for SchemaError {}

/// A validated acyclic join schema (a tree rooted at [`JoinSchema::root`]).
///
/// Multi-key joins: several edges may connect the same pair of tables (they then form one
/// *composite* join condition and are treated as a single tree edge), and a table may join
/// different neighbours on different columns (the JOB-M situation).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JoinSchema {
    tables: Vec<String>,
    edges: Vec<JoinEdge>,
    root: String,
    /// parent[table] = (parent table, indexes into `edges` forming the composite condition)
    parent: BTreeMap<String, (String, Vec<usize>)>,
    /// children[table] = child tables in BFS discovery order
    children: BTreeMap<String, Vec<String>>,
    bfs_order: Vec<String>,
}

impl JoinSchema {
    /// Builds and validates a join schema.
    ///
    /// `root` should normally be the fact table (e.g. `title` for the IMDB schemas); the
    /// estimator's results do not depend on the choice, but sampling starts at the root.
    pub fn new(
        tables: Vec<String>,
        edges: Vec<JoinEdge>,
        root: impl Into<String>,
    ) -> Result<Self, SchemaError> {
        let root = root.into();
        let mut seen = BTreeSet::new();
        for t in &tables {
            if !seen.insert(t.clone()) {
                return Err(SchemaError::DuplicateTable(t.clone()));
            }
        }
        if !seen.contains(&root) {
            return Err(SchemaError::UnknownRoot(root));
        }
        for e in &edges {
            for t in [&e.left.table, &e.right.table] {
                if !seen.contains(t) {
                    return Err(SchemaError::UnknownTable(t.clone()));
                }
            }
        }

        // Group edges by unordered table pair; each pair is one tree edge.
        let mut pair_edges: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (i, e) in edges.iter().enumerate() {
            let mut key = [e.left.table.clone(), e.right.table.clone()];
            key.sort();
            pair_edges
                .entry((key[0].clone(), key[1].clone()))
                .or_default()
                .push(i);
        }

        // Adjacency over table pairs.
        let mut adj: HashMap<&str, Vec<(&str, &Vec<usize>)>> = HashMap::new();
        for ((a, b), idxs) in &pair_edges {
            adj.entry(a.as_str()).or_default().push((b.as_str(), idxs));
            adj.entry(b.as_str()).or_default().push((a.as_str(), idxs));
        }

        // BFS from the root, detecting cycles and disconnection.
        let mut parent: BTreeMap<String, (String, Vec<usize>)> = BTreeMap::new();
        let mut children: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for t in &tables {
            children.insert(t.clone(), Vec::new());
        }
        let mut visited: BTreeSet<String> = BTreeSet::new();
        let mut order = Vec::new();
        let mut queue = VecDeque::new();
        visited.insert(root.clone());
        queue.push_back(root.clone());
        while let Some(t) = queue.pop_front() {
            order.push(t.clone());
            if let Some(neighbours) = adj.get(t.as_str()) {
                for (n, idxs) in neighbours {
                    if visited.contains(*n) {
                        // Seeing a visited neighbour that is not our parent means a cycle
                        // among table pairs.
                        let is_parent = parent.get(&t).map(|(p, _)| p == n).unwrap_or(false);
                        if !is_parent {
                            return Err(SchemaError::Cyclic);
                        }
                        continue;
                    }
                    visited.insert((*n).to_string());
                    parent.insert((*n).to_string(), (t.clone(), (*idxs).clone()));
                    children
                        .get_mut(&t)
                        .expect("known table")
                        .push((*n).to_string());
                    queue.push_back((*n).to_string());
                }
            }
        }
        if visited.len() != tables.len() {
            let unreachable = tables
                .iter()
                .filter(|t| !visited.contains(*t))
                .cloned()
                .collect();
            return Err(SchemaError::Disconnected { unreachable });
        }

        Ok(JoinSchema {
            tables,
            edges,
            root,
            parent,
            children,
            bfs_order: order,
        })
    }

    /// All table names in declaration order.
    pub fn tables(&self) -> &[String] {
        &self.tables
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// All join edges.
    pub fn edges(&self) -> &[JoinEdge] {
        &self.edges
    }

    /// The root table.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// Whether the schema declares `table`.
    pub fn contains(&self, table: &str) -> bool {
        self.tables.iter().any(|t| t == table)
    }

    /// Tables in breadth-first order starting at the root.
    pub fn bfs_order(&self) -> &[String] {
        &self.bfs_order
    }

    /// Children of `table` in the rooted tree.
    pub fn children(&self, table: &str) -> &[String] {
        self.children
            .get(table)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Parent of `table` in the rooted tree (`None` for the root).
    pub fn parent(&self, table: &str) -> Option<&str> {
        self.parent.get(table).map(|(p, _)| p.as_str())
    }

    /// The composite join condition between `table` and its parent (empty for the root).
    pub fn parent_edges(&self, table: &str) -> Vec<&JoinEdge> {
        self.parent
            .get(table)
            .map(|(_, idxs)| idxs.iter().map(|&i| &self.edges[i]).collect())
            .unwrap_or_default()
    }

    /// All edges of the composite join condition between two adjacent tables, in either
    /// orientation.  Empty if the tables are not adjacent in the tree.
    pub fn edges_between(&self, a: &str, b: &str) -> Vec<&JoinEdge> {
        if self.parent(a) == Some(b) {
            self.parent_edges(a)
        } else if self.parent(b) == Some(a) {
            self.parent_edges(b)
        } else {
            Vec::new()
        }
    }

    /// All join-key columns of `table` (columns that appear in any edge touching it),
    /// sorted and de-duplicated.
    pub fn join_key_columns(&self, table: &str) -> Vec<String> {
        let mut cols: Vec<String> = self
            .edges
            .iter()
            .filter_map(|e| e.endpoint(table).map(|c| c.column.clone()))
            .collect();
        cols.sort();
        cols.dedup();
        cols
    }

    /// All join-key column references in the schema (each table.column appearing in an
    /// edge), sorted.
    pub fn all_join_keys(&self) -> Vec<ColumnRef> {
        let mut keys: Vec<ColumnRef> = self
            .edges
            .iter()
            .flat_map(|e| [e.left.clone(), e.right.clone()])
            .collect();
        keys.sort();
        keys.dedup();
        keys
    }

    /// The unique tree path between two tables (inclusive of both endpoints).
    pub fn path(&self, from: &str, to: &str) -> Vec<String> {
        // Collect ancestors of both, then splice at the lowest common ancestor.
        let anc = |mut t: String| -> Vec<String> {
            let mut v = vec![t.clone()];
            while let Some(p) = self.parent(&t) {
                v.push(p.to_string());
                t = p.to_string();
            }
            v
        };
        let a = anc(from.to_string());
        let b = anc(to.to_string());
        let b_set: BTreeMap<&String, usize> = b.iter().enumerate().map(|(i, t)| (t, i)).collect();
        let mut path = Vec::new();
        for (ai, t) in a.iter().enumerate() {
            path.push(t.clone());
            if let Some(&bi) = b_set.get(t) {
                // t is the LCA; append the b-side in reverse.
                for j in (0..bi).rev() {
                    path.push(b[j].clone());
                }
                let _ = ai;
                return path;
            }
        }
        // Tables in a validated tree always share the root as an ancestor.
        unreachable!("both tables must share an ancestor in a connected schema")
    }

    /// Whether the given table subset induces a connected subtree.
    pub fn is_connected_subset(&self, tables: &[String]) -> bool {
        if tables.is_empty() {
            return false;
        }
        let set: BTreeSet<&String> = tables.iter().collect();
        if !set.iter().all(|t| self.contains(t)) {
            return false;
        }
        // BFS within the subset.
        let mut visited = BTreeSet::new();
        let mut queue = VecDeque::new();
        visited.insert(tables[0].clone());
        queue.push_back(tables[0].clone());
        while let Some(t) = queue.pop_front() {
            let mut neighbours: Vec<String> = self.children(&t).iter().cloned().collect();
            if let Some(p) = self.parent(&t) {
                neighbours.push(p.to_string());
            }
            for n in neighbours {
                if set.contains(&n) && visited.insert(n.clone()) {
                    queue.push_back(n);
                }
            }
        }
        visited.len() == set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 4 schema: A(x) — B(x, y) — C(y).
    pub fn abc_schema() -> JoinSchema {
        JoinSchema::new(
            vec!["A".into(), "B".into(), "C".into()],
            vec![JoinEdge::parse("A.x", "B.x"), JoinEdge::parse("B.y", "C.y")],
            "A",
        )
        .unwrap()
    }

    fn star_schema() -> JoinSchema {
        JoinSchema::new(
            vec!["t".into(), "ci".into(), "mc".into(), "mk".into()],
            vec![
                JoinEdge::parse("t.id", "ci.movie_id"),
                JoinEdge::parse("t.id", "mc.movie_id"),
                JoinEdge::parse("t.id", "mk.movie_id"),
            ],
            "t",
        )
        .unwrap()
    }

    #[test]
    fn column_ref_parse_display() {
        let c = ColumnRef::parse("title.id");
        assert_eq!(c.table, "title");
        assert_eq!(c.column, "id");
        assert_eq!(c.to_string(), "title.id");
    }

    #[test]
    fn chain_schema_structure() {
        let s = abc_schema();
        assert_eq!(s.root(), "A");
        assert_eq!(s.bfs_order(), &["A", "B", "C"]);
        assert_eq!(s.children("A"), &["B"]);
        assert_eq!(s.children("B"), &["C"]);
        assert_eq!(s.parent("C"), Some("B"));
        assert_eq!(s.parent("A"), None);
        assert_eq!(s.parent_edges("B").len(), 1);
        assert_eq!(s.parent_edges("A").len(), 0);
        assert_eq!(
            s.join_key_columns("B"),
            vec!["x".to_string(), "y".to_string()]
        );
        assert_eq!(s.all_join_keys().len(), 4);
        assert!(s.contains("B"));
        assert!(!s.contains("D"));
    }

    #[test]
    fn star_schema_structure() {
        let s = star_schema();
        assert_eq!(s.children("t").len(), 3);
        assert_eq!(s.bfs_order()[0], "t");
        assert_eq!(s.edges_between("t", "ci").len(), 1);
        assert_eq!(s.edges_between("ci", "t").len(), 1);
        assert!(s.edges_between("ci", "mc").is_empty());
    }

    #[test]
    fn multi_key_edges_grouped() {
        let s = JoinSchema::new(
            vec!["A".into(), "B".into()],
            vec![JoinEdge::parse("A.x", "B.x"), JoinEdge::parse("A.y", "B.y")],
            "A",
        )
        .unwrap();
        assert_eq!(s.parent_edges("B").len(), 2);
        assert_eq!(s.children("A"), &["B"]);
    }

    #[test]
    fn path_queries() {
        let s = star_schema();
        assert_eq!(s.path("ci", "mk"), vec!["ci", "t", "mk"]);
        assert_eq!(s.path("t", "mc"), vec!["t", "mc"]);
        assert_eq!(s.path("t", "t"), vec!["t"]);
        let chain = abc_schema();
        assert_eq!(chain.path("A", "C"), vec!["A", "B", "C"]);
        assert_eq!(chain.path("C", "A"), vec!["C", "B", "A"]);
    }

    #[test]
    fn connected_subsets() {
        let s = star_schema();
        assert!(s.is_connected_subset(&["t".into(), "ci".into()]));
        assert!(s.is_connected_subset(&["t".into()]));
        assert!(!s.is_connected_subset(&["ci".into(), "mc".into()]));
        assert!(!s.is_connected_subset(&[]));
        assert!(!s.is_connected_subset(&["nope".into()]));
    }

    #[test]
    fn validation_errors() {
        let err = JoinSchema::new(vec!["A".into()], vec![JoinEdge::parse("A.x", "B.x")], "A")
            .unwrap_err();
        assert!(matches!(err, SchemaError::UnknownTable(_)));

        let err = JoinSchema::new(vec!["A".into(), "A".into()], vec![], "A").unwrap_err();
        assert!(matches!(err, SchemaError::DuplicateTable(_)));

        let err = JoinSchema::new(vec!["A".into(), "B".into()], vec![], "A").unwrap_err();
        assert!(matches!(err, SchemaError::Disconnected { .. }));

        let err = JoinSchema::new(vec!["A".into()], vec![], "Z").unwrap_err();
        assert!(matches!(err, SchemaError::UnknownRoot(_)));

        let err = JoinSchema::new(
            vec!["A".into(), "B".into(), "C".into()],
            vec![
                JoinEdge::parse("A.x", "B.x"),
                JoinEdge::parse("B.y", "C.y"),
                JoinEdge::parse("C.z", "A.z"),
            ],
            "A",
        )
        .unwrap_err();
        assert_eq!(err, SchemaError::Cyclic);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    #[should_panic(expected = "self-joins")]
    fn self_join_edge_panics() {
        JoinEdge::parse("A.x", "A.y");
    }
}
