//! # nc-schema
//!
//! The join schema and query model of the NeuroCard reproduction.
//!
//! The paper (§2, §3.3) models a database's *join schema* as a graph whose vertices are
//! tables and whose edges connect joinable table pairs via equi-join keys.  Both the schema
//! and the queries submitted to the estimator are assumed **acyclic**, so a schema is a
//! tree rooted at a designated table, and a query is a connected subtree plus a conjunction
//! of single-table filters.
//!
//! This crate provides:
//!
//! * [`JoinSchema`] — the validated join tree (multi-key joins supported: a table pair may
//!   be connected by several key pairs, and a table may join different neighbours on
//!   different columns),
//! * [`Predicate`] / [`CompareOp`] — single-column filters (`=`, `<`, `<=`, `>`, `>=`, `IN`),
//! * [`Query`] — a join subgraph plus filters,
//! * [`subsetting`] — the schema-subsetting helpers of §6: which tables a query omits and
//!   which unique join key each omitted table must be downscaled by.

pub mod join_schema;
pub mod predicate;
pub mod query;
pub mod subsetting;

pub use join_schema::{ColumnRef, JoinEdge, JoinSchema, SchemaError};
pub use predicate::{CompareOp, Predicate};
pub use query::{Query, TableFilter};
pub use subsetting::SubsetPlan;
