//! # nc-datagen
//!
//! Deterministic synthetic datasets standing in for the IMDB database used by the paper.
//!
//! The paper evaluates on the real IMDB dataset (JOB-light: 6 tables, JOB-M: 16 tables).
//! That dataset is not available offline, so this crate generates *synthetic* databases with
//! the same schemas and — crucially — the same statistical character that makes IMDB a good
//! cardinality-estimation testbed (Leis et al. 2015):
//!
//! * **skewed join fanouts** — the number of cast entries / keywords / info rows per movie
//!   follows a Zipf-like distribution conditioned on the movie's attributes,
//! * **strong inter-column and inter-table correlations** — e.g. `production_year`
//!   correlates with `kind_id`; a child's `role_id` / `company_type_id` / `info_type_id`
//!   distribution depends on the parent movie's kind and year, so independence-based
//!   estimators systematically mis-estimate,
//! * **partial referential integrity** — a small fraction of child rows reference movie ids
//!   absent from `title`, and some movies have no children, so full-outer-join NULL paths
//!   are exercised,
//! * **high-cardinality columns** — id-like columns with domains far larger than what an
//!   embedding-per-value model could store without the paper's column factorization.
//!
//! All generation is seeded and deterministic: the same [`DataGenConfig`] always produces
//! the same database, so experiments are reproducible.

pub mod config;
pub mod distributions;
pub mod imdb_light;
pub mod imdb_m;
pub mod partition;

pub use config::DataGenConfig;
pub use imdb_light::{job_light_database, job_light_schema, JOB_LIGHT_TABLES};
pub use imdb_m::{job_m_database, job_m_schema, JOB_M_TABLES};
pub use partition::partitioned_snapshots;
