//! Synthetic JOB-light database: the 6-table IMDB star schema.
//!
//! Schema (star around the fact table `title`; every child joins `title.id = child.movie_id`):
//!
//! ```text
//!                       title(id, kind_id, production_year, episode_nr, season_nr, phonetic_code)
//!   cast_info(movie_id, person_id, role_id, nr_order)
//!   movie_companies(movie_id, company_id, company_type_id)
//!   movie_info(movie_id, info_type_id, info_length)
//!   movie_keyword(movie_id, keyword_id)
//!   movie_info_idx(movie_id, info_type_id, rating)
//! ```
//!
//! Injected correlations (all tunable through [`DataGenConfig`]):
//!
//! * `production_year` depends on `kind_id` (older kinds skew older),
//! * child fanout depends on `production_year` (newer movies have more credits/keywords),
//! * `role_id`, `company_type_id`, `info_type_id` and `keyword_id` depend on the parent
//!   movie's `kind_id`/year bucket,
//! * `rating` in `movie_info_idx` depends on `production_year`,
//! * `episode_nr`/`season_nr` are NULL except for episodic kinds.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nc_schema::{JoinEdge, JoinSchema};
use nc_storage::{Database, TableBuilder, Value};

use crate::config::DataGenConfig;
use crate::distributions::{correlated_category, sample_fanout, Zipf};

/// The six JOB-light table names.
pub const JOB_LIGHT_TABLES: [&str; 6] = [
    "title",
    "cast_info",
    "movie_companies",
    "movie_info",
    "movie_keyword",
    "movie_info_idx",
];

/// Number of movie kinds (`kind_id` domain).
pub const NUM_KINDS: usize = 6;
/// Number of cast roles (`role_id` domain).
pub const NUM_ROLES: usize = 11;
/// Number of company types.
pub const NUM_COMPANY_TYPES: usize = 4;
/// Number of `movie_info` info types.
pub const NUM_INFO_TYPES: usize = 20;
/// Number of `movie_info_idx` info types.
pub const NUM_INFO_IDX_TYPES: usize = 10;

/// The JOB-light join schema: a star rooted at `title`.
pub fn job_light_schema() -> JoinSchema {
    let edges = vec![
        JoinEdge::parse("title.id", "cast_info.movie_id"),
        JoinEdge::parse("title.id", "movie_companies.movie_id"),
        JoinEdge::parse("title.id", "movie_info.movie_id"),
        JoinEdge::parse("title.id", "movie_keyword.movie_id"),
        JoinEdge::parse("title.id", "movie_info_idx.movie_id"),
    ];
    JoinSchema::new(
        JOB_LIGHT_TABLES.iter().map(|s| s.to_string()).collect(),
        edges,
        "title",
    )
    .expect("static schema is valid")
}

/// Content columns (non-join-key) usable for filter generation, with a flag telling whether
/// range predicates are natural for the column (`true`) or only equality/IN (`false`).
pub fn job_light_filter_columns() -> Vec<(&'static str, &'static str, bool)> {
    vec![
        ("title", "kind_id", false),
        ("title", "production_year", true),
        ("title", "episode_nr", true),
        ("title", "season_nr", true),
        ("title", "phonetic_code", true),
        ("cast_info", "role_id", false),
        ("cast_info", "nr_order", true),
        ("movie_companies", "company_type_id", false),
        ("movie_info", "info_type_id", false),
        ("movie_info", "info_length", true),
        ("movie_keyword", "keyword_id", false),
        ("movie_info_idx", "info_type_id", false),
        ("movie_info_idx", "rating", true),
    ]
}

/// Attributes of one generated movie, shared by all child generators so that the injected
/// correlations are consistent.
struct Movie {
    id: i64,
    kind: usize,
    year: i64,
    year_bucket: usize,
}

/// Generates the JOB-light database.
pub fn job_light_database(config: &DataGenConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n_title = config.effective_title_rows();
    let movies = generate_movies(config, &mut rng, n_title);

    let mut db = Database::new();
    db.add_table(build_title(&movies, config, &mut rng));
    db.add_table(build_cast_info(&movies, config, &mut rng));
    db.add_table(build_movie_companies(&movies, config, &mut rng));
    db.add_table(build_movie_info(&movies, config, &mut rng));
    db.add_table(build_movie_keyword(&movies, config, &mut rng));
    db.add_table(build_movie_info_idx(&movies, config, &mut rng));
    db
}

fn generate_movies(config: &DataGenConfig, rng: &mut StdRng, n: usize) -> Vec<Movie> {
    let kind_dist = Zipf::new(NUM_KINDS, config.skew);
    let (y_lo, y_hi) = config.year_range;
    let span = (y_hi - y_lo).max(1);
    (0..n)
        .map(|i| {
            let kind = kind_dist.sample(rng);
            // Year correlated with kind: kind k concentrates in a kind-specific band, with
            // some spread so the marginal covers the whole range.
            let band_center = y_lo + (span * (kind as i64 + 1)) / (NUM_KINDS as i64 + 1);
            let spread = span / 4;
            let noise = rng.random_range(-spread..=spread);
            let year = (band_center + noise).clamp(y_lo, y_hi);
            let year_bucket = ((year - y_lo) * 8 / (span + 1)).clamp(0, 7) as usize;
            Movie {
                id: (i + 1) as i64,
                kind,
                year,
                year_bucket,
            }
        })
        .collect()
}

fn build_title(movies: &[Movie], config: &DataGenConfig, rng: &mut StdRng) -> nc_storage::Table {
    let mut b = TableBuilder::with_capacity(
        "title",
        &[
            "id",
            "kind_id",
            "production_year",
            "episode_nr",
            "season_nr",
            "phonetic_code",
        ],
        movies.len(),
    );
    for m in movies {
        // Episodic kinds (0 and 1) have episode/season numbers; the rest are NULL.
        let episodic = m.kind <= 1;
        let episode_nr = if episodic {
            Value::Int(rng.random_range(1..=40))
        } else {
            Value::Null
        };
        let season_nr = if episodic {
            Value::Int(rng.random_range(1..=12))
        } else {
            Value::Null
        };
        // Phonetic code: a letter correlated with the year bucket plus digits.
        let letter = (b'A' + ((m.year_bucket * 3 + m.kind) % 26) as u8) as char;
        let code = format!("{letter}{:03}", rng.random_range(0..1000));
        b.push_row(vec![
            Value::Int(m.id),
            Value::Int(m.kind as i64 + 1),
            Value::Int(m.year),
            episode_nr,
            season_nr,
            Value::from(code),
        ]);
    }
    let _ = config;
    b.finish()
}

/// Mean child fanout for a movie: newer movies get proportionally more children.
fn fanout_mean(base: f64, m: &Movie) -> f64 {
    base * (0.5 + 0.2 * m.year_bucket as f64)
}

/// Occasionally emits rows referencing a movie id that does not exist in `title`, so the
/// full outer join has child rows without a parent.
fn maybe_dangling_movie_id(
    rng: &mut StdRng,
    config: &DataGenConfig,
    n_title: usize,
) -> Option<i64> {
    if rng.random::<f64>() < config.dangling_fraction {
        Some((n_title + 1 + rng.random_range(0..n_title.max(1))) as i64)
    } else {
        None
    }
}

fn build_cast_info(
    movies: &[Movie],
    config: &DataGenConfig,
    rng: &mut StdRng,
) -> nc_storage::Table {
    let mut b = TableBuilder::new(
        "cast_info",
        &["movie_id", "person_id", "role_id", "nr_order"],
    );
    let n_persons = (movies.len() * 3).max(50);
    let person_dist = Zipf::new(n_persons, config.skew);
    let role_zipf = Zipf::new(NUM_ROLES, config.skew);
    for m in movies {
        let fanout = sample_fanout(
            rng,
            fanout_mean(config.heavy_fanout, m),
            config.skew,
            config.childless_fraction,
            60,
        );
        for order in 0..fanout {
            let movie_id = maybe_dangling_movie_id(rng, config, movies.len()).unwrap_or(m.id);
            let person = person_dist.sample(rng) as i64 + 1;
            let role =
                correlated_category(rng, m.kind, NUM_ROLES, config.correlation, 1, &role_zipf);
            b.push_row(vec![
                Value::Int(movie_id),
                Value::Int(person),
                Value::Int(role as i64 + 1),
                Value::Int(order as i64 + 1),
            ]);
        }
    }
    b.finish()
}

fn build_movie_companies(
    movies: &[Movie],
    config: &DataGenConfig,
    rng: &mut StdRng,
) -> nc_storage::Table {
    let mut b = TableBuilder::new(
        "movie_companies",
        &["movie_id", "company_id", "company_type_id"],
    );
    let n_companies = (movies.len() / 2).max(20);
    let company_dist = Zipf::new(n_companies, config.skew);
    let ctype_zipf = Zipf::new(NUM_COMPANY_TYPES, config.skew);
    for m in movies {
        let fanout = sample_fanout(
            rng,
            fanout_mean(config.light_fanout, m),
            config.skew,
            config.childless_fraction,
            20,
        );
        for _ in 0..fanout {
            let movie_id = maybe_dangling_movie_id(rng, config, movies.len()).unwrap_or(m.id);
            let company = company_dist.sample(rng) as i64 + 1;
            let ctype = correlated_category(
                rng,
                m.year_bucket,
                NUM_COMPANY_TYPES,
                config.correlation,
                2,
                &ctype_zipf,
            );
            b.push_row(vec![
                Value::Int(movie_id),
                Value::Int(company),
                Value::Int(ctype as i64 + 1),
            ]);
        }
    }
    b.finish()
}

fn build_movie_info(
    movies: &[Movie],
    config: &DataGenConfig,
    rng: &mut StdRng,
) -> nc_storage::Table {
    let mut b = TableBuilder::new("movie_info", &["movie_id", "info_type_id", "info_length"]);
    let itype_zipf = Zipf::new(NUM_INFO_TYPES, config.skew);
    for m in movies {
        let fanout = sample_fanout(
            rng,
            fanout_mean(config.heavy_fanout, m),
            config.skew,
            config.childless_fraction,
            40,
        );
        for _ in 0..fanout {
            let movie_id = maybe_dangling_movie_id(rng, config, movies.len()).unwrap_or(m.id);
            let itype = correlated_category(
                rng,
                m.kind * 3 + m.year_bucket,
                NUM_INFO_TYPES,
                config.correlation,
                5,
                &itype_zipf,
            );
            // info_length correlated with info type.
            let info_length = (itype as i64 + 1) * 10 + rng.random_range(0..10);
            b.push_row(vec![
                Value::Int(movie_id),
                Value::Int(itype as i64 + 1),
                Value::Int(info_length),
            ]);
        }
    }
    b.finish()
}

fn build_movie_keyword(
    movies: &[Movie],
    config: &DataGenConfig,
    rng: &mut StdRng,
) -> nc_storage::Table {
    let mut b = TableBuilder::new("movie_keyword", &["movie_id", "keyword_id"]);
    let n_keywords = (movies.len() * 2).max(40);
    let keyword_zipf = Zipf::new(n_keywords, config.skew);
    for m in movies {
        let fanout = sample_fanout(
            rng,
            fanout_mean(config.light_fanout, m),
            config.skew,
            config.childless_fraction,
            25,
        );
        for _ in 0..fanout {
            let movie_id = maybe_dangling_movie_id(rng, config, movies.len()).unwrap_or(m.id);
            let keyword = correlated_category(
                rng,
                m.kind * 13 + m.year_bucket * 3,
                n_keywords,
                config.correlation * 0.6,
                11,
                &keyword_zipf,
            );
            b.push_row(vec![Value::Int(movie_id), Value::Int(keyword as i64 + 1)]);
        }
    }
    b.finish()
}

fn build_movie_info_idx(
    movies: &[Movie],
    config: &DataGenConfig,
    rng: &mut StdRng,
) -> nc_storage::Table {
    let mut b = TableBuilder::new("movie_info_idx", &["movie_id", "info_type_id", "rating"]);
    let itype_zipf = Zipf::new(NUM_INFO_IDX_TYPES, config.skew);
    for m in movies {
        let fanout = sample_fanout(
            rng,
            fanout_mean(config.light_fanout, m),
            config.skew,
            config.childless_fraction,
            12,
        );
        for _ in 0..fanout {
            let movie_id = maybe_dangling_movie_id(rng, config, movies.len()).unwrap_or(m.id);
            let itype = correlated_category(
                rng,
                m.kind,
                NUM_INFO_IDX_TYPES,
                config.correlation,
                7,
                &itype_zipf,
            );
            // Ratings in [10, 100], higher for newer movies on average.
            let rating = 10 + (m.year_bucket as i64 * 8) + rng.random_range(0..30);
            b.push_row(vec![
                Value::Int(movie_id),
                Value::Int(itype as i64 + 1),
                Value::Int(rating.min(100)),
            ]);
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_is_valid_star() {
        let s = job_light_schema();
        assert_eq!(s.num_tables(), 6);
        assert_eq!(s.root(), "title");
        assert_eq!(s.children("title").len(), 5);
        for t in JOB_LIGHT_TABLES.iter().skip(1) {
            assert_eq!(s.parent(t), Some("title"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = DataGenConfig::tiny();
        let a = job_light_database(&cfg);
        let b = job_light_database(&cfg);
        for t in JOB_LIGHT_TABLES {
            let ta = a.expect_table(t);
            let tb = b.expect_table(t);
            assert_eq!(ta.num_rows(), tb.num_rows(), "table {t}");
            if ta.num_rows() > 0 {
                assert_eq!(ta.row(0), tb.row(0));
                assert_eq!(
                    ta.row((ta.num_rows() - 1) as u32),
                    tb.row((tb.num_rows() - 1) as u32)
                );
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = job_light_database(&DataGenConfig::with_seed(1));
        let b = job_light_database(&DataGenConfig::with_seed(2));
        let ca = a.expect_table("cast_info").num_rows();
        let cb = b.expect_table("cast_info").num_rows();
        assert_ne!(
            (ca, a.expect_table("cast_info").row(0)),
            (cb, b.expect_table("cast_info").row(0))
        );
    }

    #[test]
    fn tables_have_expected_shape() {
        let cfg = DataGenConfig::tiny();
        let db = job_light_database(&cfg);
        let title = db.expect_table("title");
        assert_eq!(title.num_rows(), cfg.effective_title_rows());
        assert_eq!(title.num_columns(), 6);
        // ids are unique.
        assert_eq!(
            title.column("id").unwrap().distinct_count(),
            title.num_rows()
        );
        // children are larger than the fact table on average (fanout > 1).
        assert!(db.expect_table("cast_info").num_rows() > title.num_rows());
        // some episode numbers are NULL (non-episodic kinds).
        assert!(title.column("episode_nr").unwrap().null_count() > 0);
    }

    #[test]
    fn correlations_present_between_kind_and_year() {
        let db = job_light_database(&DataGenConfig::default());
        let title = db.expect_table("title");
        let kind = title.column("kind_id").unwrap();
        let year = title.column("production_year").unwrap();
        // Average year of kind 1 should differ noticeably from kind 6 given the banding.
        let mut sums = vec![(0i64, 0i64); NUM_KINDS + 1];
        for r in 0..title.num_rows() {
            let k = kind.value(r).as_int().unwrap() as usize;
            let y = year.value(r).as_int().unwrap();
            sums[k].0 += y;
            sums[k].1 += 1;
        }
        let avg = |k: usize| sums[k].0 as f64 / sums[k].1.max(1) as f64;
        if sums[1].1 > 10 && sums[NUM_KINDS].1 > 10 {
            assert!(
                avg(NUM_KINDS) - avg(1) > 5.0,
                "expected year/kind correlation"
            );
        }
    }

    #[test]
    fn some_children_dangle() {
        let cfg = DataGenConfig {
            dangling_fraction: 0.2,
            ..DataGenConfig::tiny()
        };
        let db = job_light_database(&cfg);
        let n_title = db.expect_table("title").num_rows() as i64;
        let ci = db.expect_table("cast_info");
        let dangling = ci
            .column("movie_id")
            .unwrap()
            .iter()
            .filter(|v| v.as_int().map(|i| i > n_title).unwrap_or(false))
            .count();
        assert!(dangling > 0, "expected dangling child rows");
    }

    #[test]
    fn filter_columns_exist() {
        let db = job_light_database(&DataGenConfig::tiny());
        for (t, c, _) in job_light_filter_columns() {
            assert!(
                db.expect_table(t).column(c).is_some(),
                "missing filter column {t}.{c}"
            );
        }
    }
}
