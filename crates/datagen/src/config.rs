//! Generation parameters.

/// Parameters controlling dataset size and shape.
///
/// The defaults are sized so that every experiment in the benchmark harness runs on a
/// single CPU core in minutes while preserving the statistical properties that matter
/// (skew, correlation, partial referential integrity).  The `scale` knob multiplies all row
/// counts for users who want something closer to the real IMDB scale.
#[derive(Debug, Clone)]
pub struct DataGenConfig {
    /// PRNG seed; identical configs generate identical databases.
    pub seed: u64,
    /// Number of rows in the fact table `title` before scaling.
    pub title_rows: usize,
    /// Global multiplier applied to all row counts.
    pub scale: f64,
    /// Mean fanout (children per movie) for the wide child tables (`cast_info`,
    /// `movie_info`).
    pub heavy_fanout: f64,
    /// Mean fanout for the narrow child tables (`movie_keyword`, `movie_companies`,
    /// `movie_info_idx`).
    pub light_fanout: f64,
    /// Zipf skew exponent for fanout and categorical distributions (higher = more skew).
    pub skew: f64,
    /// Fraction of child rows whose `movie_id` intentionally has no match in `title`
    /// (exercises full-outer-join NULL handling).
    pub dangling_fraction: f64,
    /// Fraction of title rows that receive no children in a given child table.
    pub childless_fraction: f64,
    /// Production-year range (inclusive) of generated movies.
    pub year_range: (i64, i64),
    /// Strength in [0, 1] of the injected correlation between parent attributes and child
    /// content columns (0 = independent, 1 = deterministic).
    pub correlation: f64,
}

impl Default for DataGenConfig {
    fn default() -> Self {
        DataGenConfig {
            seed: 0x5EED_CA2D,
            title_rows: 1_000,
            scale: 1.0,
            heavy_fanout: 4.0,
            light_fanout: 2.0,
            skew: 1.1,
            dangling_fraction: 0.02,
            childless_fraction: 0.15,
            year_range: (1960, 2020),
            correlation: 0.8,
        }
    }
}

impl DataGenConfig {
    /// A configuration with the given seed and default sizes.
    pub fn with_seed(seed: u64) -> Self {
        DataGenConfig {
            seed,
            ..Default::default()
        }
    }

    /// A small configuration for fast unit tests.
    pub fn tiny() -> Self {
        DataGenConfig {
            title_rows: 120,
            heavy_fanout: 3.0,
            light_fanout: 1.5,
            ..Default::default()
        }
    }

    /// Effective row count of the fact table after scaling.
    pub fn effective_title_rows(&self) -> usize {
        ((self.title_rows as f64) * self.scale).round().max(1.0) as usize
    }

    /// Number of distinct production years.
    pub fn num_years(&self) -> i64 {
        self.year_range.1 - self.year_range.0 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = DataGenConfig::default();
        assert!(c.title_rows > 0);
        assert!(c.heavy_fanout > c.light_fanout);
        assert!(c.dangling_fraction < 0.5);
        assert!(c.num_years() > 0);
        assert_eq!(c.effective_title_rows(), c.title_rows);
    }

    #[test]
    fn scaling_applies() {
        let mut c = DataGenConfig::tiny();
        c.scale = 2.5;
        assert_eq!(c.effective_title_rows(), 300);
        c.scale = 0.0001;
        assert_eq!(c.effective_title_rows(), 1);
    }

    #[test]
    fn with_seed_sets_seed() {
        assert_eq!(DataGenConfig::with_seed(7).seed, 7);
    }
}
