//! Small, dependency-free random distributions used by the generators.
//!
//! Implemented locally (rather than pulling in a distributions crate) so the exact sampling
//! behaviour is pinned by this repository and reproducible across dependency upgrades.

use rand::Rng;

/// A discrete Zipf-like sampler over `{0, 1, ..., n-1}` where element `i` has weight
/// `1 / (i + 1)^s`.
///
/// Sampling is `O(log n)` via binary search over the precomputed cumulative weights.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` elements with skew exponent `s`.
    ///
    /// Panics if `n == 0` or `s` is not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one element");
        assert!(
            s.is_finite() && s >= 0.0,
            "skew must be a finite non-negative number"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(s);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the distribution is empty (never true; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws an index in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let u: f64 = rng.random::<f64>() * total;
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.len() - 1)
    }
}

/// A categorical sampler over `{0, .., n-1}` with explicit weights.
#[derive(Debug, Clone)]
pub struct Categorical {
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Creates a categorical distribution from non-negative weights (at least one must be
    /// positive).
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "need at least one weight");
        assert!(weights.iter().all(|w| *w >= 0.0 && w.is_finite()));
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for w in weights {
            total += w;
            cumulative.push(total);
        }
        assert!(total > 0.0, "at least one weight must be positive");
        Categorical { cumulative }
    }

    /// Draws an index in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let u: f64 = rng.random::<f64>() * total;
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1)
    }
}

/// Draws a child-count ("fanout") with the given mean and Zipf-like upper tail.
///
/// A fraction of draws are 0 (childless parents); the rest follow `1 + Zipf` truncated at
/// `max`, rescaled so the mean is approximately `mean`.
pub fn sample_fanout<R: Rng + ?Sized>(
    rng: &mut R,
    mean: f64,
    skew: f64,
    childless_fraction: f64,
    max: usize,
) -> usize {
    if rng.random::<f64>() < childless_fraction {
        return 0;
    }
    // Geometric-ish body with a heavy tail: mix of a rounded exponential and a Zipf spike.
    let body = -(1.0 - rng.random::<f64>()).ln() * mean;
    let spike = if rng.random::<f64>() < 0.05 {
        let z = Zipf::new(max.max(1), skew.max(0.1));
        z.sample(rng) as f64
    } else {
        0.0
    };
    ((body + spike).round() as usize).clamp(1, max)
}

/// Draws a child category correlated with a parent category.
///
/// With probability `correlation` the child category is a deterministic function of the
/// parent (`(parent * 7 + offset) % n_child`); otherwise it is a skewed draw over the whole
/// child domain.  This creates exactly the kind of cross-table dependence that breaks
/// independence-assuming estimators while remaining cheap to generate.
pub fn correlated_category<R: Rng + ?Sized>(
    rng: &mut R,
    parent_code: usize,
    n_child: usize,
    correlation: f64,
    offset: usize,
    zipf: &Zipf,
) -> usize {
    assert!(n_child > 0);
    if rng.random::<f64>() < correlation {
        (parent_code.wrapping_mul(7).wrapping_add(offset)) % n_child
    } else {
        zipf.sample(rng) % n_child
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(10, 1.2);
        assert_eq!(z.len(), 10);
        assert!(!z.is_empty());
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 10];
        for _ in 0..20_000 {
            let i = z.sample(&mut rng);
            assert!(i < 10);
            counts[i] += 1;
        }
        // Head element must dominate the tail element by a wide margin.
        assert!(counts[0] > counts[9] * 3, "counts: {counts:?}");
    }

    #[test]
    fn categorical_respects_weights() {
        let c = Categorical::new(&[0.0, 1.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 3];
        for _ in 0..10_000 {
            counts[c.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[2] > counts[1] * 2);
    }

    #[test]
    fn fanout_bounds_and_childlessness() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut zero = 0;
        let mut total = 0usize;
        for _ in 0..5_000 {
            let f = sample_fanout(&mut rng, 3.0, 1.1, 0.2, 50);
            assert!(f <= 50);
            if f == 0 {
                zero += 1;
            }
            total += f;
        }
        let zero_frac = zero as f64 / 5_000.0;
        assert!(
            (0.15..0.25).contains(&zero_frac),
            "zero fraction {zero_frac}"
        );
        assert!(total > 5_000, "mean fanout should exceed 1");
    }

    #[test]
    fn correlated_category_tracks_parent() {
        let mut rng = StdRng::seed_from_u64(4);
        let zipf = Zipf::new(20, 1.0);
        let mut agree = 0;
        let n = 5_000;
        for i in 0..n {
            let parent = i % 10;
            let child = correlated_category(&mut rng, parent, 20, 0.9, 3, &zipf);
            if child == (parent * 7 + 3) % 20 {
                agree += 1;
            }
        }
        assert!(agree as f64 / n as f64 > 0.85);
        // And with zero correlation it should rarely agree.
        let mut agree = 0;
        for i in 0..n {
            let parent = i % 10;
            let child = correlated_category(&mut rng, parent, 20, 0.0, 3, &zipf);
            if child == (parent * 7 + 3) % 20 {
                agree += 1;
            }
        }
        assert!((agree as f64 / n as f64) < 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn zipf_zero_elements_panics() {
        Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn categorical_all_zero_panics() {
        Categorical::new(&[0.0, 0.0]);
    }
}
