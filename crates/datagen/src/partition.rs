//! Time-ordered partition snapshots for the update experiments (paper §7.6, Table 6).
//!
//! The paper range-partitions `title` on a year column into 5 partitions; ingesting each
//! partition defines a new snapshot of the entire database (children are restricted to the
//! movies present so far).  Running the same query set against successive snapshots yields
//! distinct sets of true cardinalities, which is how the "stale vs fast-update vs retrain"
//! strategies are compared.

use std::collections::HashSet;

use nc_storage::{Database, Table, Value};

/// Splits the database into `n_partitions` *cumulative* snapshots by range-partitioning the
/// root table `root` on `year_column`.
///
/// Snapshot `k` contains the first `k+1` partitions of the root table and every child row
/// whose join key references a root row present in the snapshot (dangling child rows are
/// assigned to the final snapshot so the last snapshot equals the full database).
pub fn partitioned_snapshots(
    db: &Database,
    schema: &nc_schema::JoinSchema,
    year_column: &str,
    n_partitions: usize,
) -> Vec<Database> {
    assert!(n_partitions >= 1);
    let root_name = schema.root();
    let root = db.expect_table(root_name);
    let years = root
        .column(year_column)
        .unwrap_or_else(|| panic!("root table has no column {year_column:?}"));

    // Partition boundaries: equal-width over the observed year range.
    let (min_y, max_y) = years
        .min_max()
        .map(|(a, b)| (a.as_int().unwrap_or(0), b.as_int().unwrap_or(0)))
        .unwrap_or((0, 0));
    let span = (max_y - min_y + 1).max(1);
    let width = (span as f64 / n_partitions as f64).ceil() as i64;

    let mut snapshots = Vec::with_capacity(n_partitions);
    for p in 0..n_partitions {
        let cutoff = if p + 1 == n_partitions {
            i64::MAX
        } else {
            min_y + width * (p as i64 + 1)
        };
        // Root rows with year < cutoff (NULL years go to the last partition).
        let mut keep_rows = Vec::new();
        for r in 0..root.num_rows() {
            let v = years.value(r);
            let include = match v.as_int() {
                Some(y) => y < cutoff,
                None => p + 1 == n_partitions,
            };
            if include {
                keep_rows.push(r as u32);
            }
        }
        let root_snapshot = root.select_rows(&keep_rows);

        let mut snapshot = Database::new();
        // The set of root join-key values present (used to filter children).
        let last = p + 1 == n_partitions;
        snapshot.add_table(root_snapshot);
        for table in db.tables() {
            if table.name() == root_name {
                continue;
            }
            snapshot.add_table(restrict_to_parents(
                db, schema, &snapshot, table, root_name, last,
            ));
        }
        snapshots.push(snapshot);
    }
    snapshots
}

/// Restricts `table` to rows transitively reachable from the root rows already present in
/// `snapshot` (walking the join tree top-down).  If `keep_dangling` is set, rows whose key
/// has no parent anywhere in the *full* database are also kept.
fn restrict_to_parents(
    full_db: &Database,
    schema: &nc_schema::JoinSchema,
    snapshot: &Database,
    table: &Table,
    root_name: &str,
    keep_dangling: bool,
) -> Table {
    // Build the chain of ancestors from this table up to the root; then walk down from the
    // root snapshot restricting step by step.  For the star/snowflake schemas used here the
    // chain is short (≤ 2 hops).
    let mut chain = vec![table.name().to_string()];
    while let Some(p) = schema.parent(chain.last().expect("non-empty")) {
        chain.push(p.to_string());
        if p == root_name {
            break;
        }
    }
    chain.reverse(); // root .. table

    // Allowed key set at each level: start with all rows of the root snapshot.
    let mut allowed_parent: Option<(String, HashSet<Value>)> = None;
    for window in chain.windows(2) {
        let parent_name = &window[0];
        let child_name = &window[1];
        let edges = schema.edges_between(parent_name, child_name);
        let parent_table: &Table = if parent_name == root_name {
            snapshot.expect_table(parent_name)
        } else {
            // Intermediate bridge tables were restricted in earlier iterations only if the
            // caller processes tables in BFS order; to stay order-independent we re-derive
            // the restriction from the full database here.
            full_db.expect_table(parent_name)
        };
        // Parent-side allowed key values for this edge.
        let edge = edges.first().expect("adjacent tables share an edge");
        let (p_col, c_col) = if edge.left.table == *parent_name {
            (edge.left.column.clone(), edge.right.column.clone())
        } else {
            (edge.right.column.clone(), edge.left.column.clone())
        };
        let p_column = parent_table.column(&p_col).expect("edge column exists");
        let mut allowed: HashSet<Value> = HashSet::new();
        for r in 0..parent_table.num_rows() {
            // If the parent itself was restricted, only keep values allowed there.
            let key = p_column.value(r);
            if key.is_null() {
                continue;
            }
            if let Some((prev_col, prev_allowed)) = &allowed_parent {
                let prev_val = parent_table
                    .column(prev_col)
                    .expect("previous key column")
                    .value(r);
                if !prev_allowed.contains(&prev_val) {
                    continue;
                }
            }
            allowed.insert(key);
        }
        allowed_parent = Some((c_col, allowed));
    }

    let (child_key_col, allowed) = match allowed_parent {
        Some(x) => x,
        // Table *is* the root (handled by the caller); defensively return a clone.
        None => return table.clone(),
    };
    let key_col = table.column(&child_key_col).expect("child key column");
    let mut keep = Vec::new();
    for r in 0..table.num_rows() {
        let v = key_col.value(r);
        let parent_exists_somewhere = !full_db
            .index(
                schema.parent(table.name()).expect("non-root"),
                &parent_key_column(schema, table.name()),
            )
            .lookup(&v)
            .is_empty();
        let include = allowed.contains(&v) || (keep_dangling && !parent_exists_somewhere);
        if include {
            keep.push(r as u32);
        }
    }
    table.select_rows(&keep)
}

/// The parent-side column of the edge between `table` and its parent.
fn parent_key_column(schema: &nc_schema::JoinSchema, table: &str) -> String {
    let parent = schema.parent(table).expect("non-root table");
    let edge = schema.edges_between(parent, table)[0];
    edge.endpoint(parent)
        .expect("edge touches parent")
        .column
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DataGenConfig;
    use crate::imdb_light::{job_light_database, job_light_schema};

    #[test]
    fn snapshots_grow_and_last_covers_everything() {
        let cfg = DataGenConfig::tiny();
        let db = job_light_database(&cfg);
        let schema = job_light_schema();
        let snaps = partitioned_snapshots(&db, &schema, "production_year", 5);
        assert_eq!(snaps.len(), 5);
        let mut prev_title = 0;
        for s in &snaps {
            let n = s.expect_table("title").num_rows();
            assert!(n >= prev_title, "title partitions must be cumulative");
            prev_title = n;
        }
        // The final snapshot matches the full database row counts.
        for t in crate::imdb_light::JOB_LIGHT_TABLES {
            assert_eq!(
                snaps[4].expect_table(t).num_rows(),
                db.expect_table(t).num_rows(),
                "final snapshot should equal the full database for {t}"
            );
        }
        // Earlier snapshots are strictly smaller overall.
        assert!(snaps[0].total_rows() < snaps[4].total_rows());
    }

    #[test]
    fn children_reference_only_present_movies_in_early_snapshots() {
        let cfg = DataGenConfig::tiny();
        let db = job_light_database(&cfg);
        let schema = job_light_schema();
        let snaps = partitioned_snapshots(&db, &schema, "production_year", 4);
        let first = &snaps[0];
        let present: HashSet<Value> = first
            .expect_table("title")
            .column("id")
            .unwrap()
            .iter()
            .collect();
        let ci = first.expect_table("cast_info");
        for r in 0..ci.num_rows() {
            let mid = ci.value("movie_id", r as u32);
            assert!(
                present.contains(&mid),
                "early snapshot contains a child row whose movie is not ingested yet"
            );
        }
    }

    #[test]
    fn single_partition_is_whole_database() {
        let cfg = DataGenConfig::tiny();
        let db = job_light_database(&cfg);
        let schema = job_light_schema();
        let snaps = partitioned_snapshots(&db, &schema, "production_year", 1);
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].total_rows(), db.total_rows());
    }
}
