//! Synthetic JOB-M database: a 16-table IMDB snowflake schema with multi-key joins.
//!
//! The JOB-M benchmark of the paper stresses two things JOB-light does not: many more
//! tables (16) and tables that join on *multiple different keys* (e.g. `movie_companies`
//! joins `title` on `movie_id`, `company_name` on `company_id` and `company_type` on
//! `company_type_id`).  This generator extends the JOB-light star with link/alias tables
//! and the dimension tables those bridges reference:
//!
//! ```text
//! title ─┬─ cast_info ──┬─ name
//!        │              └─ role_type
//!        ├─ movie_companies ──┬─ company_name
//!        │                    └─ company_type
//!        ├─ movie_info ─── info_type
//!        ├─ movie_keyword ─ keyword
//!        ├─ movie_info_idx
//!        ├─ movie_link
//!        ├─ aka_title
//!        └─ complete_cast ─ comp_cast_type
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nc_schema::{JoinEdge, JoinSchema};
use nc_storage::{Database, Table, TableBuilder, Value};

use crate::config::DataGenConfig;
use crate::distributions::{sample_fanout, Zipf};
use crate::imdb_light::{job_light_database, NUM_ROLES};

/// The sixteen JOB-M table names.
pub const JOB_M_TABLES: [&str; 16] = [
    "title",
    "cast_info",
    "movie_companies",
    "movie_info",
    "movie_keyword",
    "movie_info_idx",
    "movie_link",
    "aka_title",
    "complete_cast",
    "name",
    "role_type",
    "company_name",
    "company_type",
    "keyword",
    "info_type",
    "comp_cast_type",
];

/// Number of complete-cast subject types.
pub const NUM_COMP_CAST_TYPES: usize = 4;
/// Number of link types in `movie_link`.
pub const NUM_LINK_TYPES: usize = 8;

/// The JOB-M join schema (tree rooted at `title`, multi-key bridges).
pub fn job_m_schema() -> JoinSchema {
    let edges = vec![
        JoinEdge::parse("title.id", "cast_info.movie_id"),
        JoinEdge::parse("title.id", "movie_companies.movie_id"),
        JoinEdge::parse("title.id", "movie_info.movie_id"),
        JoinEdge::parse("title.id", "movie_keyword.movie_id"),
        JoinEdge::parse("title.id", "movie_info_idx.movie_id"),
        JoinEdge::parse("title.id", "movie_link.movie_id"),
        JoinEdge::parse("title.id", "aka_title.movie_id"),
        JoinEdge::parse("title.id", "complete_cast.movie_id"),
        JoinEdge::parse("cast_info.person_id", "name.id"),
        JoinEdge::parse("cast_info.role_id", "role_type.id"),
        JoinEdge::parse("movie_companies.company_id", "company_name.id"),
        JoinEdge::parse("movie_companies.company_type_id", "company_type.id"),
        JoinEdge::parse("movie_keyword.keyword_id", "keyword.id"),
        JoinEdge::parse("movie_info.info_type_id", "info_type.id"),
        JoinEdge::parse("complete_cast.subject_id", "comp_cast_type.id"),
    ];
    JoinSchema::new(
        JOB_M_TABLES.iter().map(|s| s.to_string()).collect(),
        edges,
        "title",
    )
    .expect("static schema is valid")
}

/// Content columns usable for filter generation in JOB-M queries (table, column,
/// supports-range).
pub fn job_m_filter_columns() -> Vec<(&'static str, &'static str, bool)> {
    vec![
        ("title", "kind_id", false),
        ("title", "production_year", true),
        ("title", "phonetic_code", true),
        ("cast_info", "nr_order", true),
        ("movie_info", "info_length", true),
        ("movie_info_idx", "rating", true),
        ("movie_link", "link_type_id", false),
        ("aka_title", "title_length", true),
        ("complete_cast", "status_id", false),
        ("name", "gender", false),
        ("name", "name_pcode", true),
        ("company_name", "country_code", false),
        ("company_type", "kind", false),
        ("keyword", "phonetic", true),
        ("info_type", "category", false),
        ("comp_cast_type", "kind", false),
        ("role_type", "role_kind", false),
    ]
}

/// Generates the 16-table JOB-M database.
///
/// The six JOB-light tables are generated first (same distributions), then the additional
/// bridge tables and dimension tables are derived so that every foreign key used by a
/// bridge exists in its dimension (plus a handful of never-referenced dimension rows, so
/// outer-join NULL paths exist on the dimension side too).
pub fn job_m_database(config: &DataGenConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x4A0B_0A0D);
    let mut db = job_light_database(config);
    let n_title = db.expect_table("title").num_rows();

    // --- additional bridge tables -------------------------------------------------------
    db.add_table(build_movie_link(config, &mut rng, n_title));
    db.add_table(build_aka_title(config, &mut rng, n_title));
    db.add_table(build_complete_cast(config, &mut rng, n_title));

    // --- dimension tables ----------------------------------------------------------------
    let max_person = max_int(&db, "cast_info", "person_id");
    let max_company = max_int(&db, "movie_companies", "company_id");
    let max_keyword = max_int(&db, "movie_keyword", "keyword_id");
    let max_info_type = max_int(&db, "movie_info", "info_type_id");

    db.add_table(build_name(&mut rng, max_person + 10));
    db.add_table(build_role_type(NUM_ROLES + 2));
    db.add_table(build_company_name(&mut rng, max_company + 10));
    db.add_table(build_company_type(6));
    db.add_table(build_keyword(&mut rng, max_keyword + 10));
    db.add_table(build_info_type(max_info_type + 3));
    db.add_table(build_comp_cast_type(NUM_COMP_CAST_TYPES));
    db
}

fn max_int(db: &Database, table: &str, column: &str) -> i64 {
    db.expect_table(table)
        .column(column)
        .expect("column exists")
        .min_max()
        .and_then(|(_, max)| max.as_int())
        .unwrap_or(0)
}

fn build_movie_link(config: &DataGenConfig, rng: &mut StdRng, n_title: usize) -> Table {
    let mut b = TableBuilder::new(
        "movie_link",
        &["movie_id", "link_type_id", "linked_movie_id"],
    );
    let link_zipf = Zipf::new(NUM_LINK_TYPES, config.skew);
    for movie in 1..=n_title {
        let fanout = sample_fanout(rng, 0.7, config.skew, 0.6, 6);
        for _ in 0..fanout {
            b.push_row(vec![
                Value::Int(movie as i64),
                Value::Int(link_zipf.sample(rng) as i64 + 1),
                Value::Int(rng.random_range(1..=n_title as i64)),
            ]);
        }
    }
    b.finish()
}

fn build_aka_title(config: &DataGenConfig, rng: &mut StdRng, n_title: usize) -> Table {
    let mut b = TableBuilder::new("aka_title", &["movie_id", "title_length"]);
    for movie in 1..=n_title {
        let fanout = sample_fanout(rng, 0.8, config.skew, 0.5, 5);
        for _ in 0..fanout {
            b.push_row(vec![
                Value::Int(movie as i64),
                Value::Int(rng.random_range(3..=60)),
            ]);
        }
    }
    b.finish()
}

fn build_complete_cast(config: &DataGenConfig, rng: &mut StdRng, n_title: usize) -> Table {
    let mut b = TableBuilder::new("complete_cast", &["movie_id", "subject_id", "status_id"]);
    for movie in 1..=n_title {
        let fanout = sample_fanout(rng, 0.6, config.skew, 0.6, 4);
        for _ in 0..fanout {
            let subject = rng.random_range(1..=NUM_COMP_CAST_TYPES as i64);
            // status correlated with subject.
            let status = if rng.random::<f64>() < config.correlation {
                subject % 3 + 1
            } else {
                rng.random_range(1..=3)
            };
            b.push_row(vec![
                Value::Int(movie as i64),
                Value::Int(subject),
                Value::Int(status),
            ]);
        }
    }
    b.finish()
}

fn build_name(rng: &mut StdRng, n: i64) -> Table {
    let mut b = TableBuilder::new("name", &["id", "gender", "name_pcode"]);
    for id in 1..=n {
        // Gender correlated with id parity plus noise; pcode correlated with id bucket.
        let gender = if (id % 2 == 0) ^ (rng.random::<f64>() < 0.1) {
            "m"
        } else {
            "f"
        };
        let letter = (b'A' + ((id / 37) % 26) as u8) as char;
        b.push_row(vec![
            Value::Int(id),
            Value::from(gender),
            Value::from(format!("{letter}{:02}", id % 100)),
        ]);
    }
    b.finish()
}

fn build_role_type(n: usize) -> Table {
    let kinds = ["actor", "actress", "producer", "writer", "director", "crew"];
    let mut b = TableBuilder::new("role_type", &["id", "role_kind"]);
    for id in 1..=n {
        b.push_row(vec![
            Value::Int(id as i64),
            Value::from(kinds[(id - 1) % kinds.len()]),
        ]);
    }
    b.finish()
}

fn build_company_name(rng: &mut StdRng, n: i64) -> Table {
    let countries = ["[us]", "[gb]", "[de]", "[fr]", "[jp]", "[in]", "[ca]"];
    let mut b = TableBuilder::new("company_name", &["id", "country_code"]);
    let zipf = Zipf::new(countries.len(), 1.3);
    for id in 1..=n {
        b.push_row(vec![
            Value::Int(id),
            Value::from(countries[zipf.sample(rng)]),
        ]);
    }
    b.finish()
}

fn build_company_type(n: usize) -> Table {
    let kinds = [
        "production companies",
        "distributors",
        "special effects companies",
        "miscellaneous companies",
        "vfx",
        "other",
    ];
    let mut b = TableBuilder::new("company_type", &["id", "kind"]);
    for id in 1..=n {
        b.push_row(vec![
            Value::Int(id as i64),
            Value::from(kinds[(id - 1) % kinds.len()]),
        ]);
    }
    b.finish()
}

fn build_keyword(rng: &mut StdRng, n: i64) -> Table {
    let mut b = TableBuilder::new("keyword", &["id", "phonetic"]);
    for id in 1..=n {
        let letter = (b'A' + ((id * 7) % 26) as u8) as char;
        b.push_row(vec![
            Value::Int(id),
            Value::from(format!("{letter}{:03}", rng.random_range(0..1000))),
        ]);
    }
    b.finish()
}

fn build_info_type(n: i64) -> Table {
    let categories = ["technical", "rating", "plot", "business", "misc"];
    let mut b = TableBuilder::new("info_type", &["id", "category"]);
    for id in 1..=n {
        b.push_row(vec![
            Value::Int(id),
            Value::from(categories[(id as usize - 1) % categories.len()]),
        ]);
    }
    b.finish()
}

fn build_comp_cast_type(n: usize) -> Table {
    let kinds = ["cast", "crew", "complete", "complete+verified"];
    let mut b = TableBuilder::new("comp_cast_type", &["id", "kind"]);
    for id in 1..=n {
        b.push_row(vec![
            Value::Int(id as i64),
            Value::from(kinds[(id - 1) % kinds.len()]),
        ]);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_sixteen_tables_and_is_a_tree() {
        let s = job_m_schema();
        assert_eq!(s.num_tables(), 16);
        assert_eq!(s.edges().len(), 15);
        assert_eq!(s.root(), "title");
        assert_eq!(s.children("cast_info"), &["name", "role_type"]);
        assert_eq!(s.parent("company_name"), Some("movie_companies"));
        // Multi-key: movie_companies has three different join key columns.
        assert_eq!(
            s.join_key_columns("movie_companies"),
            vec![
                "company_id".to_string(),
                "company_type_id".to_string(),
                "movie_id".to_string()
            ]
        );
    }

    #[test]
    fn database_contains_all_tables_with_rows() {
        let db = job_m_database(&DataGenConfig::tiny());
        for t in JOB_M_TABLES {
            let table = db.expect_table(t);
            assert!(table.num_rows() > 0, "table {t} is empty");
        }
    }

    #[test]
    fn dimension_ids_cover_bridge_foreign_keys() {
        let db = job_m_database(&DataGenConfig::tiny());
        let checks = [
            ("cast_info", "person_id", "name"),
            ("cast_info", "role_id", "role_type"),
            ("movie_companies", "company_id", "company_name"),
            ("movie_companies", "company_type_id", "company_type"),
            ("movie_keyword", "keyword_id", "keyword"),
            ("movie_info", "info_type_id", "info_type"),
            ("complete_cast", "subject_id", "comp_cast_type"),
        ];
        for (bridge, fk, dim) in checks {
            let max_fk = db
                .expect_table(bridge)
                .column(fk)
                .unwrap()
                .min_max()
                .unwrap()
                .1
                .as_int()
                .unwrap();
            let max_id = db
                .expect_table(dim)
                .column("id")
                .unwrap()
                .min_max()
                .unwrap()
                .1
                .as_int()
                .unwrap();
            assert!(max_id >= max_fk, "{dim}.id must cover {bridge}.{fk}");
        }
    }

    #[test]
    fn filter_columns_exist() {
        let db = job_m_database(&DataGenConfig::tiny());
        for (t, c, _) in job_m_filter_columns() {
            assert!(
                db.expect_table(t).column(c).is_some(),
                "missing filter column {t}.{c}"
            );
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = job_m_database(&DataGenConfig::tiny());
        let b = job_m_database(&DataGenConfig::tiny());
        for t in JOB_M_TABLES {
            assert_eq!(
                a.expect_table(t).num_rows(),
                b.expect_table(t).num_rows(),
                "table {t}"
            );
        }
    }
}
