//! Optimizers: Adam (used by NeuroCard's training loop) and plain SGD (tests/baselines).
//!
//! Both operate on a flat list of mutable [`Param`] references so a model can expose its
//! parameters without the optimizer knowing anything about the architecture.  The optimizer
//! zeroes gradients after applying them.

use crate::layers::Param;

/// Adam hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 2e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

/// The Adam optimizer (Kingma & Ba, 2015) with per-parameter moment buffers.
#[derive(Debug, Clone)]
pub struct Adam {
    config: AdamConfig,
    /// (first moment, second moment) per registered parameter, flattened.
    moments: Vec<(Vec<f32>, Vec<f32>)>,
    step: u64,
}

impl Adam {
    /// Creates an optimizer for a model whose parameters have the given flat sizes.
    pub fn new(config: AdamConfig, param_sizes: &[usize]) -> Self {
        Adam {
            config,
            moments: param_sizes
                .iter()
                .map(|&n| (vec![0.0; n], vec![0.0; n]))
                .collect(),
            step: 0,
        }
    }

    /// Convenience: builds the optimizer directly from the parameter list.
    pub fn for_params(config: AdamConfig, params: &[&Param]) -> Self {
        let sizes: Vec<usize> = params.iter().map(|p| p.num_params()).collect();
        Self::new(config, &sizes)
    }

    /// Number of optimizer steps taken so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.config.lr
    }

    /// Sets the learning rate (used for simple decay schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.config.lr = lr;
    }

    /// Applies one Adam update using the accumulated gradients, then zeroes them.
    ///
    /// The parameter list must always be passed in the same order it was registered with.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        assert_eq!(
            params.len(),
            self.moments.len(),
            "parameter count changed between optimizer steps"
        );
        self.step += 1;
        let t = self.step as f32;
        let c = self.config;
        let bias1 = 1.0 - c.beta1.powf(t);
        let bias2 = 1.0 - c.beta2.powf(t);
        for (param, (m, v)) in params.iter_mut().zip(self.moments.iter_mut()) {
            let grad = param.grad.data();
            assert_eq!(grad.len(), m.len(), "parameter shape changed");
            for i in 0..grad.len() {
                let g = grad[i];
                m[i] = c.beta1 * m[i] + (1.0 - c.beta1) * g;
                v[i] = c.beta2 * v[i] + (1.0 - c.beta2) * g * g;
                let m_hat = m[i] / bias1;
                let v_hat = v[i] / bias2;
                param.value.data_mut()[i] -= c.lr * m_hat / (v_hat.sqrt() + c.eps);
            }
            param.zero_grad();
        }
    }
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// Applies one SGD update and zeroes the gradients.
    pub fn step(&self, params: &mut [&mut Param]) {
        for param in params.iter_mut() {
            let lr = self.lr;
            let grads: Vec<f32> = param.grad.data().to_vec();
            for (v, g) in param.value.data_mut().iter_mut().zip(grads) {
                *v -= lr * g;
            }
            param.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Matrix;

    /// Minimises f(w) = (w - 3)² with both optimizers; both must converge to 3.
    fn quadratic_descent(use_adam: bool) -> f32 {
        let mut p = Param::zeros(1, 1);
        p.value.set(0, 0, -2.0);
        let mut adam = Adam::new(
            AdamConfig {
                lr: 0.1,
                ..Default::default()
            },
            &[1],
        );
        let sgd = Sgd::new(0.1);
        for _ in 0..500 {
            let w = p.value.get(0, 0);
            p.grad = Matrix::from_vec(1, 1, vec![2.0 * (w - 3.0)]);
            if use_adam {
                adam.step(&mut [&mut p]);
            } else {
                sgd.step(&mut [&mut p]);
            }
        }
        p.value.get(0, 0)
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let w = quadratic_descent(true);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = quadratic_descent(false);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn gradients_are_zeroed_after_step() {
        let mut p = Param::zeros(2, 2);
        p.grad.set(1, 1, 4.0);
        let mut adam = Adam::for_params(AdamConfig::default(), &[&p]);
        adam.step(&mut [&mut p]);
        assert_eq!(p.grad.get(1, 1), 0.0);
        assert_eq!(adam.steps(), 1);
        adam.set_learning_rate(1e-4);
        assert!((adam.learning_rate() - 1e-4).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "parameter count changed")]
    fn mismatched_parameter_count_panics() {
        let mut p = Param::zeros(1, 1);
        let mut adam = Adam::new(AdamConfig::default(), &[1, 1]);
        adam.step(&mut [&mut p]);
    }
}
