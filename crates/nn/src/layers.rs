//! Trainable layers: parameters, (masked) linear layers, embeddings, ReLU.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tensor::{
    add_bias, column_sums_accumulate, matmul, matmul_transpose_a_accumulate,
    matmul_transpose_b_blocked, Matrix,
};

/// A trainable parameter tensor: value and accumulated gradient of identical shape.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Matrix,
    /// Accumulated gradient (zeroed by the optimizer after each step).
    pub grad: Matrix,
}

impl Param {
    /// A zero-initialised parameter.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Param {
            value: Matrix::zeros(rows, cols),
            grad: Matrix::zeros(rows, cols),
        }
    }

    /// Uniform "Xavier/Glorot" initialisation in `±sqrt(6/(fan_in+fan_out))`.
    pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Self {
        let limit = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.random_range(-limit..limit))
            .collect();
        Param {
            value: Matrix::from_vec(rows, cols, data),
            grad: Matrix::zeros(rows, cols),
        }
    }

    /// Number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.value.rows() * self.value.cols()
    }

    /// Zeroes the gradient buffer.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }
}

/// A dense layer `y = x·W + b` with `W: in×out`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix (`in_dim × out_dim`).
    pub weight: Param,
    /// Bias vector (`1 × out_dim`).
    pub bias: Param,
}

impl Linear {
    /// Creates a Xavier-initialised layer.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        Linear {
            weight: Param::xavier(in_dim, out_dim, rng),
            bias: Param::zeros(1, out_dim),
        }
    }

    /// Forward pass: `out = x·W + b`.
    pub fn forward(&self, x: &Matrix, out: &mut Matrix) {
        matmul(x, &self.weight.value, out);
        add_bias(out, self.bias.value.row(0));
    }

    /// Backward pass: accumulates `dW += xᵀ·dy`, `db += Σ dy`, and writes `dx = dy·Wᵀ`
    /// (via the blocked kernel, bit-identical to the naive one).
    pub fn backward(&mut self, x: &Matrix, dy: &Matrix, dx: &mut Matrix) {
        matmul_transpose_a_accumulate(x, dy, &mut self.weight.grad);
        column_sums_accumulate(dy, self.bias.grad.row_mut(0));
        matmul_transpose_b_blocked(dy, &self.weight.value, dx);
    }

    /// Total number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.weight.num_params() + self.bias.num_params()
    }
}

/// A masked dense layer: identical to [`Linear`] but with a fixed binary connectivity mask.
///
/// The mask enforces the autoregressive property (MADE): masked weights are initialised to
/// zero and their gradients are zeroed every backward pass, so they remain exactly zero for
/// the lifetime of the model and the forward pass can use a plain GEMM.
#[derive(Debug, Clone)]
pub struct MaskedLinear {
    /// The underlying dense layer.
    pub inner: Linear,
    /// Binary mask (`in_dim × out_dim`); 1 = connection allowed.
    pub mask: Matrix,
}

impl MaskedLinear {
    /// Creates a masked layer.  `mask[i][o] == 0` forbids the connection from input unit
    /// `i` to output unit `o`.
    pub fn new(in_dim: usize, out_dim: usize, mask: Matrix, rng: &mut StdRng) -> Self {
        assert_eq!(mask.rows(), in_dim);
        assert_eq!(mask.cols(), out_dim);
        let mut inner = Linear::new(in_dim, out_dim, rng);
        // Zero out masked weights so the autoregressive property holds from step zero.
        for i in 0..in_dim {
            for o in 0..out_dim {
                if mask.get(i, o) == 0.0 {
                    inner.weight.value.set(i, o, 0.0);
                }
            }
        }
        MaskedLinear { inner, mask }
    }

    /// Forward pass (plain GEMM; masked weights are structurally zero).
    pub fn forward(&self, x: &Matrix, out: &mut Matrix) {
        self.inner.forward(x, out);
    }

    /// Backward pass; gradients of masked weights are forced to zero so the optimizer can
    /// never resurrect a forbidden connection.
    pub fn backward(&mut self, x: &Matrix, dy: &Matrix, dx: &mut Matrix) {
        self.inner.backward(x, dy, dx);
        let grad = self.inner.weight.grad.data_mut();
        for (g, m) in grad.iter_mut().zip(self.mask.data()) {
            *g *= m;
        }
    }

    /// Total number of scalar parameters (counting masked entries, as the dense storage
    /// does; `effective_params` reports only the live ones).
    pub fn num_params(&self) -> usize {
        self.inner.num_params()
    }

    /// Number of unmasked (live) weight parameters plus biases.
    pub fn effective_params(&self) -> usize {
        let live = self.mask.data().iter().filter(|m| **m != 0.0).count();
        live + self.inner.bias.num_params()
    }
}

/// A per-column embedding table with `domain + 1` rows; the extra last row is the MASK
/// token used by wildcard skipping (paper §3.4).
#[derive(Debug, Clone)]
pub struct Embedding {
    /// Embedding matrix (`(domain+1) × dim`).
    pub table: Param,
    domain: usize,
}

impl Embedding {
    /// Creates an embedding for a column with `domain` distinct codes.
    pub fn new(domain: usize, dim: usize, rng: &mut StdRng) -> Self {
        Embedding {
            table: Param::xavier(domain + 1, dim, rng),
            domain,
        }
    }

    /// The column's domain size (excluding the MASK token).
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.table.value.cols()
    }

    /// The token id of the MASK (wildcard) token.
    pub fn mask_token(&self) -> u32 {
        self.domain as u32
    }

    /// Copies the embedding of `token` into `out`.
    pub fn lookup(&self, token: u32, out: &mut [f32]) {
        let token = token as usize;
        assert!(
            token <= self.domain,
            "token {token} outside domain {}",
            self.domain
        );
        out.copy_from_slice(self.table.value.row(token));
    }

    /// Accumulates `grad` into the gradient row of `token`.
    pub fn accumulate_grad(&mut self, token: u32, grad: &[f32]) {
        let token = token as usize;
        let row = self.table.grad.row_mut(token);
        for (g, d) in row.iter_mut().zip(grad) {
            *g += d;
        }
    }

    /// Total number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.table.num_params()
    }
}

/// In-place ReLU; returns nothing, mutates `m`.
pub fn relu(m: &mut Matrix) {
    for v in m.data_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Backward of ReLU: zeroes entries of `dy` where the *activation output* was zero.
pub fn relu_backward(activated: &Matrix, dy: &mut Matrix) {
    assert_eq!(activated.rows(), dy.rows());
    assert_eq!(activated.cols(), dy.cols());
    for (d, a) in dy.data_mut().iter_mut().zip(activated.data()) {
        if *a == 0.0 {
            *d = 0.0;
        }
    }
}

/// Deterministic RNG helper shared by model constructors.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_forward_backward_shapes_and_gradcheck() {
        let mut rng = seeded_rng(1);
        let mut layer = Linear::new(3, 2, &mut rng);
        let x = Matrix::from_vec(2, 3, vec![0.5, -1.0, 2.0, 1.5, 0.0, -0.5]);
        let mut y = Matrix::zeros(2, 2);
        layer.forward(&x, &mut y);

        // Loss = sum(y); dy = ones.
        let dy = Matrix::from_vec(2, 2, vec![1.0; 4]);
        let mut dx = Matrix::zeros(2, 3);
        layer.backward(&x, &dy, &mut dx);

        // Numerical gradient check on one weight.
        let eps = 1e-3;
        let loss = |l: &Linear| {
            let mut out = Matrix::zeros(2, 2);
            l.forward(&x, &mut out);
            out.data().iter().sum::<f32>()
        };
        let base = loss(&layer);
        let mut perturbed = layer.clone();
        let orig = perturbed.weight.value.get(1, 0);
        perturbed.weight.value.set(1, 0, orig + eps);
        let numeric = (loss(&perturbed) - base) / eps;
        let analytic = layer.weight.grad.get(1, 0);
        assert!(
            (numeric - analytic).abs() < 1e-2,
            "numeric {numeric} vs analytic {analytic}"
        );
        assert_eq!(layer.num_params(), 3 * 2 + 2);
    }

    #[test]
    fn masked_linear_keeps_masked_weights_zero() {
        let mut rng = seeded_rng(2);
        // Mask forbids input 0 -> output 1.
        let mask = Matrix::from_vec(2, 2, vec![1.0, 0.0, 1.0, 1.0]);
        let mut layer = MaskedLinear::new(2, 2, mask, &mut rng);
        assert_eq!(layer.inner.weight.value.get(0, 1), 0.0);
        assert_eq!(layer.effective_params(), 3 + 2);
        assert_eq!(layer.num_params(), 4 + 2);

        let x = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let mut y = Matrix::zeros(1, 2);
        layer.forward(&x, &mut y);
        let dy = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let mut dx = Matrix::zeros(1, 2);
        layer.backward(&x, &dy, &mut dx);
        // Gradient of the masked weight is forced to zero.
        assert_eq!(layer.inner.weight.grad.get(0, 1), 0.0);
        assert_ne!(layer.inner.weight.grad.get(0, 0), 0.0);
    }

    #[test]
    fn masked_output_ignores_masked_input() {
        let mut rng = seeded_rng(3);
        // Output 0 may only see input 1.
        let mask = Matrix::from_vec(2, 1, vec![0.0, 1.0]);
        let layer = MaskedLinear::new(2, 1, mask, &mut rng);
        let x1 = Matrix::from_vec(1, 2, vec![0.0, 3.0]);
        let x2 = Matrix::from_vec(1, 2, vec![99.0, 3.0]);
        let mut y1 = Matrix::zeros(1, 1);
        let mut y2 = Matrix::zeros(1, 1);
        layer.forward(&x1, &mut y1);
        layer.forward(&x2, &mut y2);
        assert!((y1.get(0, 0) - y2.get(0, 0)).abs() < 1e-6);
    }

    #[test]
    fn embedding_lookup_and_grad() {
        let mut rng = seeded_rng(4);
        let mut emb = Embedding::new(5, 3, &mut rng);
        assert_eq!(emb.domain(), 5);
        assert_eq!(emb.dim(), 3);
        assert_eq!(emb.mask_token(), 5);
        assert_eq!(emb.num_params(), 6 * 3);
        let mut out = vec![0.0; 3];
        emb.lookup(2, &mut out);
        assert_eq!(out, emb.table.value.row(2));
        emb.lookup(emb.mask_token(), &mut out);
        emb.accumulate_grad(2, &[1.0, 2.0, 3.0]);
        emb.accumulate_grad(2, &[1.0, 1.0, 1.0]);
        assert_eq!(emb.table.grad.row(2), &[2.0, 3.0, 4.0]);
        assert_eq!(emb.table.grad.row(3), &[0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn embedding_out_of_domain_panics() {
        let mut rng = seeded_rng(5);
        let emb = Embedding::new(3, 2, &mut rng);
        let mut out = vec![0.0; 2];
        emb.lookup(9, &mut out);
    }

    #[test]
    fn relu_and_its_backward() {
        let mut m = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -3.0]);
        relu(&mut m);
        assert_eq!(m.data(), &[0.0, 0.0, 2.0, 0.0]);
        let mut dy = Matrix::from_vec(1, 4, vec![1.0, 1.0, 1.0, 1.0]);
        relu_backward(&m, &mut dy);
        assert_eq!(dy.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn param_zero_grad() {
        let mut p = Param::zeros(2, 2);
        p.grad.set(0, 0, 5.0);
        p.zero_grad();
        assert_eq!(p.grad.get(0, 0), 0.0);
        assert_eq!(p.num_params(), 4);
    }
}
