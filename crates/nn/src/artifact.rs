//! Versioned, checksummed multi-section binary container for model artifacts.
//!
//! The flat weight format of [`crate::serialize`] only persists parameter tensors; a
//! deployable model additionally needs its configuration, schema metadata, dictionaries
//! and factorization layout.  This module supplies the generic *container* those pieces
//! travel in — named binary sections behind a validated header — while the section
//! payloads themselves are encoded by the crate that owns each piece (the estimator crate
//! assembles the full NeuroCard artifact on top of this).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic      u32   "NCAR" (0x4E43_4152)
//! version    u32   container format version (currently 1)
//! sections   u32   number of sections
//! checksum   u64   FNV-1a 64 over everything after this field
//! per section:
//!   name_len u32, name bytes (UTF-8), payload_len u64, payload bytes
//! ```
//!
//! The checksum guards against torn writes and bit rot; version and section presence are
//! validated on load and reported through [`ArtifactError`] instead of panicking.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// `"NCAR"` — NeuroCard ARtifact.
pub const ARTIFACT_MAGIC: u32 = 0x4E43_4152;

/// Container format version written by [`ArtifactWriter`] and accepted by
/// [`ArtifactReader`].
pub const ARTIFACT_VERSION: u32 = 1;

/// Why an artifact container failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// The byte stream does not start with the artifact magic number.
    BadMagic,
    /// The container was written by an unsupported format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// The stored checksum does not match the payload (torn write / corruption).
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum recomputed over the loaded bytes.
        computed: u64,
    },
    /// The byte stream ended before the declared sections were read.
    Truncated,
    /// A section name is not valid UTF-8 or a length field is implausible.
    Malformed(String),
    /// The same section name appears twice.
    DuplicateSection(String),
    /// A required section is absent.
    MissingSection(String),
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::BadMagic => write!(f, "not a model artifact (bad magic number)"),
            ArtifactError::UnsupportedVersion { found, supported } => write!(
                f,
                "artifact format version {found} is not supported (this build reads {supported})"
            ),
            ArtifactError::ChecksumMismatch { stored, computed } => write!(
                f,
                "artifact checksum mismatch: header says {stored:#018x}, payload hashes to \
                 {computed:#018x}"
            ),
            ArtifactError::Truncated => write!(f, "artifact byte stream ended early"),
            ArtifactError::Malformed(msg) => write!(f, "malformed artifact: {msg}"),
            ArtifactError::DuplicateSection(name) => {
                write!(f, "artifact contains section {name:?} twice")
            }
            ArtifactError::MissingSection(name) => {
                write!(f, "artifact is missing required section {name:?}")
            }
        }
    }
}

impl std::error::Error for ArtifactError {}

/// FNV-1a 64-bit hash (deterministic, dependency-free; this is an integrity check
/// against accidental corruption, not a cryptographic signature).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Accumulates named sections and renders the framed, checksummed container.
#[derive(Debug, Default)]
pub struct ArtifactWriter {
    sections: Vec<(String, Bytes)>,
}

impl ArtifactWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ArtifactWriter::default()
    }

    /// Appends a section.  Names must be unique; order is preserved.
    pub fn section(&mut self, name: &str, payload: impl Into<Bytes>) -> &mut Self {
        assert!(
            self.sections.iter().all(|(n, _)| n != name),
            "section {name:?} already written"
        );
        self.sections.push((name.to_string(), payload.into()));
        self
    }

    /// Renders the container bytes (header + checksum + section table).
    pub fn finish(&self) -> Bytes {
        let mut body = BytesMut::new();
        for (name, payload) in &self.sections {
            body.put_u32_le(name.len() as u32);
            body.put_slice(name.as_bytes());
            body.put_u64_le(payload.len() as u64);
            body.put_slice(payload);
        }
        let mut out = BytesMut::with_capacity(20 + body.len());
        out.put_u32_le(ARTIFACT_MAGIC);
        out.put_u32_le(ARTIFACT_VERSION);
        out.put_u32_le(self.sections.len() as u32);
        out.put_u64_le(fnv1a64(&body));
        out.put_slice(&body);
        out.freeze()
    }
}

/// Parsed view of a container: validated header plus the named section payloads.
#[derive(Debug)]
pub struct ArtifactReader {
    version: u32,
    sections: Vec<(String, Vec<u8>)>,
}

impl ArtifactReader {
    /// Parses and validates a container produced by [`ArtifactWriter::finish`].
    pub fn parse(bytes: &[u8]) -> Result<Self, ArtifactError> {
        let mut buf = bytes;
        if buf.remaining() < 20 {
            return Err(
                if buf.remaining() >= 4 && (&bytes[0..4]) != ARTIFACT_MAGIC.to_le_bytes() {
                    ArtifactError::BadMagic
                } else {
                    ArtifactError::Truncated
                },
            );
        }
        if buf.get_u32_le() != ARTIFACT_MAGIC {
            return Err(ArtifactError::BadMagic);
        }
        let version = buf.get_u32_le();
        if version != ARTIFACT_VERSION {
            return Err(ArtifactError::UnsupportedVersion {
                found: version,
                supported: ARTIFACT_VERSION,
            });
        }
        let count = buf.get_u32_le() as usize;
        let stored = buf.get_u64_le();
        let computed = fnv1a64(buf);
        if stored != computed {
            return Err(ArtifactError::ChecksumMismatch { stored, computed });
        }
        // The count is untrusted input (the checksum only guards against *accidental*
        // damage): cap the pre-allocation like the other binary readers do.
        let mut sections = Vec::with_capacity(count.min(1 << 10));
        for _ in 0..count {
            if buf.remaining() < 4 {
                return Err(ArtifactError::Truncated);
            }
            let name_len = buf.get_u32_le() as usize;
            if buf.remaining() < name_len {
                return Err(ArtifactError::Truncated);
            }
            let mut name_bytes = vec![0u8; name_len];
            buf.copy_to_slice(&mut name_bytes);
            let name = String::from_utf8(name_bytes)
                .map_err(|_| ArtifactError::Malformed("section name is not UTF-8".into()))?;
            if buf.remaining() < 8 {
                return Err(ArtifactError::Truncated);
            }
            let payload_len = buf.get_u64_le() as usize;
            if buf.remaining() < payload_len {
                return Err(ArtifactError::Truncated);
            }
            let mut payload = vec![0u8; payload_len];
            buf.copy_to_slice(&mut payload);
            if sections.iter().any(|(n, _)| *n == name) {
                return Err(ArtifactError::DuplicateSection(name));
            }
            sections.push((name, payload));
        }
        if buf.remaining() != 0 {
            return Err(ArtifactError::Malformed(format!(
                "{} unread bytes after the last section",
                buf.remaining()
            )));
        }
        Ok(ArtifactReader { version, sections })
    }

    /// Container format version (always [`ARTIFACT_VERSION`] after a successful parse).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Section names in file order.
    pub fn names(&self) -> Vec<&str> {
        self.sections.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Payload of section `name`, or `None` if absent.
    pub fn get(&self, name: &str) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p.as_slice())
    }

    /// Payload of a required section.
    pub fn require(&self, name: &str) -> Result<&[u8], ArtifactError> {
        self.get(name)
            .ok_or_else(|| ArtifactError::MissingSection(name.to_string()))
    }

    /// Moves a required section's payload out of the reader (no copy) — for large
    /// sections like model weights, where cloning would double transient memory.
    pub fn take(&mut self, name: &str) -> Result<Vec<u8>, ArtifactError> {
        match self.sections.iter().position(|(n, _)| n == name) {
            Some(i) => Ok(self.sections.remove(i).1),
            None => Err(ArtifactError::MissingSection(name.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Bytes {
        let mut w = ArtifactWriter::new();
        w.section("manifest", b"{\"v\":1}".to_vec());
        w.section("weights", vec![1u8, 2, 3, 4, 5]);
        w.section("empty", Vec::new());
        w.finish()
    }

    #[test]
    fn round_trip_preserves_sections_and_order() {
        let bytes = sample();
        let r = ArtifactReader::parse(&bytes).unwrap();
        assert_eq!(r.version(), ARTIFACT_VERSION);
        assert_eq!(r.names(), vec!["manifest", "weights", "empty"]);
        assert_eq!(r.get("weights"), Some(&[1u8, 2, 3, 4, 5][..]));
        assert_eq!(r.require("manifest").unwrap(), b"{\"v\":1}");
        assert_eq!(r.get("empty"), Some(&[][..]));
        assert_eq!(r.get("nope"), None);
        assert_eq!(
            r.require("nope"),
            Err(ArtifactError::MissingSection("nope".into()))
        );
    }

    #[test]
    fn header_validation() {
        let bytes = sample();
        // Bad magic.
        let mut bad = bytes.to_vec();
        bad[0] ^= 0xFF;
        assert_eq!(
            ArtifactReader::parse(&bad).unwrap_err(),
            ArtifactError::BadMagic
        );
        // Unsupported version.
        let mut bad = bytes.to_vec();
        bad[4] = 99;
        assert!(matches!(
            ArtifactReader::parse(&bad).unwrap_err(),
            ArtifactError::UnsupportedVersion { found: 99, .. }
        ));
        // Flipping any payload bit trips the checksum.
        let mut bad = bytes.to_vec();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(matches!(
            ArtifactReader::parse(&bad).unwrap_err(),
            ArtifactError::ChecksumMismatch { .. }
        ));
        // Truncation anywhere fails cleanly (checksum covers the body, so most cuts trip
        // it; header cuts report Truncated).
        for cut in [0, 3, 10, bytes.len() - 1] {
            assert!(ArtifactReader::parse(&bytes[..cut]).is_err());
        }
        assert!(ArtifactReader::parse(&[]).is_err());
    }

    #[test]
    fn duplicate_sections_rejected_at_write_and_read() {
        // The writer asserts on duplicates...
        let result = std::panic::catch_unwind(|| {
            let mut w = ArtifactWriter::new();
            w.section("a", vec![1]);
            w.section("a", vec![2]);
        });
        assert!(result.is_err());
        // ...and the reader reports them (hand-crafted duplicate body).
        let mut body = BytesMut::new();
        for _ in 0..2 {
            body.put_u32_le(1);
            body.put_slice(b"a");
            body.put_u64_le(0);
        }
        let mut out = BytesMut::new();
        out.put_u32_le(ARTIFACT_MAGIC);
        out.put_u32_le(ARTIFACT_VERSION);
        out.put_u32_le(2);
        out.put_u64_le(fnv1a64(&body));
        out.put_slice(&body);
        assert_eq!(
            ArtifactReader::parse(&out.freeze()).unwrap_err(),
            ArtifactError::DuplicateSection("a".into())
        );
    }

    #[test]
    fn errors_render_messages() {
        for e in [
            ArtifactError::BadMagic,
            ArtifactError::UnsupportedVersion {
                found: 2,
                supported: 1,
            },
            ArtifactError::ChecksumMismatch {
                stored: 1,
                computed: 2,
            },
            ArtifactError::Truncated,
            ArtifactError::Malformed("x".into()),
            ArtifactError::DuplicateSection("s".into()),
            ArtifactError::MissingSection("s".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned test vectors (FNV-1a 64 reference values).
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
    }
}
