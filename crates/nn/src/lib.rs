//! # nc-nn
//!
//! A small, from-scratch neural-network substrate sufficient to implement the deep
//! autoregressive density model NeuroCard relies on (paper §3.2, §3.4).
//!
//! The original system uses PyTorch on a GPU; neither is available in this reproduction, so
//! this crate provides the pieces the estimator actually needs, in pure safe Rust:
//!
//! * [`tensor`] — dense `f32` matrices and the handful of BLAS-like kernels used by the
//!   model (GEMM with accumulate/transpose variants, row-wise ops),
//! * [`layers`] — trainable parameters, plain and **masked** linear layers (the masks are
//!   what enforce the autoregressive property), per-column embeddings with a dedicated
//!   MASK token for wildcard skipping, ReLU,
//! * [`loss`] — per-column softmax cross-entropy,
//! * [`optim`] — Adam and SGD,
//! * [`made`] — the ResMADE architecture: per-column embeddings → masked input layer →
//!   masked residual blocks → per-column output heads tied to the embedding matrices,
//!   exposing exactly the two operations NeuroCard needs: `train_batch` (maximum
//!   likelihood) and `conditional_logits` (read `p(xᵢ | x₍<ᵢ₎)` for progressive sampling),
//! * [`serialize`] — flat binary save/load of model parameters.
//!
//! Everything is deterministic given a seed and runs on a single CPU core.

pub mod artifact;
pub mod kernel;
pub mod layers;
pub mod loss;
pub mod made;
pub mod optim;
pub mod serialize;
pub mod tensor;

pub use artifact::{ArtifactError, ArtifactReader, ArtifactWriter};
pub use layers::{relu, relu_backward, Embedding, Linear, MaskedLinear, Param};
pub use loss::softmax_cross_entropy;
pub use made::{InferenceScratch, MadeConfig, ResMade};
pub use optim::{Adam, AdamConfig, Sgd};
pub use tensor::Matrix;
