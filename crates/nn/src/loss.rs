//! Softmax cross-entropy, the maximum-likelihood training objective (paper §3.2).

use crate::tensor::Matrix;

/// Computes the mean softmax cross-entropy loss of a batch of logits against integer
/// targets, and writes the gradient with respect to the logits into `dlogits`.
///
/// * `logits`: `batch × domain`
/// * `targets[b]`: the true class of row `b`
/// * `dlogits`: same shape as `logits`; overwritten with `∂loss/∂logits` (already divided by
///   the batch size, so it can be fed straight into the backward pass).
///
/// Returns the mean negative log-likelihood in nats.
pub fn softmax_cross_entropy(logits: &Matrix, targets: &[u32], dlogits: &mut Matrix) -> f32 {
    assert_eq!(logits.rows(), targets.len());
    assert_eq!(logits.rows(), dlogits.rows());
    assert_eq!(logits.cols(), dlogits.cols());
    let batch = logits.rows();
    let domain = logits.cols();
    let scale = 1.0 / batch.max(1) as f32;
    let mut total_loss = 0.0f64;
    for b in 0..batch {
        let row = logits.row(b);
        let target = targets[b] as usize;
        assert!(target < domain, "target {target} outside domain {domain}");
        // Numerically stable log-softmax.
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum_exp = 0.0f32;
        for &v in row {
            sum_exp += (v - max).exp();
        }
        let log_z = max + sum_exp.ln();
        total_loss += f64::from(log_z - row[target]);
        let drow = dlogits.row_mut(b);
        for (j, d) in drow.iter_mut().enumerate() {
            let p = (row[j] - log_z).exp();
            *d = scale * (p - if j == target { 1.0 } else { 0.0 });
        }
    }
    (total_loss * f64::from(scale)) as f32
}

/// Row-wise softmax probabilities (used at inference time by progressive sampling).
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(logits.rows(), logits.cols());
    softmax_rows_into(logits, &mut out);
    out
}

/// [`softmax_rows`] into a caller-owned buffer (resized to match), so the inference hot
/// path can reuse one probability matrix across forward passes.
pub fn softmax_rows_into(logits: &Matrix, out: &mut Matrix) {
    out.resize(logits.rows(), logits.cols());
    for b in 0..logits.rows() {
        let row = logits.row(b);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        let out_row = out.row_mut(b);
        for (o, &v) in out_row.iter_mut().zip(row) {
            *o = (v - max).exp();
            sum += *o;
        }
        if sum > 0.0 {
            for o in out_row.iter_mut() {
                *o /= sum;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_domain_loss() {
        let logits = Matrix::zeros(4, 8);
        let targets = vec![0u32, 3, 5, 7];
        let mut d = Matrix::zeros(4, 8);
        let loss = softmax_cross_entropy(&logits, &targets, &mut d);
        assert!((loss - (8.0f32).ln()).abs() < 1e-5);
        // Gradient rows sum to zero and the target entry is negative.
        for b in 0..4 {
            let s: f32 = d.row(b).iter().sum();
            assert!(s.abs() < 1e-5);
            assert!(d.get(b, targets[b] as usize) < 0.0);
        }
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let mut logits = Matrix::zeros(1, 3);
        logits.set(0, 1, 10.0);
        let mut d = Matrix::zeros(1, 3);
        let loss = softmax_cross_entropy(&logits, &[1], &mut d);
        assert!(loss < 1e-3);
        let wrong = softmax_cross_entropy(&logits, &[0], &mut d);
        assert!(wrong > 5.0);
    }

    #[test]
    fn gradient_matches_numerical_estimate() {
        let logits = Matrix::from_vec(1, 3, vec![0.2, -0.4, 1.0]);
        let targets = [2u32];
        let mut d = Matrix::zeros(1, 3);
        let base = softmax_cross_entropy(&logits, &targets, &mut d);
        let eps = 1e-3;
        for j in 0..3 {
            let mut perturbed = logits.clone();
            perturbed.set(0, j, perturbed.get(0, j) + eps);
            let mut scratch = Matrix::zeros(1, 3);
            let l2 = softmax_cross_entropy(&perturbed, &targets, &mut scratch);
            let numeric = (l2 - base) / eps;
            assert!(
                (numeric - d.get(0, j)).abs() < 1e-2,
                "j={j}: numeric {numeric} vs analytic {}",
                d.get(0, j)
            );
        }
    }

    #[test]
    fn softmax_rows_normalises() {
        let logits = Matrix::from_vec(2, 3, vec![0.0, 1.0, 2.0, -1.0, -1.0, -1.0]);
        let p = softmax_rows(&logits);
        for b in 0..2 {
            let s: f32 = p.row(b).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        assert!(p.get(0, 2) > p.get(0, 0));
        assert!((p.get(1, 0) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn softmax_rows_into_matches_and_reuses_buffer() {
        let logits = Matrix::from_vec(2, 3, vec![0.0, 1.0, 2.0, -1.0, 0.5, -1.0]);
        let fresh = softmax_rows(&logits);
        // A stale, wrongly-shaped buffer must be resized and fully overwritten.
        let mut reused = Matrix::from_vec(1, 5, vec![9.0; 5]);
        softmax_rows_into(&logits, &mut reused);
        assert_eq!(fresh, reused);
        // And bit-identical on a second reuse.
        softmax_rows_into(&logits, &mut reused);
        for (a, b) in fresh.data().iter().zip(reused.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn bad_target_panics() {
        let logits = Matrix::zeros(1, 2);
        let mut d = Matrix::zeros(1, 2);
        softmax_cross_entropy(&logits, &[5], &mut d);
    }
}
