//! ResMADE: the masked autoregressive density model (paper §3.4, Figure 3).
//!
//! The model factorises the joint distribution of an `n`-column tuple autoregressively,
//! `p(x) = Π p(xᵢ | x₍<ᵢ₎)`, and evaluates **all** `n` conditionals in a single forward
//! pass thanks to MADE-style connectivity masks:
//!
//! * every input/hidden/output unit carries a *degree* identifying the column (or column
//!   prefix) it is allowed to depend on,
//! * masked linear layers only connect units whose degrees respect the autoregressive
//!   order, so the logits for column `i` are a function of columns `< i` only.
//!
//! Architecture: per-column embeddings → masked input layer → ReLU → `k` masked residual
//! blocks → masked output layer producing one `d_emb`-dimensional *context vector* per
//! column → per-column logits obtained by dotting the context with the (weight-tied)
//! embedding table plus a bias.  Wildcard skipping (§3.4) is supported by reserving one
//! extra MASK token per column: during training inputs are randomly replaced by MASK, and
//! at inference MASK is fed for every unconstrained column.

use rand::rngs::StdRng;
use rand::Rng;

use crate::kernel;
use crate::layers::{relu, relu_backward, seeded_rng, Embedding, MaskedLinear, Param};
use crate::loss::{softmax_cross_entropy, softmax_rows, softmax_rows_into};
use crate::tensor::{
    add_bias, column_sums_accumulate, gemm_nt, matmul_blocked, matmul_col_range, Matrix,
};

/// Hyper-parameters of a [`ResMade`] model.
#[derive(Debug, Clone)]
pub struct MadeConfig {
    /// Domain size (number of distinct codes) of each column, in autoregressive order.
    pub domains: Vec<usize>,
    /// Per-column embedding dimension (`d_emb` in the paper's ablation, Table 5 group C).
    pub d_emb: usize,
    /// Hidden width of the masked feed-forward layers (`d_ff`).
    pub d_hidden: usize,
    /// Number of residual blocks (each = two masked linear layers).
    pub num_blocks: usize,
    /// Seed for parameter initialisation.
    pub seed: u64,
}

impl MadeConfig {
    /// A small default configuration suitable for tests.
    pub fn small(domains: Vec<usize>) -> Self {
        MadeConfig {
            domains,
            d_emb: 8,
            d_hidden: 32,
            num_blocks: 1,
            seed: 0,
        }
    }
}

/// The ResMADE autoregressive model.
#[derive(Debug, Clone)]
pub struct ResMade {
    config: MadeConfig,
    embeddings: Vec<Embedding>,
    input_layer: MaskedLinear,
    blocks: Vec<(MaskedLinear, MaskedLinear)>,
    output_layer: MaskedLinear,
    /// Per-column logit biases (`1 × domainᵢ`).
    output_bias: Vec<Param>,
}

impl ResMade {
    /// Builds a model with MADE connectivity for the given configuration.
    pub fn new(config: MadeConfig) -> Self {
        assert!(
            !config.domains.is_empty(),
            "model needs at least one column"
        );
        assert!(config.d_emb > 0 && config.d_hidden > 0);
        let n = config.domains.len();
        let mut rng = seeded_rng(config.seed);

        let embeddings: Vec<Embedding> = config
            .domains
            .iter()
            .map(|&d| Embedding::new(d, config.d_emb, &mut rng))
            .collect();

        // Hidden-unit degrees: round-robin over {0, .., n-2} (a unit of degree g may depend
        // on columns ≤ g and feed columns > g).  With a single column there is nothing to
        // condition on; degree 0 units then feed nothing, which is fine.
        let max_degree = n.saturating_sub(2);
        let hidden_degrees: Vec<usize> =
            (0..config.d_hidden).map(|h| h % (max_degree + 1)).collect();

        // Input mask: input unit u (column c = u / d_emb) connects to hidden h iff
        // degree(h) >= c.
        let in_dim = n * config.d_emb;
        let mut input_mask = Matrix::zeros(in_dim, config.d_hidden);
        for u in 0..in_dim {
            let c = u / config.d_emb;
            for (h, &deg) in hidden_degrees.iter().enumerate() {
                if deg >= c {
                    input_mask.set(u, h, 1.0);
                }
            }
        }
        let input_layer = MaskedLinear::new(in_dim, config.d_hidden, input_mask, &mut rng);

        // Hidden-to-hidden mask: h1 -> h2 allowed iff degree(h2) >= degree(h1).
        let mut hidden_mask = Matrix::zeros(config.d_hidden, config.d_hidden);
        for (h1, &d1) in hidden_degrees.iter().enumerate() {
            for (h2, &d2) in hidden_degrees.iter().enumerate() {
                if d2 >= d1 {
                    hidden_mask.set(h1, h2, 1.0);
                }
            }
        }
        let blocks: Vec<(MaskedLinear, MaskedLinear)> = (0..config.num_blocks)
            .map(|_| {
                (
                    MaskedLinear::new(
                        config.d_hidden,
                        config.d_hidden,
                        hidden_mask.clone(),
                        &mut rng,
                    ),
                    MaskedLinear::new(
                        config.d_hidden,
                        config.d_hidden,
                        hidden_mask.clone(),
                        &mut rng,
                    ),
                )
            })
            .collect();

        // Output mask: the context vector of column c may depend on hidden h iff
        // degree(h) < c (strict), so column 0 sees nothing but its bias.
        let out_dim = n * config.d_emb;
        let mut output_mask = Matrix::zeros(config.d_hidden, out_dim);
        for (h, &deg) in hidden_degrees.iter().enumerate() {
            for o in 0..out_dim {
                let c = o / config.d_emb;
                if deg < c {
                    output_mask.set(h, o, 1.0);
                }
            }
        }
        let output_layer = MaskedLinear::new(config.d_hidden, out_dim, output_mask, &mut rng);

        let output_bias = config.domains.iter().map(|&d| Param::zeros(1, d)).collect();

        ResMade {
            config,
            embeddings,
            input_layer,
            blocks,
            output_layer,
            output_bias,
        }
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.config.domains.len()
    }

    /// Domain size of column `i`.
    pub fn domain(&self, i: usize) -> usize {
        self.config.domains[i]
    }

    /// The MASK (wildcard) token of column `i`.
    pub fn mask_token(&self, i: usize) -> u32 {
        self.embeddings[i].mask_token()
    }

    /// The model configuration.
    pub fn config(&self) -> &MadeConfig {
        &self.config
    }

    /// Total number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.embeddings
            .iter()
            .map(|e| e.num_params())
            .sum::<usize>()
            + self.input_layer.num_params()
            + self
                .blocks
                .iter()
                .map(|(a, b)| a.num_params() + b.num_params())
                .sum::<usize>()
            + self.output_layer.num_params()
            + self
                .output_bias
                .iter()
                .map(|b| b.num_params())
                .sum::<usize>()
    }

    /// Approximate model size in bytes (4 bytes per f32 parameter) — the "Size" column of
    /// the paper's result tables.
    pub fn size_bytes(&self) -> usize {
        self.num_params() * 4
    }

    /// All trainable parameters, in a stable order (for the optimizer and serialization).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out: Vec<&mut Param> = Vec::new();
        for e in &mut self.embeddings {
            out.push(&mut e.table);
        }
        out.push(&mut self.input_layer.inner.weight);
        out.push(&mut self.input_layer.inner.bias);
        for (a, b) in &mut self.blocks {
            out.push(&mut a.inner.weight);
            out.push(&mut a.inner.bias);
            out.push(&mut b.inner.weight);
            out.push(&mut b.inner.bias);
        }
        out.push(&mut self.output_layer.inner.weight);
        out.push(&mut self.output_layer.inner.bias);
        for b in &mut self.output_bias {
            out.push(b);
        }
        out
    }

    /// Read-only view of the parameters, in the same order as [`ResMade::params_mut`].
    pub fn params(&self) -> Vec<&Param> {
        let mut out: Vec<&Param> = Vec::new();
        for e in &self.embeddings {
            out.push(&e.table);
        }
        out.push(&self.input_layer.inner.weight);
        out.push(&self.input_layer.inner.bias);
        for (a, b) in &self.blocks {
            out.push(&a.inner.weight);
            out.push(&a.inner.bias);
            out.push(&b.inner.weight);
            out.push(&b.inner.bias);
        }
        out.push(&self.output_layer.inner.weight);
        out.push(&self.output_layer.inner.bias);
        for b in &self.output_bias {
            out.push(b);
        }
        out
    }

    /// Embeds a batch of token rows into the flat input matrix.
    fn embed(&self, rows: &[Vec<u32>]) -> Matrix {
        let n = self.num_columns();
        let d = self.config.d_emb;
        let mut x = Matrix::zeros(rows.len(), n * d);
        for (b, row) in rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                n,
                "input row arity must equal the number of columns"
            );
            let out_row = x.row_mut(b);
            for (c, &token) in row.iter().enumerate() {
                self.embeddings[c].lookup(token, &mut out_row[c * d..(c + 1) * d]);
            }
        }
        x
    }

    /// Runs the trunk (embeddings → hidden stack → per-column context vectors).
    ///
    /// Returns the intermediate activations needed for the backward pass.
    fn forward_trunk(&self, x: &Matrix) -> TrunkActivations {
        let batch = x.rows();
        let h_dim = self.config.d_hidden;
        let mut h = Matrix::zeros(batch, h_dim);
        self.input_layer.forward(x, &mut h);
        relu(&mut h);
        let mut hiddens = vec![h];
        let mut block_acts = Vec::with_capacity(self.blocks.len());
        for (w1, w2) in &self.blocks {
            let h_prev = hiddens.last().expect("at least the input activation");
            let mut a = Matrix::zeros(batch, h_dim);
            w1.forward(h_prev, &mut a);
            relu(&mut a);
            let mut b = Matrix::zeros(batch, h_dim);
            w2.forward(&a, &mut b);
            relu(&mut b);
            let mut h_next = h_prev.clone();
            for (o, v) in h_next.data_mut().iter_mut().zip(b.data()) {
                *o += v;
            }
            block_acts.push((a, b));
            hiddens.push(h_next);
        }
        let mut ctx = Matrix::zeros(batch, self.num_columns() * self.config.d_emb);
        self.output_layer
            .forward(hiddens.last().expect("non-empty"), &mut ctx);
        TrunkActivations {
            hiddens,
            block_acts,
            ctx,
        }
    }

    /// Logits of column `col` given per-row context vectors (weight-tied to the embedding).
    ///
    /// The head is one GEMM against the first `domain` rows of the embedding table (the
    /// `domain + 1`-th row is the MASK token, which is never a prediction target) plus the
    /// per-column bias.
    fn logits_for(&self, ctx: &Matrix, col: usize) -> Matrix {
        let d = self.config.d_emb;
        let domain = self.config.domains[col];
        let batch = ctx.rows();
        // Gather the column's context slice into a compact batch × d matrix for the GEMM.
        let mut head_ctx = Matrix::zeros(batch, d);
        for b in 0..batch {
            head_ctx
                .row_mut(b)
                .copy_from_slice(&ctx.row(b)[col * d..(col + 1) * d]);
        }
        let mut logits = Matrix::zeros(batch, domain);
        let emb = &self.embeddings[col].table.value;
        gemm_nt(
            batch,
            domain,
            d,
            head_ctx.data(),
            &emb.data()[..domain * d],
            logits.data_mut(),
        );
        add_bias(&mut logits, self.output_bias[col].value.row(0));
        logits
    }

    /// One maximum-likelihood training step on a batch.
    ///
    /// * `inputs` — token rows as fed to the network (may contain MASK tokens from wildcard
    ///   skipping),
    /// * `targets` — the true token of every column (never MASK).
    ///
    /// Gradients are *accumulated* into the parameters; the caller applies an optimizer
    /// step afterwards.  Returns the mean negative log-likelihood (nats per tuple).
    pub fn forward_backward(&mut self, inputs: &[Vec<u32>], targets: &[Vec<u32>]) -> f32 {
        assert_eq!(inputs.len(), targets.len());
        assert!(!inputs.is_empty(), "cannot train on an empty batch");
        let batch = inputs.len();
        let n = self.num_columns();
        let d = self.config.d_emb;
        let h_dim = self.config.d_hidden;

        let x = self.embed(inputs);
        let acts = self.forward_trunk(&x);

        // Per-column heads: loss, dlogits, then gradients into embeddings/biases/ctx.
        let mut total_loss = 0.0f32;
        let mut dctx = Matrix::zeros(batch, n * d);
        for col in 0..n {
            let domain = self.config.domains[col];
            let logits = self.logits_for(&acts.ctx, col);
            let target_col: Vec<u32> = targets.iter().map(|r| r[col]).collect();
            let mut dlogits = Matrix::zeros(batch, domain);
            total_loss += softmax_cross_entropy(&logits, &target_col, &mut dlogits);

            // Backprop through the tied head:
            //   logits[b][v] = ctx_col[b] · E[v] + bias[v]
            //   dctx_col[b]  = Σ_v dlogits[b][v] · E[v]
            //   dE[v]       += Σ_b dlogits[b][v] · ctx_col[b]
            //   dbias[v]    += Σ_b dlogits[b][v]
            column_sums_accumulate(&dlogits, self.output_bias[col].grad.row_mut(0));
            for b in 0..batch {
                let ctx_slice = &acts.ctx.row(b)[col * d..(col + 1) * d];
                let dl_row = dlogits.row(b);
                let dctx_slice = &mut dctx.row_mut(b)[col * d..(col + 1) * d];
                for (v, &dl) in dl_row.iter().enumerate() {
                    if dl == 0.0 {
                        continue;
                    }
                    let e_row = self.embeddings[col].table.value.row(v).to_vec();
                    for (dc, e) in dctx_slice.iter_mut().zip(&e_row) {
                        *dc += dl * e;
                    }
                    let g_row = self.embeddings[col].table.grad.row_mut(v);
                    for (g, c) in g_row.iter_mut().zip(ctx_slice) {
                        *g += dl * c;
                    }
                }
            }
        }

        // Output layer backward.
        let mut dh = Matrix::zeros(batch, h_dim);
        self.output_layer
            .backward(acts.hiddens.last().expect("non-empty"), &dctx, &mut dh);

        // Residual blocks backward (reverse order).
        for (i, (w1, w2)) in self.blocks.iter_mut().enumerate().rev() {
            let (a, b_act) = &acts.block_acts[i];
            let h_prev = &acts.hiddens[i];
            // dh splits into the identity path (stays dh) and the branch path through b.
            let mut db = dh.clone();
            relu_backward(b_act, &mut db);
            let mut da = Matrix::zeros(batch, h_dim);
            w2.backward(a, &db, &mut da);
            relu_backward(a, &mut da);
            let mut dh_branch = Matrix::zeros(batch, h_dim);
            w1.backward(h_prev, &da, &mut dh_branch);
            for (o, v) in dh.data_mut().iter_mut().zip(dh_branch.data()) {
                *o += v;
            }
        }

        // Input layer backward.
        let mut dh_in = dh;
        relu_backward(&acts.hiddens[0], &mut dh_in);
        let mut dx = Matrix::zeros(batch, n * d);
        self.input_layer.backward(&x, &dh_in, &mut dx);

        // Embedding (input side) gradients.
        for (b, row) in inputs.iter().enumerate() {
            let dx_row = dx.row(b);
            for (c, &token) in row.iter().enumerate() {
                self.embeddings[c].accumulate_grad(token, &dx_row[c * d..(c + 1) * d]);
            }
        }

        total_loss
    }

    /// Applies wildcard skipping to a batch of (target) rows: each column of each row is
    /// independently replaced by that column's MASK token with probability `p`.
    pub fn apply_wildcard_skipping(
        &self,
        rows: &[Vec<u32>],
        p: f32,
        rng: &mut StdRng,
    ) -> Vec<Vec<u32>> {
        rows.iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(c, &t)| {
                        if rng.random::<f32>() < p {
                            self.mask_token(c)
                        } else {
                            t
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Wildcard skipping with a *varied* masking rate (the scheme Naru uses in practice):
    /// each row first draws its own masking probability uniformly from `[0, 1)`, then masks
    /// each column independently with that probability.  This exposes the model to inputs
    /// ranging from fully observed to almost fully masked, which is what inference needs —
    /// a query typically constrains only a handful of columns, so the conditioning context
    /// at estimation time is mostly MASK tokens.
    pub fn apply_wildcard_skipping_varied(
        &self,
        rows: &[Vec<u32>],
        rng: &mut StdRng,
    ) -> Vec<Vec<u32>> {
        rows.iter()
            .map(|row| {
                let p: f32 = rng.random();
                row.iter()
                    .enumerate()
                    .map(|(c, &t)| {
                        if rng.random::<f32>() < p {
                            self.mask_token(c)
                        } else {
                            t
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Conditional distribution `p(x_col | inputs₍<col₎)` for every row of `inputs`.
    ///
    /// Columns at positions `>= col` of `inputs` are ignored by construction of the masks,
    /// so callers conventionally fill them with MASK tokens.  Returns a `batch × domain`
    /// matrix of probabilities.
    ///
    /// Convenience wrapper over [`ResMade::conditional_probs_into`]; hot callers (the
    /// progressive sampler) should use the `_into` variant with a reused
    /// [`InferenceScratch`] instead, which performs zero allocations in steady state.
    pub fn conditional_probs(&self, inputs: &[Vec<u32>], col: usize) -> Matrix {
        let n = self.num_columns();
        let mut flat = Vec::with_capacity(inputs.len() * n);
        for row in inputs {
            assert_eq!(
                row.len(),
                n,
                "input row arity must equal the number of columns"
            );
            flat.extend_from_slice(row);
        }
        let mut scratch = InferenceScratch::new();
        self.conditional_probs_into(&flat, col, &mut scratch)
            .clone()
    }

    /// Embeds a flat `batch × num_columns` token buffer into the input matrix `x`
    /// (resized; allocation reused across calls).
    pub fn embed_flat_into(&self, tokens: &[u32], x: &mut Matrix) {
        let n = self.num_columns();
        let d = self.config.d_emb;
        assert_eq!(
            tokens.len() % n,
            0,
            "flat token buffer length must be a multiple of the column count"
        );
        let batch = tokens.len() / n;
        x.resize(batch, n * d);
        for b in 0..batch {
            let row_tokens = &tokens[b * n..(b + 1) * n];
            let out_row = x.row_mut(b);
            for (c, &token) in row_tokens.iter().enumerate() {
                self.embeddings[c].lookup(token, &mut out_row[c * d..(c + 1) * d]);
            }
        }
    }

    /// Inference-only trunk: embeddings matrix `x` → final hidden activations in `h`.
    ///
    /// Unlike [`ResMade::forward_trunk`] this keeps no per-layer activations (nothing to
    /// backprop through), reuses the three caller-owned buffers, and runs the blocked GEMM
    /// kernels — all bit-identical to the naive kernels the training path uses.
    fn trunk_hidden(&self, x: &Matrix, h: &mut Matrix, a: &mut Matrix, b: &mut Matrix) {
        let batch = x.rows();
        let h_dim = self.config.d_hidden;
        h.resize(batch, h_dim);
        matmul_blocked(x, &self.input_layer.inner.weight.value, h);
        add_bias(h, self.input_layer.inner.bias.value.row(0));
        relu(h);
        for (w1, w2) in &self.blocks {
            a.resize(batch, h_dim);
            matmul_blocked(h, &w1.inner.weight.value, a);
            add_bias(a, w1.inner.bias.value.row(0));
            relu(a);
            b.resize(batch, h_dim);
            matmul_blocked(a, &w2.inner.weight.value, b);
            add_bias(b, w2.inner.bias.value.row(0));
            relu(b);
            for (o, v) in h.data_mut().iter_mut().zip(b.data()) {
                *o += v;
            }
        }
    }

    /// [`ResMade::trunk_hidden`] with every GEMM routed through the architecture-dispatched
    /// fast-tier kernels ([`crate::kernel`]).  Bit-identical to the exact trunk when the
    /// `simd` feature is off (the portable fallback preserves accumulation order);
    /// last-ulps different when a SIMD implementation is selected.
    fn trunk_hidden_fast(&self, x: &Matrix, h: &mut Matrix, a: &mut Matrix, b: &mut Matrix) {
        let batch = x.rows();
        let h_dim = self.config.d_hidden;
        h.resize(batch, h_dim);
        kernel::matmul_blocked(x, &self.input_layer.inner.weight.value, h);
        add_bias(h, self.input_layer.inner.bias.value.row(0));
        relu(h);
        for (w1, w2) in &self.blocks {
            a.resize(batch, h_dim);
            kernel::matmul_blocked(h, &w1.inner.weight.value, a);
            add_bias(a, w1.inner.bias.value.row(0));
            relu(a);
            b.resize(batch, h_dim);
            kernel::matmul_blocked(a, &w2.inner.weight.value, b);
            add_bias(b, w2.inner.bias.value.row(0));
            relu(b);
            for (o, v) in h.data_mut().iter_mut().zip(b.data()) {
                *o += v;
            }
        }
    }

    /// The seed (pre-fast-path) inference forward, kept verbatim as the baseline the
    /// determinism contract is pinned against and `figure7d` benchmarks against: fresh
    /// allocations per call, the full-width output layer (contexts for *every* column),
    /// and the scalar weight-tied logit loop.
    ///
    /// Bit-identical to [`ResMade::conditional_probs_into`] — only the compute profile
    /// differs.
    pub fn conditional_probs_reference(&self, inputs: &[Vec<u32>], col: usize) -> Matrix {
        assert!(col < self.num_columns());
        let x = self.embed(inputs);
        let acts = self.forward_trunk(&x);
        let d = self.config.d_emb;
        let domain = self.config.domains[col];
        let emb = &self.embeddings[col].table.value;
        let bias = self.output_bias[col].value.row(0);
        let mut logits = Matrix::zeros(x.rows(), domain);
        for b in 0..x.rows() {
            let c = &acts.ctx.row(b)[col * d..(col + 1) * d];
            let out = logits.row_mut(b);
            for (v, out_v) in out.iter_mut().enumerate() {
                let e = emb.row(v);
                let mut acc = 0.0f32;
                for (a, b_) in c.iter().zip(e) {
                    acc += a * b_;
                }
                *out_v = acc + bias[v];
            }
        }
        softmax_rows(&logits)
    }

    /// Zero-allocation [`ResMade::conditional_probs`]: `tokens` is a flat
    /// `batch × num_columns` buffer, all intermediates live in `scratch`, and the returned
    /// reference points into `scratch.probs`.
    ///
    /// Two inference-specific optimisations over the training-path forward:
    ///
    /// * the output layer computes **only** column `col`'s `d_emb`-wide context slice
    ///   ([`matmul_col_range`]) instead of all `num_columns · d_emb` outputs,
    /// * the logit head is one blocked GEMM against the embedding table ([`gemm_nt`]).
    ///
    /// Both are bit-for-bit equal to the naive path (`conditional_probs_into_matches_
    /// training_path_bitwise` pins this), which is what keeps progressive-sampling
    /// estimates exactly reproducible across the old and new inference code.
    pub fn conditional_probs_into<'s>(
        &self,
        tokens: &[u32],
        col: usize,
        scratch: &'s mut InferenceScratch,
    ) -> &'s Matrix {
        assert!(col < self.num_columns());
        let d = self.config.d_emb;
        let domain = self.config.domains[col];
        self.embed_flat_into(tokens, &mut scratch.x);
        self.trunk_hidden(&scratch.x, &mut scratch.h, &mut scratch.a, &mut scratch.b);
        let batch = scratch.x.rows();
        scratch.ctx.resize(batch, d);
        matmul_col_range(
            &scratch.h,
            &self.output_layer.inner.weight.value,
            col * d,
            (col + 1) * d,
            &mut scratch.ctx,
        );
        add_bias(
            &mut scratch.ctx,
            &self.output_layer.inner.bias.value.row(0)[col * d..(col + 1) * d],
        );
        scratch.logits.resize(batch, domain);
        let emb = &self.embeddings[col].table.value;
        gemm_nt(
            batch,
            domain,
            d,
            scratch.ctx.data(),
            &emb.data()[..domain * d],
            scratch.logits.data_mut(),
        );
        add_bias(&mut scratch.logits, self.output_bias[col].value.row(0));
        softmax_rows_into(&scratch.logits, &mut scratch.probs);
        &scratch.probs
    }

    /// The **fast-tier** [`ResMade::conditional_probs_into`]: same structure, but every
    /// GEMM and the softmax normalisation dispatch through [`crate::kernel`] to the widest
    /// instruction set the CPU supports.
    ///
    /// With the `simd` feature off this is bit-identical to the exact tier (the portable
    /// fallback preserves per-element accumulation order — pinned by
    /// `conditional_probs_into_fast_bit_identical_without_simd`).  With SIMD selected, the
    /// reassociated reductions drift by last ulps; callers own the accuracy story (the
    /// serving layer pairs this with bf16 weights under the q-error-delta gate — see the
    /// README's two-tier determinism contract).
    pub fn conditional_probs_into_fast<'s>(
        &self,
        tokens: &[u32],
        col: usize,
        scratch: &'s mut InferenceScratch,
    ) -> &'s Matrix {
        assert!(col < self.num_columns());
        let d = self.config.d_emb;
        let domain = self.config.domains[col];
        self.embed_flat_into(tokens, &mut scratch.x);
        self.trunk_hidden_fast(&scratch.x, &mut scratch.h, &mut scratch.a, &mut scratch.b);
        let batch = scratch.x.rows();
        scratch.ctx.resize(batch, d);
        kernel::matmul_col_range(
            &scratch.h,
            &self.output_layer.inner.weight.value,
            col * d,
            (col + 1) * d,
            &mut scratch.ctx,
        );
        add_bias(
            &mut scratch.ctx,
            &self.output_layer.inner.bias.value.row(0)[col * d..(col + 1) * d],
        );
        scratch.logits.resize(batch, domain);
        let emb = &self.embeddings[col].table.value;
        kernel::gemm_nt(
            batch,
            domain,
            d,
            scratch.ctx.data(),
            &emb.data()[..domain * d],
            scratch.logits.data_mut(),
        );
        add_bias(&mut scratch.logits, self.output_bias[col].value.row(0));
        kernel::softmax_rows_into(&scratch.logits, &mut scratch.probs);
        &scratch.probs
    }

    /// Log-likelihood (nats) of complete tuples under the model; used by tests.
    pub fn log_likelihood(&self, rows: &[Vec<u32>]) -> Vec<f32> {
        let x = self.embed(rows);
        let acts = self.forward_trunk(&x);
        let mut ll = vec![0.0f32; rows.len()];
        for col in 0..self.num_columns() {
            let logits = self.logits_for(&acts.ctx, col);
            let probs = softmax_rows(&logits);
            for (b, row) in rows.iter().enumerate() {
                ll[b] += probs.get(b, row[col] as usize).max(1e-30).ln();
            }
        }
        ll
    }
}

/// Reusable buffers for the zero-allocation inference forward pass
/// ([`ResMade::conditional_probs_into`]).
///
/// Create one per serving thread and reuse it across forward passes, sub-columns and
/// queries; every buffer is resized in place (allocations only grow, never shrink), so
/// steady-state inference performs no heap allocation at all.  The scratch is not tied to
/// a model: it adapts to whatever shapes the next call needs, so one scratch can serve
/// several models of different sizes.
#[derive(Debug, Clone)]
pub struct InferenceScratch {
    /// Embedded inputs (`batch × n·d_emb`).
    x: Matrix,
    /// Running hidden state (`batch × d_hidden`).
    h: Matrix,
    /// First activation inside a residual block.
    a: Matrix,
    /// Second activation inside a residual block.
    b: Matrix,
    /// Context slice of the queried column (`batch × d_emb`).
    ctx: Matrix,
    /// Logits of the queried column (`batch × domain`).
    logits: Matrix,
    /// Softmax probabilities returned to the caller.
    probs: Matrix,
}

impl InferenceScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        InferenceScratch {
            x: Matrix::zeros(0, 0),
            h: Matrix::zeros(0, 0),
            a: Matrix::zeros(0, 0),
            b: Matrix::zeros(0, 0),
            ctx: Matrix::zeros(0, 0),
            logits: Matrix::zeros(0, 0),
            probs: Matrix::zeros(0, 0),
        }
    }
}

impl Default for InferenceScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Intermediate activations of one trunk forward pass.
struct TrunkActivations {
    /// `hiddens[0]` is the post-ReLU input-layer activation; `hiddens[i+1]` the output of
    /// residual block `i`.
    hiddens: Vec<Matrix>,
    /// `(a, b)` activations inside each residual block.
    block_acts: Vec<(Matrix, Matrix)>,
    /// Per-column context vectors (batch × n·d_emb).
    ctx: Matrix,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, AdamConfig};

    fn make(domains: Vec<usize>, seed: u64) -> ResMade {
        ResMade::new(MadeConfig {
            domains,
            d_emb: 6,
            d_hidden: 24,
            num_blocks: 1,
            seed,
        })
    }

    #[test]
    fn shapes_and_metadata() {
        let m = make(vec![4, 3, 5], 1);
        assert_eq!(m.num_columns(), 3);
        assert_eq!(m.domain(2), 5);
        assert_eq!(m.mask_token(0), 4);
        assert!(m.num_params() > 0);
        assert_eq!(m.size_bytes(), m.num_params() * 4);
        assert_eq!(m.params().len(), m.clone().params_mut().len());
    }

    #[test]
    fn autoregressive_property_holds() {
        // p(x_0) and p(x_1 | x_0) must not change when later columns change.
        let m = make(vec![4, 3, 5], 2);
        let a = vec![vec![1u32, 2, 0]];
        let b = vec![vec![1u32, 2, 4]];
        let c = vec![vec![1u32, 0, 4]];
        let p0_a = m.conditional_probs(&a, 0);
        let p0_b = m.conditional_probs(&b, 0);
        let p0_c = m.conditional_probs(&c, 0);
        assert_eq!(p0_a.data(), p0_b.data());
        assert_eq!(p0_a.data(), p0_c.data());
        let p1_a = m.conditional_probs(&a, 1);
        let p1_b = m.conditional_probs(&b, 1);
        assert_eq!(p1_a.data(), p1_b.data());
        // But p(x_1 | x_0) should generally change when x_0 changes (non-degenerate net).
        let p2_a = m.conditional_probs(&a, 2);
        let p2_c = m.conditional_probs(&c, 2);
        assert_ne!(p2_a.data(), p2_c.data());
    }

    #[test]
    fn conditional_probs_are_distributions() {
        let m = make(vec![4, 3, 5], 3);
        let rows = vec![vec![0u32, 0, 0], vec![3, 2, 4]];
        for col in 0..3 {
            let p = m.conditional_probs(&rows, col);
            assert_eq!(p.cols(), m.domain(col));
            for b in 0..rows.len() {
                let s: f32 = p.row(b).iter().sum();
                assert!((s - 1.0).abs() < 1e-4);
                assert!(p.row(b).iter().all(|&v| v >= 0.0));
            }
        }
    }

    #[test]
    fn training_reduces_loss_and_learns_correlation() {
        // Two perfectly correlated columns: x1 = x0 over a domain of 4.
        let mut m = ResMade::new(MadeConfig {
            domains: vec![4, 4],
            d_emb: 8,
            d_hidden: 32,
            num_blocks: 1,
            seed: 7,
        });
        let mut adam = Adam::for_params(
            AdamConfig {
                lr: 5e-3,
                ..Default::default()
            },
            &m.params(),
        );
        let data: Vec<Vec<u32>> = (0..256)
            .map(|i| vec![(i % 4) as u32, (i % 4) as u32])
            .collect();
        let first_loss = m.forward_backward(&data, &data);
        adam.step(&mut m.params_mut());
        let mut last_loss = first_loss;
        for _ in 0..300 {
            last_loss = m.forward_backward(&data, &data);
            adam.step(&mut m.params_mut());
        }
        assert!(
            last_loss < first_loss * 0.6,
            "loss did not decrease: {first_loss} -> {last_loss}"
        );
        // After training, p(x1 = k | x0 = k) should dominate.
        for k in 0..4u32 {
            let p = m.conditional_probs(&[vec![k, 0]], 1);
            let row = p.row(0);
            let argmax = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            assert_eq!(
                argmax as u32, k,
                "column 1 should copy column 0 (probs {row:?})"
            );
        }
        // Log-likelihood of consistent tuples should beat inconsistent ones.
        let ll_good: f32 = m.log_likelihood(&[vec![2, 2]])[0];
        let ll_bad: f32 = m.log_likelihood(&[vec![2, 3]])[0];
        assert!(ll_good > ll_bad);
    }

    #[test]
    fn wildcard_skipping_masks_roughly_p_fraction() {
        let m = make(vec![10, 10, 10, 10], 4);
        let mut rng = seeded_rng(9);
        let rows: Vec<Vec<u32>> = (0..500).map(|i| vec![i % 10, (i / 2) % 10, 3, 4]).collect();
        let masked = m.apply_wildcard_skipping(&rows, 0.3, &mut rng);
        let total = 500 * 4;
        let n_masked: usize = masked
            .iter()
            .enumerate()
            .map(|(_, row)| {
                row.iter()
                    .enumerate()
                    .filter(|(c, &t)| t == m.mask_token(*c))
                    .count()
            })
            .sum();
        let frac = n_masked as f64 / total as f64;
        assert!((frac - 0.3).abs() < 0.05, "masked fraction {frac}");
        // p = 0 masks nothing.
        let unmasked = m.apply_wildcard_skipping(&rows, 0.0, &mut rng);
        assert_eq!(unmasked, rows);
    }

    #[test]
    fn single_column_model_learns_a_marginal() {
        // Domain 3 with skewed frequencies 0.7 / 0.2 / 0.1.
        let mut m = ResMade::new(MadeConfig {
            domains: vec![3],
            d_emb: 4,
            d_hidden: 8,
            num_blocks: 1,
            seed: 5,
        });
        let mut adam = Adam::for_params(
            AdamConfig {
                lr: 5e-2,
                ..Default::default()
            },
            &m.params(),
        );
        let mut data = Vec::new();
        for _ in 0..70 {
            data.push(vec![0u32]);
        }
        for _ in 0..20 {
            data.push(vec![1u32]);
        }
        for _ in 0..10 {
            data.push(vec![2u32]);
        }
        for _ in 0..200 {
            m.forward_backward(&data, &data);
            adam.step(&mut m.params_mut());
        }
        let p = m.conditional_probs(&[vec![0]], 0);
        assert!((p.get(0, 0) - 0.7).abs() < 0.08, "p = {:?}", p.row(0));
        assert!((p.get(0, 1) - 0.2).abs() < 0.08);
        assert!((p.get(0, 2) - 0.1).abs() < 0.08);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_input_panics() {
        let m = make(vec![4, 3], 1);
        m.conditional_probs(&[vec![0u32]], 0);
    }

    #[test]
    fn conditional_probs_into_matches_training_path_bitwise() {
        let m = ResMade::new(MadeConfig {
            domains: vec![4, 9, 3, 17, 5],
            d_emb: 6,
            d_hidden: 24,
            num_blocks: 2,
            seed: 11,
        });
        let mut scratch = InferenceScratch::new();
        // Varying batch sizes through ONE reused scratch, with MASK tokens mixed in the
        // way progressive sampling produces them.
        for (round, &batch) in [7usize, 1, 13, 4].iter().enumerate() {
            let rows: Vec<Vec<u32>> = (0..batch)
                .map(|b| {
                    (0..m.num_columns())
                        .map(|c| {
                            if (b + c + round) % 3 == 0 {
                                m.mask_token(c)
                            } else {
                                ((b * 31 + c * 7 + round) % m.domain(c)) as u32
                            }
                        })
                        .collect()
                })
                .collect();
            let flat: Vec<u32> = rows.iter().flatten().copied().collect();
            for col in 0..m.num_columns() {
                // The reference is the seed path: full-batch allocation, full-width
                // output layer, scalar weight-tied logit loop.  The fast path must
                // reproduce it bit-for-bit — this is the model-level half of the
                // progressive sampler's determinism contract.
                let naive = m.conditional_probs_reference(&rows, col);
                let fast = m.conditional_probs_into(&flat, col, &mut scratch);
                assert_eq!(
                    (fast.rows(), fast.cols()),
                    (batch, m.domain(col)),
                    "shape at col {col}"
                );
                for (i, (a, b)) in naive.data().iter().zip(fast.data()).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "round {round} col {col} element {i}: {a} vs {b}"
                    );
                }
            }
        }
    }

    /// With the `simd` feature off, the fast-tier forward resolves to the portable
    /// kernels and must reproduce the exact tier bit-for-bit — the model-level half of
    /// the two-tier determinism contract's "fast mode is still deterministic per build"
    /// guarantee.
    #[cfg(not(feature = "simd"))]
    #[test]
    fn conditional_probs_into_fast_bit_identical_without_simd() {
        let m = ResMade::new(MadeConfig {
            domains: vec![4, 9, 3, 17, 5],
            d_emb: 6,
            d_hidden: 24,
            num_blocks: 2,
            seed: 13,
        });
        let mut exact = InferenceScratch::new();
        let mut fast = InferenceScratch::new();
        for batch in [1usize, 7, 13] {
            let flat: Vec<u32> = (0..batch)
                .flat_map(|b| {
                    (0..m.num_columns())
                        .map(|c| ((b * 17 + c * 5) % m.domain(c)) as u32)
                        .collect::<Vec<_>>()
                })
                .collect();
            for col in 0..m.num_columns() {
                let reference = m.conditional_probs_into(&flat, col, &mut exact).clone();
                let dispatched = m.conditional_probs_into_fast(&flat, col, &mut fast);
                for (i, (a, b)) in reference.data().iter().zip(dispatched.data()).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "col {col} element {i}: {a} vs {b}"
                    );
                }
            }
        }
    }

    /// Whatever ISA the fast tier dispatches to, its conditional distributions must stay
    /// numerically indistinguishable from the exact tier at f32 working precision (the
    /// quantisation error budget belongs to bf16 weights, not the kernels).
    #[test]
    fn conditional_probs_into_fast_matches_exact_numerically() {
        let m = ResMade::new(MadeConfig {
            domains: vec![6, 11, 4, 23],
            d_emb: 8,
            d_hidden: 40,
            num_blocks: 2,
            seed: 29,
        });
        let mut exact = InferenceScratch::new();
        let mut fast = InferenceScratch::new();
        for batch in [1usize, 9, 33] {
            let flat: Vec<u32> = (0..batch)
                .flat_map(|b| {
                    (0..m.num_columns())
                        .map(|c| {
                            if (b + c) % 4 == 0 {
                                m.mask_token(c)
                            } else {
                                ((b * 13 + c * 3) % m.domain(c)) as u32
                            }
                        })
                        .collect::<Vec<_>>()
                })
                .collect();
            for col in 0..m.num_columns() {
                let reference = m.conditional_probs_into(&flat, col, &mut exact).clone();
                let dispatched = m.conditional_probs_into_fast(&flat, col, &mut fast);
                assert_eq!(
                    (dispatched.rows(), dispatched.cols()),
                    (batch, m.domain(col))
                );
                for r in 0..batch {
                    let s: f32 = dispatched.row(r).iter().sum();
                    assert!((s - 1.0).abs() < 1e-4, "row {r} sums to {s}");
                }
                for (i, (a, b)) in reference.data().iter().zip(dispatched.data()).enumerate() {
                    assert!((a - b).abs() <= 1e-5, "col {col} element {i}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn embed_flat_matches_row_embedding() {
        let m = make(vec![4, 3, 5], 6);
        let rows = vec![vec![1u32, 2, 0], vec![3, 0, 4], vec![4, 3, 5]]; // incl. MASKs
        let flat: Vec<u32> = rows.iter().flatten().copied().collect();
        let mut x = Matrix::zeros(0, 0);
        m.embed_flat_into(&flat, &mut x);
        assert_eq!(x, m.embed(&rows));
    }

    #[test]
    #[should_panic(expected = "multiple of the column count")]
    fn embed_flat_rejects_ragged_buffers() {
        let m = make(vec![4, 3], 1);
        let mut x = Matrix::zeros(0, 0);
        m.embed_flat_into(&[0u32, 1, 2], &mut x);
    }
}
