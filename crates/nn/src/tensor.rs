//! Dense `f32` matrices and the matrix kernels used by the model.
//!
//! The matrices are row-major `Vec<f32>`s.  The GEMM kernels use an `i-k-j` loop order so
//! the inner loop walks both operands contiguously, which LLVM auto-vectorises; this is
//! plenty for the model sizes involved (a few hundred units per layer).

/// A dense row-major `f32` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from row-major data.  Panics if the length does not match.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the underlying data (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Sets every element to zero (reuses the allocation).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }
}

/// `out = a (m×k) · b (k×n)`, overwriting `out` (m×n).
pub fn matmul(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.cols, b.rows, "inner dimensions must agree");
    assert_eq!(out.rows, a.rows);
    assert_eq!(out.cols, b.cols);
    out.fill_zero();
    matmul_accumulate(a, b, out);
}

/// `out += a (m×k) · b (k×n)`.
pub fn matmul_accumulate(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.cols, b.rows, "inner dimensions must agree");
    let (m, k, n) = (a.rows, a.cols, b.cols);
    for i in 0..m {
        let a_row = &a.data[i * k..(i + 1) * k];
        let out_row = &mut out.data[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b.data[p * n..(p + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                *o += a_ip * b_pj;
            }
        }
    }
}

/// `out = a (m×k) · bᵀ (n×k)`, overwriting `out` (m×n).
pub fn matmul_transpose_b(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(
        a.cols, b.cols,
        "inner dimensions must agree (b is transposed)"
    );
    assert_eq!(out.rows, a.rows);
    assert_eq!(out.cols, b.rows);
    let (m, k, n) = (a.rows, a.cols, b.rows);
    for i in 0..m {
        let a_row = &a.data[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b.data[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (x, y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            out.data[i * n + j] = acc;
        }
    }
}

/// `out += aᵀ (k×m) · b (k×n)` where `a` is stored as (k×m): accumulates `mᵀ·n` products.
/// Used for weight gradients: `dW += xᵀ · dy`.
pub fn matmul_transpose_a_accumulate(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.rows, b.rows, "outer (batch) dimensions must agree");
    assert_eq!(out.rows, a.cols);
    assert_eq!(out.cols, b.cols);
    let (k, m, n) = (a.rows, a.cols, b.cols);
    for p in 0..k {
        let a_row = &a.data[p * m..(p + 1) * m];
        let b_row = &b.data[p * n..(p + 1) * n];
        for (i, &a_pi) in a_row.iter().enumerate() {
            if a_pi == 0.0 {
                continue;
            }
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                *o += a_pi * b_pj;
            }
        }
    }
}

/// Adds a bias row vector to every row of `m`.
pub fn add_bias(m: &mut Matrix, bias: &[f32]) {
    assert_eq!(m.cols, bias.len());
    for r in 0..m.rows {
        for (v, b) in m.row_mut(r).iter_mut().zip(bias) {
            *v += b;
        }
    }
}

/// Column-wise sum of `m` accumulated into `out` (used for bias gradients).
pub fn column_sums_accumulate(m: &Matrix, out: &mut [f32]) {
    assert_eq!(m.cols, out.len());
    for r in 0..m.rows {
        for (o, v) in out.iter_mut().zip(m.row(r)) {
            *o += v;
        }
    }
}

/// Element-wise `out[i] += a[i] * b[i]` over whole matrices of identical shape.
pub fn elementwise_mul_accumulate(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.cols, b.cols);
    assert_eq!(a.rows, out.rows);
    assert_eq!(a.cols, out.cols);
    for ((o, x), y) in out.data.iter_mut().zip(&a.data).zip(&b.data) {
        *o += x * y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &[f32], b: &[f32]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-5)
    }

    #[test]
    fn basic_accessors() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        m.row_mut(0)[0] = 1.0;
        assert_eq!(m.data()[0], 1.0);
        m.fill_zero();
        assert!(m.data().iter().all(|v| *v == 0.0));
        m.data_mut()[0] = 2.0;
        assert_eq!(m.get(0, 0), 2.0);
    }

    #[test]
    fn matmul_small_known_result() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Matrix::from_vec(2, 2, vec![5., 6., 7., 8.]);
        let mut out = Matrix::zeros(2, 2);
        matmul(&a, &b, &mut out);
        assert!(approx_eq(out.data(), &[19., 22., 43., 50.]));
        // Accumulate doubles it.
        matmul_accumulate(&a, &b, &mut out);
        assert!(approx_eq(out.data(), &[38., 44., 86., 100.]));
    }

    #[test]
    fn matmul_transpose_variants_agree_with_plain() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let mut expected = Matrix::zeros(2, 2);
        matmul(&a, &b, &mut expected);

        // a · bᵀ with b stored transposed (2×3).
        let bt = Matrix::from_vec(2, 3, vec![7., 9., 11., 8., 10., 12.]);
        let mut out = Matrix::zeros(2, 2);
        matmul_transpose_b(&a, &bt, &mut out);
        assert!(approx_eq(out.data(), expected.data()));

        // aᵀ · b with a stored transposed (3×2): (aᵀ)ᵀ·b = a·b.
        let at = Matrix::from_vec(3, 2, vec![1., 4., 2., 5., 3., 6.]);
        let mut out = Matrix::zeros(2, 2);
        matmul_transpose_a_accumulate(&at, &b, &mut out);
        assert!(approx_eq(out.data(), expected.data()));
    }

    #[test]
    fn bias_and_column_sums() {
        let mut m = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        add_bias(&mut m, &[10., 20.]);
        assert!(approx_eq(m.data(), &[11., 22., 13., 24.]));
        let mut sums = vec![0.0; 2];
        column_sums_accumulate(&m, &mut sums);
        assert!(approx_eq(&sums, &[24., 46.]));
    }

    #[test]
    fn elementwise_mul() {
        let a = Matrix::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Matrix::from_vec(1, 3, vec![4., 5., 6.]);
        let mut out = Matrix::zeros(1, 3);
        elementwise_mul_accumulate(&a, &b, &mut out);
        assert!(approx_eq(out.data(), &[4., 10., 18.]));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let mut out = Matrix::zeros(2, 3);
        matmul(&a, &b, &mut out);
    }
}
