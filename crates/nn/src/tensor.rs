//! Dense `f32` matrices and the matrix kernels used by the model.
//!
//! The matrices are row-major `Vec<f32>`s.  The GEMM kernels use an `i-k-j` loop order so
//! the inner loop walks both operands contiguously, which LLVM auto-vectorises; this is
//! plenty for the model sizes involved (a few hundred units per layer).

/// A dense row-major `f32` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from row-major data.  Panics if the length does not match.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the underlying data (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Sets every element to zero (reuses the allocation).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Reshapes to `rows × cols`, reusing the existing allocation when it is large
    /// enough.  This is what lets the inference scratch buffers survive across calls with
    /// varying batch sizes without ever re-allocating.
    ///
    /// **Contents are unspecified after a resize** (stale values may remain; only newly
    /// grown capacity is zero).  Every kernel that writes into a resized buffer
    /// (`matmul_blocked`, `gemm_nt`, `matmul_col_range` via `fill_zero`, embedding
    /// lookups, row-wise softmax) overwrites it fully, which is what makes skipping the
    /// memset safe — use [`Matrix::fill_zero`] first if zeroes are needed.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        let len = rows * cols;
        if len <= self.data.len() {
            self.data.truncate(len);
        } else {
            self.data.resize(len, 0.0);
        }
    }
}

/// `out = a (m×k) · b (k×n)`, overwriting `out` (m×n).
pub fn matmul(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.cols, b.rows, "inner dimensions must agree");
    assert_eq!(out.rows, a.rows);
    assert_eq!(out.cols, b.cols);
    out.fill_zero();
    matmul_accumulate(a, b, out);
}

/// `out += a (m×k) · b (k×n)`.
pub fn matmul_accumulate(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.cols, b.rows, "inner dimensions must agree");
    let (m, k, n) = (a.rows, a.cols, b.cols);
    for i in 0..m {
        let a_row = &a.data[i * k..(i + 1) * k];
        let out_row = &mut out.data[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b.data[p * n..(p + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                *o += a_ip * b_pj;
            }
        }
    }
}

/// `out = a (m×k) · b (k×n)`, bit-identical to [`matmul`] but register-blocked for the
/// short-fat shapes of the inference hot path (`m` = live progressive samples, `k` =
/// `d_hidden`).
///
/// The kernel processes `NR` output columns at a time so each `a[i][p]` load is amortised
/// over `NR` independent accumulator chains.  Every output element still accumulates its
/// products in ascending-`p` order with the same skip of zero `a` entries as the naive
/// kernel, so the result is **bit-for-bit equal** to [`matmul`] — a property the inference
/// determinism contract relies on and `blocked_kernels_match_naive_bitwise` pins.
pub fn matmul_blocked(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.cols, b.rows, "inner dimensions must agree");
    assert_eq!(out.rows, a.rows);
    assert_eq!(out.cols, b.cols);
    // 32 output columns per block = 4–8 independent SIMD accumulator chains, enough to
    // hide FMA latency; each chain still accumulates in ascending-p order.
    const NR: usize = 32;
    let (m, k, n) = (a.rows, a.cols, b.cols);
    for i in 0..m {
        let a_row = &a.data[i * k..(i + 1) * k];
        let out_row = &mut out.data[i * n..(i + 1) * n];
        let mut j = 0;
        while j + NR <= n {
            let mut acc = [0.0f32; NR];
            for (p, &a_ip) in a_row.iter().enumerate() {
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = &b.data[p * n + j..p * n + j + NR];
                for (c, &b_pj) in acc.iter_mut().zip(b_row) {
                    *c += a_ip * b_pj;
                }
            }
            out_row[j..j + NR].copy_from_slice(&acc);
            j += NR;
        }
        while j < n {
            let mut acc = 0.0f32;
            for (p, &a_ip) in a_row.iter().enumerate() {
                if a_ip == 0.0 {
                    continue;
                }
                acc += a_ip * b.data[p * n + j];
            }
            out_row[j] = acc;
            j += 1;
        }
    }
}

/// `out = a · b[:, lo..hi]` — the column slice `lo..hi` of [`matmul`]'s result, without
/// computing the other columns.
///
/// The inference path uses this for the output layer: a progressive-sampling forward pass
/// only ever reads the context vector of **one** model column, so computing all
/// `n_cols · d_emb` outputs (as training must) wastes a factor `n_cols` of the output-layer
/// GEMM.  Accumulation order per element matches [`matmul`] exactly (ascending `p`, zero
/// `a` entries skipped), so the slice is bit-for-bit the one the full product would yield.
pub fn matmul_col_range(a: &Matrix, b: &Matrix, lo: usize, hi: usize, out: &mut Matrix) {
    assert_eq!(a.cols, b.rows, "inner dimensions must agree");
    assert!(lo <= hi && hi <= b.cols, "column slice out of bounds");
    assert_eq!(out.rows, a.rows);
    assert_eq!(out.cols, hi - lo);
    let (m, k, w, bn) = (a.rows, a.cols, hi - lo, b.cols);
    out.fill_zero();
    for i in 0..m {
        let a_row = &a.data[i * k..(i + 1) * k];
        let out_row = &mut out.data[i * w..(i + 1) * w];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b.data[p * bn + lo..p * bn + hi];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                *o += a_ip * b_pj;
            }
        }
    }
}

/// Slice-level `out (m×n) = a (m×k) · bᵀ (n×k)` kernel, register-blocked over `NR` rows of
/// `b` at a time.
///
/// This backs the weight-tied logit heads: `a` is the batch of per-column context vectors,
/// `b` the first `n` rows of the column's embedding table.  Taking slices (rather than
/// [`Matrix`]) lets callers use a *prefix* of a taller matrix as `b` — the embedding table
/// has `domain + 1` rows but logits only cover `domain` values.  Each output element is a
/// plain ascending-`k` dot product, so results are bit-for-bit equal to
/// [`matmul_transpose_b`].
pub fn gemm_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert!(a.len() >= m * k, "a too short for m×k");
    assert!(b.len() >= n * k, "b too short for n×k");
    assert!(out.len() >= m * n, "out too short for m×n");
    const NR: usize = 4;
    for i in 0..m {
        let a_row = &a[i * k..i * k + k];
        let out_row = &mut out[i * n..i * n + n];
        let mut j = 0;
        while j + NR <= n {
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let b2 = &b[(j + 2) * k..(j + 3) * k];
            let b3 = &b[(j + 3) * k..(j + 4) * k];
            let mut acc = [0.0f32; NR];
            for (p, &a_ip) in a_row.iter().enumerate() {
                acc[0] += a_ip * b0[p];
                acc[1] += a_ip * b1[p];
                acc[2] += a_ip * b2[p];
                acc[3] += a_ip * b3[p];
            }
            out_row[j..j + NR].copy_from_slice(&acc);
            j += NR;
        }
        while j < n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (x, y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            out_row[j] = acc;
            j += 1;
        }
    }
}

/// `out = a (m×k) · bᵀ (n×k)` via the blocked [`gemm_nt`] kernel; drop-in faster
/// replacement for [`matmul_transpose_b`] (bit-identical results).
pub fn matmul_transpose_b_blocked(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(
        a.cols, b.cols,
        "inner dimensions must agree (b is transposed)"
    );
    assert_eq!(out.rows, a.rows);
    assert_eq!(out.cols, b.rows);
    gemm_nt(a.rows, b.rows, a.cols, &a.data, &b.data, &mut out.data);
}

/// `out = a (m×k) · bᵀ (n×k)`, overwriting `out` (m×n).
pub fn matmul_transpose_b(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(
        a.cols, b.cols,
        "inner dimensions must agree (b is transposed)"
    );
    assert_eq!(out.rows, a.rows);
    assert_eq!(out.cols, b.rows);
    let (m, k, n) = (a.rows, a.cols, b.rows);
    for i in 0..m {
        let a_row = &a.data[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b.data[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (x, y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            out.data[i * n + j] = acc;
        }
    }
}

/// `out += aᵀ (k×m) · b (k×n)` where `a` is stored as (k×m): accumulates `mᵀ·n` products.
/// Used for weight gradients: `dW += xᵀ · dy`.
pub fn matmul_transpose_a_accumulate(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.rows, b.rows, "outer (batch) dimensions must agree");
    assert_eq!(out.rows, a.cols);
    assert_eq!(out.cols, b.cols);
    let (k, m, n) = (a.rows, a.cols, b.cols);
    for p in 0..k {
        let a_row = &a.data[p * m..(p + 1) * m];
        let b_row = &b.data[p * n..(p + 1) * n];
        for (i, &a_pi) in a_row.iter().enumerate() {
            if a_pi == 0.0 {
                continue;
            }
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row) {
                *o += a_pi * b_pj;
            }
        }
    }
}

/// Adds a bias row vector to every row of `m`.
pub fn add_bias(m: &mut Matrix, bias: &[f32]) {
    assert_eq!(m.cols, bias.len());
    for r in 0..m.rows {
        for (v, b) in m.row_mut(r).iter_mut().zip(bias) {
            *v += b;
        }
    }
}

/// Column-wise sum of `m` accumulated into `out` (used for bias gradients).
pub fn column_sums_accumulate(m: &Matrix, out: &mut [f32]) {
    assert_eq!(m.cols, out.len());
    for r in 0..m.rows {
        for (o, v) in out.iter_mut().zip(m.row(r)) {
            *o += v;
        }
    }
}

/// Element-wise `out[i] += a[i] * b[i]` over whole matrices of identical shape.
pub fn elementwise_mul_accumulate(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.cols, b.cols);
    assert_eq!(a.rows, out.rows);
    assert_eq!(a.cols, out.cols);
    for ((o, x), y) in out.data.iter_mut().zip(&a.data).zip(&b.data) {
        *o += x * y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &[f32], b: &[f32]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-5)
    }

    #[test]
    fn basic_accessors() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        m.row_mut(0)[0] = 1.0;
        assert_eq!(m.data()[0], 1.0);
        m.fill_zero();
        assert!(m.data().iter().all(|v| *v == 0.0));
        m.data_mut()[0] = 2.0;
        assert_eq!(m.get(0, 0), 2.0);
    }

    #[test]
    fn matmul_small_known_result() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Matrix::from_vec(2, 2, vec![5., 6., 7., 8.]);
        let mut out = Matrix::zeros(2, 2);
        matmul(&a, &b, &mut out);
        assert!(approx_eq(out.data(), &[19., 22., 43., 50.]));
        // Accumulate doubles it.
        matmul_accumulate(&a, &b, &mut out);
        assert!(approx_eq(out.data(), &[38., 44., 86., 100.]));
    }

    #[test]
    fn matmul_transpose_variants_agree_with_plain() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let mut expected = Matrix::zeros(2, 2);
        matmul(&a, &b, &mut expected);

        // a · bᵀ with b stored transposed (2×3).
        let bt = Matrix::from_vec(2, 3, vec![7., 9., 11., 8., 10., 12.]);
        let mut out = Matrix::zeros(2, 2);
        matmul_transpose_b(&a, &bt, &mut out);
        assert!(approx_eq(out.data(), expected.data()));

        // aᵀ · b with a stored transposed (3×2): (aᵀ)ᵀ·b = a·b.
        let at = Matrix::from_vec(3, 2, vec![1., 4., 2., 5., 3., 6.]);
        let mut out = Matrix::zeros(2, 2);
        matmul_transpose_a_accumulate(&at, &b, &mut out);
        assert!(approx_eq(out.data(), expected.data()));
    }

    #[test]
    fn bias_and_column_sums() {
        let mut m = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        add_bias(&mut m, &[10., 20.]);
        assert!(approx_eq(m.data(), &[11., 22., 13., 24.]));
        let mut sums = vec![0.0; 2];
        column_sums_accumulate(&m, &mut sums);
        assert!(approx_eq(&sums, &[24., 46.]));
    }

    #[test]
    fn elementwise_mul() {
        let a = Matrix::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Matrix::from_vec(1, 3, vec![4., 5., 6.]);
        let mut out = Matrix::zeros(1, 3);
        elementwise_mul_accumulate(&a, &b, &mut out);
        assert!(approx_eq(out.data(), &[4., 10., 18.]));
    }

    /// Deterministic pseudo-random matrix (no RNG dependency in this crate's tests).
    fn lcg_matrix(rows: usize, cols: usize, seed: &mut u64) -> Matrix {
        let data = (0..rows * cols)
            .map(|_| {
                *seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                // Map to roughly [-1, 1], with exact zeros sprinkled in to exercise the
                // zero-skip branches.
                let v = ((*seed >> 33) as f32 / (1u64 << 31) as f32) - 1.0;
                if (*seed >> 20) & 0xF == 0 {
                    0.0
                } else {
                    v
                }
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    fn assert_bitwise_eq(a: &Matrix, b: &Matrix, what: &str) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "{what}: shape");
        for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}: {x} vs {y}");
        }
    }

    #[test]
    fn resize_reuses_allocation_without_memset() {
        let mut m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let capacity = m.data().as_ptr();
        // Same or smaller element count: no reallocation, contents unspecified (stale).
        m.resize(3, 2);
        assert_eq!((m.rows(), m.cols()), (3, 2));
        m.resize(1, 4);
        assert_eq!((m.rows(), m.cols()), (1, 4));
        assert_eq!(m.data().as_ptr(), capacity, "no reallocation on shrink");
        // Growth zero-fills only the new tail; the caller owns full overwrites.
        m.resize(2, 4);
        assert_eq!(&m.data()[4..], &[0.0; 4]);
        m.fill_zero();
        assert!(m.data().iter().all(|v| *v == 0.0));
    }

    #[test]
    fn blocked_kernels_match_naive_bitwise() {
        // The inference fast path substitutes the blocked kernels for the naive ones; the
        // determinism contract therefore needs bit-for-bit (not approximate) agreement,
        // across shapes that exercise full blocks, remainders, and degenerate dims.
        let mut seed = 0x5EED_u64;
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (1, 7, 5),
            (3, 16, 8),
            (4, 24, 30),
            (5, 32, 97),
            (17, 6, 4),
            (2, 180, 33),
        ] {
            let a = lcg_matrix(m, k, &mut seed);
            let b = lcg_matrix(k, n, &mut seed);
            let mut naive = Matrix::zeros(m, n);
            matmul(&a, &b, &mut naive);
            let mut blocked = Matrix::zeros(m, n);
            blocked.data_mut().iter_mut().for_each(|v| *v = f32::NAN); // must be overwritten
            matmul_blocked(&a, &b, &mut blocked);
            assert_bitwise_eq(&naive, &blocked, &format!("matmul {m}x{k}x{n}"));

            // Column-slice kernel equals the corresponding slice of the full product.
            let lo = n / 3;
            let hi = (2 * n / 3).max(lo);
            let mut sliced = Matrix::zeros(m, hi - lo);
            matmul_col_range(&a, &b, lo, hi, &mut sliced);
            for i in 0..m {
                for (jj, j) in (lo..hi).enumerate() {
                    assert_eq!(
                        sliced.get(i, jj).to_bits(),
                        naive.get(i, j).to_bits(),
                        "matmul_col_range {m}x{k}x{n} [{lo}..{hi}] at ({i},{j})"
                    );
                }
            }

            // Aᵀ-style head kernel: a (m×k) · bᵀ (n×k).
            let bt = lcg_matrix(n, k, &mut seed);
            let mut nt_naive = Matrix::zeros(m, n);
            matmul_transpose_b(&a, &bt, &mut nt_naive);
            let mut nt_blocked = Matrix::zeros(m, n);
            matmul_transpose_b_blocked(&a, &bt, &mut nt_blocked);
            assert_bitwise_eq(&nt_naive, &nt_blocked, &format!("gemm_nt {m}x{k}x{n}"));
        }
    }

    #[test]
    fn gemm_nt_accepts_prefix_of_taller_b() {
        // The logit head passes the first `domain` rows of a `(domain+1)`-row embedding
        // table; gemm_nt must only read the prefix it was told about.
        let mut seed = 99u64;
        let a = lcg_matrix(3, 6, &mut seed);
        let table = lcg_matrix(5, 6, &mut seed); // 5 rows, use only first 4
        let mut out = vec![0.0f32; 3 * 4];
        gemm_nt(3, 4, 6, a.data(), &table.data()[..4 * 6], &mut out);
        let mut expected = Matrix::zeros(3, 5);
        matmul_transpose_b(&a, &table, &mut expected);
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(out[i * 4 + j].to_bits(), expected.get(i, j).to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let mut out = Matrix::zeros(2, 3);
        matmul(&a, &b, &mut out);
    }
}
