//! Architecture-dispatched kernels for the **fast** inference tier.
//!
//! The exact tier ([`crate::made::ResMade::conditional_probs_into`]) calls the scalar
//! kernels in [`crate::tensor`] directly and is pinned bit-for-bit against the training
//! path.  The fast tier ([`crate::made::ResMade::conditional_probs_into_fast`]) routes the
//! same three GEMM shapes — plus the softmax normalisation — through this module, which
//! picks the widest implementation the running CPU supports:
//!
//! | kernel            | portable fallback        | x86_64 (`simd`)   | aarch64 (`simd`) |
//! |-------------------|--------------------------|-------------------|------------------|
//! | `matmul_blocked`  | scalar blocked (tensor)  | AVX2 + FMA, 4-row × 16-col broadcast-FMA tiles | NEON, 4-lane |
//! | `matmul_col_range`| scalar blocked (tensor)  | AVX2 + FMA        | NEON             |
//! | `gemm_nt`         | 8-chain unrolled scalar  | AVX2 + FMA horizontal dot | NEON |
//! | `softmax_rows_into`| scalar (loss)           | AVX2 max/scale, scalar `exp` | NEON |
//!
//! Dispatch is decided **once** per process: with the `simd` feature enabled on x86_64,
//! the first call probes `avx2`+`fma` via `is_x86_feature_detected!` and caches the
//! verdict in an atomic; on aarch64 NEON is part of the baseline ISA, so no probe is
//! needed.  Without the feature the portable fallback is selected at compile time.
//!
//! **Determinism contract (two-tier):** the portable fallback accumulates every output
//! element in the same ascending order as the [`crate::tensor`] kernels, so with `simd`
//! *off* the fast tier is still bit-identical to the exact tier (pinned by the
//! `dispatched_kernels_bit_identical_without_simd` test).  The SIMD paths reassociate the
//! f32 reductions (8 or 4 partial sums per chain) and therefore do **not** promise
//! bit-identity — fast-tier estimates are instead gated by the q-error-delta bound
//! asserted in `figure7d`/CI.  See `docs/kernels.md`.
//!
//! All `core::arch` use in the workspace lives in this one file, enforced by the
//! `intrinsics-outside-kernel` lint.

use crate::loss;
use crate::tensor::{self, Matrix};

/// Instruction set chosen by [`isa`] for the fast-tier kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Isa {
    /// Unrolled scalar code; bit-identical to the exact-tier kernels.
    Portable,
    /// 256-bit AVX2 with fused multiply-add (x86_64, runtime-detected).
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    Avx2Fma,
    /// 128-bit NEON (aarch64 baseline, no probe needed).
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    Neon,
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn isa() -> Isa {
    use std::sync::atomic::{AtomicU8, Ordering};
    // 0 = not probed yet, 1 = portable, 2 = AVX2+FMA.  Probing twice under a race is
    // harmless (the verdict is a pure function of the CPU), so Relaxed suffices.
    static PROBED: AtomicU8 = AtomicU8::new(0);
    match PROBED.load(Ordering::Relaxed) {
        1 => Isa::Portable,
        2 => Isa::Avx2Fma,
        _ => {
            let isa = if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                Isa::Avx2Fma
            } else {
                Isa::Portable
            };
            PROBED.store(if isa == Isa::Avx2Fma { 2 } else { 1 }, Ordering::Relaxed);
            isa
        }
    }
}

#[cfg(all(feature = "simd", target_arch = "aarch64"))]
fn isa() -> Isa {
    Isa::Neon
}

#[cfg(not(all(feature = "simd", any(target_arch = "x86_64", target_arch = "aarch64"))))]
fn isa() -> Isa {
    Isa::Portable
}

/// Human-readable name of the implementation the fast tier will run on this machine —
/// recorded by benches so `BENCH_inference.json` says what was measured.
pub fn isa_name() -> &'static str {
    match isa() {
        Isa::Portable => "portable",
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        Isa::Avx2Fma => "avx2+fma",
        #[cfg(all(feature = "simd", target_arch = "aarch64"))]
        Isa::Neon => "neon",
    }
}

/// Fast-tier `out = a (m×k) · b (k×n)`; same shape contract as
/// [`crate::tensor::matmul_blocked`].
pub fn matmul_blocked(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert_eq!(out.rows(), a.rows());
    assert_eq!(out.cols(), b.cols());
    match isa() {
        Isa::Portable => tensor::matmul_blocked(a, b, out),
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: `isa()` returned Avx2Fma, so the CPU was probed for avx2+fma.
        Isa::Avx2Fma => unsafe {
            avx2::matmul_rows(
                a.rows(),
                a.cols(),
                b.cols(),
                a.data(),
                b.data(),
                0,
                b.cols(),
                out.data_mut(),
            )
        },
        #[cfg(all(feature = "simd", target_arch = "aarch64"))]
        // SAFETY: NEON is part of the aarch64 baseline ISA.
        Isa::Neon => unsafe {
            neon::matmul_rows(
                a.rows(),
                a.cols(),
                b.cols(),
                a.data(),
                b.data(),
                0,
                b.cols(),
                out.data_mut(),
            )
        },
    }
}

/// Fast-tier `out = a · b[:, lo..hi]`; same shape contract as
/// [`crate::tensor::matmul_col_range`].
pub fn matmul_col_range(a: &Matrix, b: &Matrix, lo: usize, hi: usize, out: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert!(lo <= hi && hi <= b.cols(), "column slice out of bounds");
    assert_eq!(out.rows(), a.rows());
    assert_eq!(out.cols(), hi - lo);
    match isa() {
        Isa::Portable => tensor::matmul_col_range(a, b, lo, hi, out),
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: `isa()` returned Avx2Fma, so the CPU was probed for avx2+fma.
        Isa::Avx2Fma => unsafe {
            avx2::matmul_rows(
                a.rows(),
                a.cols(),
                b.cols(),
                a.data(),
                b.data(),
                lo,
                hi,
                out.data_mut(),
            )
        },
        #[cfg(all(feature = "simd", target_arch = "aarch64"))]
        // SAFETY: NEON is part of the aarch64 baseline ISA.
        Isa::Neon => unsafe {
            neon::matmul_rows(
                a.rows(),
                a.cols(),
                b.cols(),
                a.data(),
                b.data(),
                lo,
                hi,
                out.data_mut(),
            )
        },
    }
}

/// Fast-tier `out (m×n) = a (m×k) · bᵀ (n×k)`; same shape contract as
/// [`crate::tensor::gemm_nt`].
pub fn gemm_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert!(a.len() >= m * k, "a too short for m×k");
    assert!(b.len() >= n * k, "b too short for n×k");
    assert!(out.len() >= m * n, "out too short for m×n");
    match isa() {
        Isa::Portable => portable_gemm_nt(m, n, k, a, b, out),
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: `isa()` returned Avx2Fma, so the CPU was probed for avx2+fma.
        Isa::Avx2Fma => unsafe { avx2::gemm_nt(m, n, k, a, b, out) },
        #[cfg(all(feature = "simd", target_arch = "aarch64"))]
        // SAFETY: NEON is part of the aarch64 baseline ISA.
        Isa::Neon => unsafe { neon::gemm_nt(m, n, k, a, b, out) },
    }
}

/// Fast-tier row-wise softmax; same contract as [`crate::loss::softmax_rows_into`]
/// (resizes `out`, fully overwrites it).
pub fn softmax_rows_into(logits: &Matrix, out: &mut Matrix) {
    match isa() {
        Isa::Portable => loss::softmax_rows_into(logits, out),
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: `isa()` returned Avx2Fma, so the CPU was probed for avx2+fma.
        Isa::Avx2Fma => unsafe {
            out.resize(logits.rows(), logits.cols());
            for r in 0..logits.rows() {
                avx2::softmax_row(logits.row(r), out.row_mut(r));
            }
        },
        #[cfg(all(feature = "simd", target_arch = "aarch64"))]
        // SAFETY: NEON is part of the aarch64 baseline ISA.
        Isa::Neon => unsafe {
            out.resize(logits.rows(), logits.cols());
            for r in 0..logits.rows() {
                neon::softmax_row(logits.row(r), out.row_mut(r));
            }
        },
    }
}

/// Portable `gemm_nt`: eight independent dot-product chains per block instead of
/// [`crate::tensor::gemm_nt`]'s four, which is as much instruction-level parallelism as
/// scalar f32 code can express without reassociating any chain.  Each output element is
/// still a single ascending-`k` accumulation, so results are **bit-identical** to the
/// tensor kernel (and hence to the exact tier) — the property that makes fast mode
/// deterministic when the `simd` feature is off.
fn portable_gemm_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    const NR: usize = 8;
    for i in 0..m {
        let a_row = &a[i * k..i * k + k];
        let out_row = &mut out[i * n..i * n + n];
        let mut j = 0;
        while j + NR <= n {
            let rows: [&[f32]; NR] = [
                &b[j * k..(j + 1) * k],
                &b[(j + 1) * k..(j + 2) * k],
                &b[(j + 2) * k..(j + 3) * k],
                &b[(j + 3) * k..(j + 4) * k],
                &b[(j + 4) * k..(j + 5) * k],
                &b[(j + 5) * k..(j + 6) * k],
                &b[(j + 6) * k..(j + 7) * k],
                &b[(j + 7) * k..(j + 8) * k],
            ];
            let mut acc = [0.0f32; NR];
            for (p, &a_ip) in a_row.iter().enumerate() {
                for (c, row) in acc.iter_mut().zip(&rows) {
                    *c += a_ip * row[p];
                }
            }
            out_row[j..j + NR].copy_from_slice(&acc);
            j += NR;
        }
        while j < n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (x, y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            out_row[j] = acc;
            j += 1;
        }
    }
}

/// AVX2 + FMA implementations (x86_64, runtime-gated).
///
/// Every function is `unsafe` because it compiles with `target_feature(enable =
/// "avx2,fma")`; callers must have verified support via [`isa`].  Slice bounds are the
/// same invariants the dispatch wrappers assert, so all pointer arithmetic stays inside
/// the slices.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2 {
    use core::arch::x86_64::{
        __m256, _mm256_add_ps, _mm256_broadcast_ss, _mm256_castps256_ps128, _mm256_extractf128_ps,
        _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_max_ps, _mm256_mul_ps, _mm256_set1_ps,
        _mm256_setzero_ps, _mm256_storeu_ps, _mm_add_ps, _mm_add_ss, _mm_cvtss_f32, _mm_max_ps,
        _mm_max_ss, _mm_movehdup_ps, _mm_movehl_ps,
    };

    /// Horizontal sum of the 8 lanes.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn hsum(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let s = _mm_add_ps(lo, hi);
        let shuf = _mm_movehdup_ps(s);
        let sums = _mm_add_ps(s, shuf);
        let shuf = _mm_movehl_ps(shuf, sums);
        _mm_cvtss_f32(_mm_add_ss(sums, shuf))
    }

    /// Horizontal max of the 8 lanes.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn hmax(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let m = _mm_max_ps(lo, hi);
        let shuf = _mm_movehdup_ps(m);
        let m = _mm_max_ps(m, shuf);
        let shuf = _mm_movehl_ps(shuf, m);
        _mm_cvtss_f32(_mm_max_ss(m, shuf))
    }

    /// `out[:, 0..hi-lo] = a (m×k) · b[:, lo..hi]` where `b` is `k×bn` row-major.
    /// Serves both `matmul_blocked` (`lo = 0, hi = bn`) and `matmul_col_range`.
    ///
    /// Register blocking: 4 `a` rows × 16 output columns per micro-tile — 8 independent
    /// FMA accumulator chains (enough to cover FMA latency at 2/cycle) sharing every
    /// 2-register `b` panel load, which also cuts `b` traffic 4× versus row-at-a-time.
    /// The inner loop is branch-free: at these matrix sizes the occasional zero in `a`
    /// (post-ReLU activations) costs less as a wasted FMA than as a data-dependent
    /// branch in the hot loop.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn matmul_rows(
        m: usize,
        k: usize,
        bn: usize,
        a: &[f32],
        b: &[f32],
        lo: usize,
        hi: usize,
        out: &mut [f32],
    ) {
        let w = hi - lo;
        let mut i = 0;
        while i + 4 <= m {
            let a0 = a.as_ptr().add(i * k);
            let a1 = a.as_ptr().add((i + 1) * k);
            let a2 = a.as_ptr().add((i + 2) * k);
            let a3 = a.as_ptr().add((i + 3) * k);
            let o = out.as_mut_ptr().add(i * w);
            let mut j = 0;
            while j + 16 <= w {
                let mut c00 = _mm256_setzero_ps();
                let mut c01 = _mm256_setzero_ps();
                let mut c10 = _mm256_setzero_ps();
                let mut c11 = _mm256_setzero_ps();
                let mut c20 = _mm256_setzero_ps();
                let mut c21 = _mm256_setzero_ps();
                let mut c30 = _mm256_setzero_ps();
                let mut c31 = _mm256_setzero_ps();
                for p in 0..k {
                    let base = b.as_ptr().add(p * bn + lo + j);
                    let b0 = _mm256_loadu_ps(base);
                    let b1 = _mm256_loadu_ps(base.add(8));
                    let va = _mm256_broadcast_ss(&*a0.add(p));
                    c00 = _mm256_fmadd_ps(va, b0, c00);
                    c01 = _mm256_fmadd_ps(va, b1, c01);
                    let va = _mm256_broadcast_ss(&*a1.add(p));
                    c10 = _mm256_fmadd_ps(va, b0, c10);
                    c11 = _mm256_fmadd_ps(va, b1, c11);
                    let va = _mm256_broadcast_ss(&*a2.add(p));
                    c20 = _mm256_fmadd_ps(va, b0, c20);
                    c21 = _mm256_fmadd_ps(va, b1, c21);
                    let va = _mm256_broadcast_ss(&*a3.add(p));
                    c30 = _mm256_fmadd_ps(va, b0, c30);
                    c31 = _mm256_fmadd_ps(va, b1, c31);
                }
                _mm256_storeu_ps(o.add(j), c00);
                _mm256_storeu_ps(o.add(j + 8), c01);
                _mm256_storeu_ps(o.add(w + j), c10);
                _mm256_storeu_ps(o.add(w + j + 8), c11);
                _mm256_storeu_ps(o.add(2 * w + j), c20);
                _mm256_storeu_ps(o.add(2 * w + j + 8), c21);
                _mm256_storeu_ps(o.add(3 * w + j), c30);
                _mm256_storeu_ps(o.add(3 * w + j + 8), c31);
                j += 16;
            }
            while j + 8 <= w {
                let mut c0 = _mm256_setzero_ps();
                let mut c1 = _mm256_setzero_ps();
                let mut c2 = _mm256_setzero_ps();
                let mut c3 = _mm256_setzero_ps();
                for p in 0..k {
                    let vb = _mm256_loadu_ps(b.as_ptr().add(p * bn + lo + j));
                    c0 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*a0.add(p)), vb, c0);
                    c1 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*a1.add(p)), vb, c1);
                    c2 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*a2.add(p)), vb, c2);
                    c3 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*a3.add(p)), vb, c3);
                }
                _mm256_storeu_ps(o.add(j), c0);
                _mm256_storeu_ps(o.add(w + j), c1);
                _mm256_storeu_ps(o.add(2 * w + j), c2);
                _mm256_storeu_ps(o.add(3 * w + j), c3);
                j += 8;
            }
            while j < w {
                for r in 0..4 {
                    let ar = a.as_ptr().add((i + r) * k);
                    let mut acc = 0.0f32;
                    for p in 0..k {
                        acc += *ar.add(p) * b[p * bn + lo + j];
                    }
                    *o.add(r * w + j) = acc;
                }
                j += 1;
            }
            i += 4;
        }
        // Remainder rows, one at a time.
        while i < m {
            let a_row = &a[i * k..i * k + k];
            let out_row = &mut out[i * w..i * w + w];
            let mut j = 0;
            while j + 8 <= w {
                let mut acc0 = _mm256_setzero_ps();
                let mut acc1 = _mm256_setzero_ps();
                let mut p = 0;
                while p + 2 <= k {
                    let base = b.as_ptr().add(p * bn + lo + j);
                    acc0 = _mm256_fmadd_ps(
                        _mm256_broadcast_ss(&a_row[p]),
                        _mm256_loadu_ps(base),
                        acc0,
                    );
                    acc1 = _mm256_fmadd_ps(
                        _mm256_broadcast_ss(&a_row[p + 1]),
                        _mm256_loadu_ps(base.add(bn)),
                        acc1,
                    );
                    p += 2;
                }
                if p < k {
                    acc0 = _mm256_fmadd_ps(
                        _mm256_broadcast_ss(&a_row[p]),
                        _mm256_loadu_ps(b.as_ptr().add(p * bn + lo + j)),
                        acc0,
                    );
                }
                _mm256_storeu_ps(out_row.as_mut_ptr().add(j), _mm256_add_ps(acc0, acc1));
                j += 8;
            }
            while j < w {
                let mut acc = 0.0f32;
                for (p, &a_ip) in a_row.iter().enumerate() {
                    if a_ip == 0.0 {
                        continue;
                    }
                    acc += a_ip * b[p * bn + lo + j];
                }
                out_row[j] = acc;
                j += 1;
            }
            i += 1;
        }
    }

    /// `out (m×n) = a (m×k) · bᵀ (n×k)`: 8-wide FMA dot products, four `b` rows per pass
    /// so each `a` load is reused.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn gemm_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        for i in 0..m {
            let a_row = &a[i * k..i * k + k];
            let out_row = &mut out[i * n..i * n + n];
            let mut j = 0;
            while j + 4 <= n {
                let mut acc0 = _mm256_setzero_ps();
                let mut acc1 = _mm256_setzero_ps();
                let mut acc2 = _mm256_setzero_ps();
                let mut acc3 = _mm256_setzero_ps();
                let b0 = b.as_ptr().add(j * k);
                let b1 = b.as_ptr().add((j + 1) * k);
                let b2 = b.as_ptr().add((j + 2) * k);
                let b3 = b.as_ptr().add((j + 3) * k);
                let mut p = 0;
                while p + 8 <= k {
                    let va = _mm256_loadu_ps(a_row.as_ptr().add(p));
                    acc0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b0.add(p)), acc0);
                    acc1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b1.add(p)), acc1);
                    acc2 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b2.add(p)), acc2);
                    acc3 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b3.add(p)), acc3);
                    p += 8;
                }
                let mut s = [hsum(acc0), hsum(acc1), hsum(acc2), hsum(acc3)];
                while p < k {
                    let av = a_row[p];
                    s[0] += av * *b0.add(p);
                    s[1] += av * *b1.add(p);
                    s[2] += av * *b2.add(p);
                    s[3] += av * *b3.add(p);
                    p += 1;
                }
                out_row[j..j + 4].copy_from_slice(&s);
                j += 4;
            }
            while j < n {
                let b_row = b.as_ptr().add(j * k);
                let mut acc = _mm256_setzero_ps();
                let mut p = 0;
                while p + 8 <= k {
                    acc = _mm256_fmadd_ps(
                        _mm256_loadu_ps(a_row.as_ptr().add(p)),
                        _mm256_loadu_ps(b_row.add(p)),
                        acc,
                    );
                    p += 8;
                }
                let mut s = hsum(acc);
                while p < k {
                    s += a_row[p] * *b_row.add(p);
                    p += 1;
                }
                out_row[j] = s;
                j += 1;
            }
        }
    }

    /// One softmax row: vectorised max reduction, scalar `exp` (accuracy — a polynomial
    /// `exp` would add its own error on top of bf16 quantisation), vectorised `1/sum`
    /// scale.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn softmax_row(row: &[f32], out: &mut [f32]) {
        let n = row.len();
        let mut max = f32::NEG_INFINITY;
        let mut p = 0;
        if n >= 8 {
            let mut vmax = _mm256_loadu_ps(row.as_ptr());
            p = 8;
            while p + 8 <= n {
                vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(row.as_ptr().add(p)));
                p += 8;
            }
            max = hmax(vmax);
        }
        while p < n {
            max = max.max(row[p]);
            p += 1;
        }
        let mut sum = 0.0f32;
        for (o, &v) in out.iter_mut().zip(row) {
            *o = (v - max).exp();
            sum += *o;
        }
        if sum > 0.0 {
            let inv = 1.0 / sum;
            let vinv = _mm256_set1_ps(inv);
            let mut p = 0;
            while p + 8 <= n {
                let v = _mm256_loadu_ps(out.as_ptr().add(p));
                _mm256_storeu_ps(out.as_mut_ptr().add(p), _mm256_mul_ps(v, vinv));
                p += 8;
            }
            while p < n {
                out[p] *= inv;
                p += 1;
            }
        }
    }
}

/// NEON implementations (aarch64; part of the baseline ISA, so no runtime probe).
///
/// `unsafe` for the same reason as the AVX2 module: `target_feature` + raw pointer loads
/// whose bounds the dispatch wrappers assert.
#[cfg(all(feature = "simd", target_arch = "aarch64"))]
mod neon {
    use core::arch::aarch64::{
        vaddvq_f32, vdupq_n_f32, vfmaq_f32, vld1q_f32, vmaxnmvq_f32, vmaxq_f32, vmulq_f32,
        vst1q_f32,
    };

    /// See `avx2::matmul_rows`; 4-lane panels instead of 8.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "neon")]
    pub unsafe fn matmul_rows(
        m: usize,
        k: usize,
        bn: usize,
        a: &[f32],
        b: &[f32],
        lo: usize,
        hi: usize,
        out: &mut [f32],
    ) {
        let w = hi - lo;
        for i in 0..m {
            let a_row = &a[i * k..i * k + k];
            let out_row = &mut out[i * w..i * w + w];
            let mut j = 0;
            while j + 16 <= w {
                let mut acc0 = vdupq_n_f32(0.0);
                let mut acc1 = vdupq_n_f32(0.0);
                let mut acc2 = vdupq_n_f32(0.0);
                let mut acc3 = vdupq_n_f32(0.0);
                for (p, &a_ip) in a_row.iter().enumerate() {
                    if a_ip == 0.0 {
                        continue;
                    }
                    let va = vdupq_n_f32(a_ip);
                    let base = b.as_ptr().add(p * bn + lo + j);
                    acc0 = vfmaq_f32(acc0, va, vld1q_f32(base));
                    acc1 = vfmaq_f32(acc1, va, vld1q_f32(base.add(4)));
                    acc2 = vfmaq_f32(acc2, va, vld1q_f32(base.add(8)));
                    acc3 = vfmaq_f32(acc3, va, vld1q_f32(base.add(12)));
                }
                let dst = out_row.as_mut_ptr().add(j);
                vst1q_f32(dst, acc0);
                vst1q_f32(dst.add(4), acc1);
                vst1q_f32(dst.add(8), acc2);
                vst1q_f32(dst.add(12), acc3);
                j += 16;
            }
            while j + 4 <= w {
                let mut acc = vdupq_n_f32(0.0);
                for (p, &a_ip) in a_row.iter().enumerate() {
                    if a_ip == 0.0 {
                        continue;
                    }
                    acc = vfmaq_f32(
                        acc,
                        vdupq_n_f32(a_ip),
                        vld1q_f32(b.as_ptr().add(p * bn + lo + j)),
                    );
                }
                vst1q_f32(out_row.as_mut_ptr().add(j), acc);
                j += 4;
            }
            while j < w {
                let mut acc = 0.0f32;
                for (p, &a_ip) in a_row.iter().enumerate() {
                    if a_ip == 0.0 {
                        continue;
                    }
                    acc += a_ip * b[p * bn + lo + j];
                }
                out_row[j] = acc;
                j += 1;
            }
        }
    }

    /// See `avx2::gemm_nt`; 4-wide FMA dot products.
    #[target_feature(enable = "neon")]
    pub unsafe fn gemm_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
        for i in 0..m {
            let a_row = &a[i * k..i * k + k];
            let out_row = &mut out[i * n..i * n + n];
            let mut j = 0;
            while j + 4 <= n {
                let mut acc0 = vdupq_n_f32(0.0);
                let mut acc1 = vdupq_n_f32(0.0);
                let mut acc2 = vdupq_n_f32(0.0);
                let mut acc3 = vdupq_n_f32(0.0);
                let b0 = b.as_ptr().add(j * k);
                let b1 = b.as_ptr().add((j + 1) * k);
                let b2 = b.as_ptr().add((j + 2) * k);
                let b3 = b.as_ptr().add((j + 3) * k);
                let mut p = 0;
                while p + 4 <= k {
                    let va = vld1q_f32(a_row.as_ptr().add(p));
                    acc0 = vfmaq_f32(acc0, va, vld1q_f32(b0.add(p)));
                    acc1 = vfmaq_f32(acc1, va, vld1q_f32(b1.add(p)));
                    acc2 = vfmaq_f32(acc2, va, vld1q_f32(b2.add(p)));
                    acc3 = vfmaq_f32(acc3, va, vld1q_f32(b3.add(p)));
                    p += 4;
                }
                let mut s = [
                    vaddvq_f32(acc0),
                    vaddvq_f32(acc1),
                    vaddvq_f32(acc2),
                    vaddvq_f32(acc3),
                ];
                while p < k {
                    let av = a_row[p];
                    s[0] += av * *b0.add(p);
                    s[1] += av * *b1.add(p);
                    s[2] += av * *b2.add(p);
                    s[3] += av * *b3.add(p);
                    p += 1;
                }
                out_row[j..j + 4].copy_from_slice(&s);
                j += 4;
            }
            while j < n {
                let b_row = b.as_ptr().add(j * k);
                let mut acc = vdupq_n_f32(0.0);
                let mut p = 0;
                while p + 4 <= k {
                    acc = vfmaq_f32(
                        acc,
                        vld1q_f32(a_row.as_ptr().add(p)),
                        vld1q_f32(b_row.add(p)),
                    );
                    p += 4;
                }
                let mut s = vaddvq_f32(acc);
                while p < k {
                    s += a_row[p] * *b_row.add(p);
                    p += 1;
                }
                out_row[j] = s;
                j += 1;
            }
        }
    }

    /// See `avx2::softmax_row`.
    #[target_feature(enable = "neon")]
    pub unsafe fn softmax_row(row: &[f32], out: &mut [f32]) {
        let n = row.len();
        let mut max = f32::NEG_INFINITY;
        let mut p = 0;
        if n >= 4 {
            let mut vmax = vld1q_f32(row.as_ptr());
            p = 4;
            while p + 4 <= n {
                vmax = vmaxq_f32(vmax, vld1q_f32(row.as_ptr().add(p)));
                p += 4;
            }
            max = vmaxnmvq_f32(vmax);
        }
        while p < n {
            max = max.max(row[p]);
            p += 1;
        }
        let mut sum = 0.0f32;
        for (o, &v) in out.iter_mut().zip(row) {
            *o = (v - max).exp();
            sum += *o;
        }
        if sum > 0.0 {
            let inv = 1.0 / sum;
            let vinv = vdupq_n_f32(inv);
            let mut p = 0;
            while p + 4 <= n {
                vst1q_f32(
                    out.as_mut_ptr().add(p),
                    vmulq_f32(vld1q_f32(out.as_ptr().add(p)), vinv),
                );
                p += 4;
            }
            while p < n {
                out[p] *= inv;
                p += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random matrix, same generator as the tensor tests (exact
    /// zeros sprinkled in to exercise the zero-skip branches).
    fn lcg_matrix(rows: usize, cols: usize, seed: &mut u64) -> Matrix {
        let data = (0..rows * cols)
            .map(|_| {
                *seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let v = ((*seed >> 33) as f32 / (1u64 << 31) as f32) - 1.0;
                if (*seed >> 20) & 0xF == 0 {
                    0.0
                } else {
                    v
                }
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    const SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (1, 7, 5),
        (3, 16, 8),
        (4, 24, 30),
        (5, 32, 97),
        (17, 6, 4),
        (2, 180, 33),
        (6, 64, 64),
    ];

    #[test]
    fn isa_name_is_stable() {
        let name = isa_name();
        assert!(["portable", "avx2+fma", "neon"].contains(&name));
        // The probe is cached: a second call must agree.
        assert_eq!(isa_name(), name);
    }

    /// The portable `gemm_nt` must be bit-identical to the tensor kernel regardless of
    /// features — it is the fallback the two-tier determinism contract leans on.
    #[test]
    fn portable_gemm_nt_bit_identical_to_tensor() {
        let mut seed = 0xBEEF_u64;
        for &(m, k, n) in SHAPES {
            let a = lcg_matrix(m, k, &mut seed);
            let bt = lcg_matrix(n, k, &mut seed);
            let mut reference = vec![f32::NAN; m * n];
            tensor::gemm_nt(m, n, k, a.data(), bt.data(), &mut reference);
            let mut fast = vec![f32::NAN; m * n];
            portable_gemm_nt(m, n, k, a.data(), bt.data(), &mut fast);
            for (i, (x, y)) in reference.iter().zip(&fast).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "{m}x{k}x{n} element {i}");
            }
        }
    }

    /// With `simd` off, every dispatched kernel resolves to the portable fallback and
    /// must agree with the exact-tier kernels bit-for-bit.
    #[cfg(not(feature = "simd"))]
    #[test]
    fn dispatched_kernels_bit_identical_without_simd() {
        assert_eq!(isa_name(), "portable");
        let mut seed = 0xD15A_u64;
        for &(m, k, n) in SHAPES {
            let a = lcg_matrix(m, k, &mut seed);
            let b = lcg_matrix(k, n, &mut seed);
            let mut reference = Matrix::zeros(m, n);
            tensor::matmul_blocked(&a, &b, &mut reference);
            let mut fast = Matrix::zeros(m, n);
            matmul_blocked(&a, &b, &mut fast);
            for (x, y) in reference.data().iter().zip(fast.data()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }

            let lo = n / 3;
            let hi = (2 * n / 3).max(lo);
            let mut ref_slice = Matrix::zeros(m, hi - lo);
            tensor::matmul_col_range(&a, &b, lo, hi, &mut ref_slice);
            let mut fast_slice = Matrix::zeros(m, hi - lo);
            matmul_col_range(&a, &b, lo, hi, &mut fast_slice);
            for (x, y) in ref_slice.data().iter().zip(fast_slice.data()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }

            let bt = lcg_matrix(n, k, &mut seed);
            let mut ref_nt = vec![0.0f32; m * n];
            tensor::gemm_nt(m, n, k, a.data(), bt.data(), &mut ref_nt);
            let mut fast_nt = vec![0.0f32; m * n];
            gemm_nt(m, n, k, a.data(), bt.data(), &mut fast_nt);
            for (x, y) in ref_nt.iter().zip(&fast_nt) {
                assert_eq!(x.to_bits(), y.to_bits());
            }

            let logits = lcg_matrix(m, n, &mut seed);
            let mut ref_sm = Matrix::zeros(0, 0);
            loss::softmax_rows_into(&logits, &mut ref_sm);
            let mut fast_sm = Matrix::zeros(0, 0);
            softmax_rows_into(&logits, &mut fast_sm);
            for (x, y) in ref_sm.data().iter().zip(fast_sm.data()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    /// Whatever ISA dispatch picks, results must agree with the exact-tier kernels to
    /// tight relative tolerance — SIMD reassociation moves only the last few ulps at
    /// these reduction lengths.
    #[test]
    fn dispatched_kernels_match_reference_numerically() {
        fn assert_close(x: f32, y: f32, what: &str) {
            let tol = 1e-5 * x.abs().max(y.abs()).max(1.0);
            assert!((x - y).abs() <= tol, "{what}: {x} vs {y}");
        }
        let mut seed = 0xACC0_u64;
        for &(m, k, n) in SHAPES {
            let a = lcg_matrix(m, k, &mut seed);
            let b = lcg_matrix(k, n, &mut seed);
            let mut reference = Matrix::zeros(m, n);
            tensor::matmul_blocked(&a, &b, &mut reference);
            let mut fast = Matrix::zeros(m, n);
            fast.data_mut().iter_mut().for_each(|v| *v = f32::NAN); // must be overwritten
            matmul_blocked(&a, &b, &mut fast);
            for (x, y) in reference.data().iter().zip(fast.data()) {
                assert_close(*x, *y, &format!("matmul_blocked {m}x{k}x{n}"));
            }

            let lo = n / 3;
            let hi = (2 * n / 3).max(lo);
            let mut ref_slice = Matrix::zeros(m, hi - lo);
            tensor::matmul_col_range(&a, &b, lo, hi, &mut ref_slice);
            let mut fast_slice = Matrix::zeros(m, hi - lo);
            matmul_col_range(&a, &b, lo, hi, &mut fast_slice);
            for (x, y) in ref_slice.data().iter().zip(fast_slice.data()) {
                assert_close(*x, *y, &format!("matmul_col_range {m}x{k}x{n}"));
            }

            let bt = lcg_matrix(n, k, &mut seed);
            let mut ref_nt = vec![0.0f32; m * n];
            tensor::gemm_nt(m, n, k, a.data(), bt.data(), &mut ref_nt);
            let mut fast_nt = vec![f32::NAN; m * n];
            gemm_nt(m, n, k, a.data(), bt.data(), &mut fast_nt);
            for (x, y) in ref_nt.iter().zip(&fast_nt) {
                assert_close(*x, *y, &format!("gemm_nt {m}x{k}x{n}"));
            }

            let logits = lcg_matrix(m, n, &mut seed);
            let mut ref_sm = Matrix::zeros(0, 0);
            loss::softmax_rows_into(&logits, &mut ref_sm);
            let mut fast_sm = Matrix::from_vec(1, 2, vec![9.0; 2]); // stale shape: must resize
            softmax_rows_into(&logits, &mut fast_sm);
            assert_eq!((fast_sm.rows(), fast_sm.cols()), (m, n));
            for r in 0..m {
                let s: f32 = fast_sm.row(r).iter().sum();
                assert!((s - 1.0).abs() < 1e-4, "softmax row {r} sums to {s}");
            }
            for (x, y) in ref_sm.data().iter().zip(fast_sm.data()) {
                assert_close(*x, *y, &format!("softmax {m}x{n}"));
            }
        }
    }

    /// `gemm_nt` must only read the `n×k` prefix of `b` (the logit head passes the first
    /// `domain` rows of a `domain+1`-row embedding table).
    #[test]
    fn gemm_nt_accepts_prefix_of_taller_b() {
        let mut seed = 77u64;
        let a = lcg_matrix(3, 19, &mut seed);
        let table = lcg_matrix(6, 19, &mut seed);
        let mut expected = vec![0.0f32; 3 * 5];
        tensor::gemm_nt(3, 5, 19, a.data(), &table.data()[..5 * 19], &mut expected);
        let mut out = vec![0.0f32; 3 * 5];
        gemm_nt(3, 5, 19, a.data(), &table.data()[..5 * 19], &mut out);
        for (x, y) in expected.iter().zip(&out) {
            let tol = 1e-5 * x.abs().max(1.0);
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let mut out = Matrix::zeros(2, 3);
        matmul_blocked(&a, &b, &mut out);
    }
}
