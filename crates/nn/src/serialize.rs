//! Flat binary (de)serialisation of model parameters.
//!
//! The format is intentionally simple: a magic header, the number of parameter tensors, and
//! for each tensor its shape followed by little-endian `f32` data.  It is used to persist a
//! trained estimator, to clone models cheaply for the update experiments, and to report the
//! on-disk model size.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::made::ResMade;

const MAGIC: u32 = 0x4E43_4D44; // "NCMD"

/// Serialises the parameters of a model (in [`ResMade::params`] order) to bytes.
pub fn model_to_bytes(model: &ResMade) -> Bytes {
    let params = model.params();
    let mut buf = BytesMut::with_capacity(16 + model.num_params() * 4);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(params.len() as u32);
    for p in params {
        buf.put_u32_le(p.value.rows() as u32);
        buf.put_u32_le(p.value.cols() as u32);
        for &v in p.value.data() {
            buf.put_f32_le(v);
        }
    }
    buf.freeze()
}

/// Errors from [`load_params_from_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// Wrong magic number or truncated header.
    BadHeader,
    /// Parameter count or a shape does not match the target model.
    ShapeMismatch {
        /// Index of the offending parameter tensor.
        index: usize,
    },
    /// The byte stream ended early.
    Truncated,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::BadHeader => write!(f, "bad magic number or truncated header"),
            LoadError::ShapeMismatch { index } => {
                write!(
                    f,
                    "parameter {index} has a different shape than the target model"
                )
            }
            LoadError::Truncated => write!(f, "byte stream ended before all parameters were read"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Loads parameters serialised by [`model_to_bytes`] into an existing model of the *same
/// architecture* (same config).
pub fn load_params_from_bytes(model: &mut ResMade, bytes: &[u8]) -> Result<(), LoadError> {
    let mut buf = bytes;
    if buf.remaining() < 8 || buf.get_u32_le() != MAGIC {
        return Err(LoadError::BadHeader);
    }
    let count = buf.get_u32_le() as usize;
    let mut params = model.params_mut();
    if count != params.len() {
        return Err(LoadError::ShapeMismatch { index: 0 });
    }
    for (i, p) in params.iter_mut().enumerate() {
        if buf.remaining() < 8 {
            return Err(LoadError::Truncated);
        }
        let rows = buf.get_u32_le() as usize;
        let cols = buf.get_u32_le() as usize;
        if rows != p.value.rows() || cols != p.value.cols() {
            return Err(LoadError::ShapeMismatch { index: i });
        }
        if buf.remaining() < rows * cols * 4 {
            return Err(LoadError::Truncated);
        }
        for v in p.value.data_mut() {
            *v = buf.get_f32_le();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::made::MadeConfig;

    fn model(seed: u64) -> ResMade {
        ResMade::new(MadeConfig {
            domains: vec![5, 3, 7],
            d_emb: 4,
            d_hidden: 16,
            num_blocks: 1,
            seed,
        })
    }

    #[test]
    fn roundtrip_restores_exact_predictions() {
        let original = model(1);
        let bytes = model_to_bytes(&original);
        assert!(bytes.len() >= original.num_params() * 4);
        let mut target = model(99); // different init
        let before = target.conditional_probs(&[vec![1, 0, 0]], 2);
        load_params_from_bytes(&mut target, &bytes).unwrap();
        let after = target.conditional_probs(&[vec![1, 0, 0]], 2);
        let reference = original.conditional_probs(&[vec![1, 0, 0]], 2);
        assert_ne!(before.data(), reference.data());
        assert_eq!(after.data(), reference.data());
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        let original = model(1);
        let bytes = model_to_bytes(&original);
        let mut target = model(2);
        assert_eq!(
            load_params_from_bytes(&mut target, &bytes[..3]),
            Err(LoadError::BadHeader)
        );
        assert_eq!(
            load_params_from_bytes(&mut target, &bytes[..bytes.len() / 2]),
            Err(LoadError::Truncated)
        );
        let mut wrong_magic = bytes.to_vec();
        wrong_magic[0] ^= 0xFF;
        assert_eq!(
            load_params_from_bytes(&mut target, &wrong_magic),
            Err(LoadError::BadHeader)
        );
        // Mismatched architecture.
        let mut other = ResMade::new(MadeConfig {
            domains: vec![5, 3],
            d_emb: 4,
            d_hidden: 16,
            num_blocks: 1,
            seed: 3,
        });
        assert!(matches!(
            load_params_from_bytes(&mut other, &bytes),
            Err(LoadError::ShapeMismatch { .. })
        ));
        for e in [
            LoadError::BadHeader,
            LoadError::Truncated,
            LoadError::ShapeMismatch { index: 1 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
