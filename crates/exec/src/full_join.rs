//! Brute-force enumeration of the augmented full outer join.
//!
//! NeuroCard's probability space is the full outer join of all schema tables, augmented
//! with a virtual `⊥` (NULL) tuple per table (paper §4.1, "NULL handling"): a tuple of the
//! join that has no partner in some table takes that table's `⊥` tuple, and the all-`⊥`
//! combination is excluded.  This module enumerates that space explicitly.  The cost is the
//! size of the full join itself, so it is only usable on tiny inputs — which is exactly its
//! purpose: tests use it to validate the linear-time join-count DP and the unbiasedness of
//! the sampler against ground truth.

use nc_schema::JoinSchema;
use nc_storage::{Database, RowId, Table, Value};

/// One row of the augmented full outer join: for every schema table (in
/// [`JoinSchema::bfs_order`]) either a concrete base-table row or `None` = the `⊥` tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FullJoinRow {
    /// Table names in BFS order (shared by all rows of one enumeration).
    pub tables: Vec<String>,
    /// Per-table assignment aligned with `tables`.
    pub assignment: Vec<Option<RowId>>,
}

impl FullJoinRow {
    /// The assignment for `table`, or `None` if the table is absent from the schema.
    pub fn row_of(&self, table: &str) -> Option<Option<RowId>> {
        self.tables
            .iter()
            .position(|t| t == table)
            .map(|i| self.assignment[i])
    }

    /// The value of `table.column` in this join row (NULL when the table's slot is `⊥`).
    pub fn value(&self, db: &Database, table: &str, column: &str) -> Value {
        match self.row_of(table).flatten() {
            Some(r) => db.expect_table(table).value(column, r),
            None => Value::Null,
        }
    }

    /// The paper's indicator column `1_T`: 1 when the row has a real partner in `table`.
    pub fn indicator(&self, table: &str) -> i64 {
        match self.row_of(table).flatten() {
            Some(_) => 1,
            None => 0,
        }
    }
}

/// Enumerates every row of the augmented full outer join of the whole schema.
///
/// Complexity is the size of the full join; intended for tiny test databases only.
pub fn enumerate_full_join(db: &Database, schema: &JoinSchema) -> Vec<FullJoinRow> {
    let order: Vec<String> = schema.bfs_order().to_vec();
    let root = schema.root().to_string();
    let root_table = db.expect_table(&root);

    // Partial assignments, indexed in lock-step with `order`.
    let mut partials: Vec<Vec<Option<RowId>>> = Vec::new();
    for r in 0..root_table.num_rows() {
        partials.push(vec![Some(r as RowId)]);
    }
    partials.push(vec![None]); // the root ⊥ tuple

    for child in order.iter().skip(1) {
        let parent = schema
            .parent(child)
            .expect("non-root has a parent")
            .to_string();
        let parent_idx = order
            .iter()
            .position(|t| *t == parent)
            .expect("parent visited");
        let edges = schema.edges_between(&parent, child);
        let parent_cols: Vec<String> = edges
            .iter()
            .map(|e| e.endpoint(&parent).expect("touches parent").column.clone())
            .collect();
        let child_cols: Vec<String> = edges
            .iter()
            .map(|e| e.endpoint(child).expect("touches child").column.clone())
            .collect();
        let parent_table = db.expect_table(&parent);
        let child_table = db.expect_table(child);

        let mut next = Vec::new();
        for partial in &partials {
            let candidates = candidates_for(
                parent_table,
                child_table,
                &parent_cols,
                &child_cols,
                partial[parent_idx],
            );
            for c in candidates {
                let mut extended = partial.clone();
                extended.push(c);
                next.push(extended);
            }
        }
        partials = next;
    }

    partials
        .into_iter()
        .filter(|assignment| assignment.iter().any(|a| a.is_some()))
        .map(|assignment| FullJoinRow {
            tables: order.clone(),
            assignment,
        })
        .collect()
}

/// Join partners of one parent slot in the child table, following the paper's ⊥ rules.
fn candidates_for(
    parent: &Table,
    child: &Table,
    parent_cols: &[String],
    child_cols: &[String],
    parent_slot: Option<RowId>,
) -> Vec<Option<RowId>> {
    let child_key = |r: usize| -> Vec<Value> {
        child_cols
            .iter()
            .map(|c| child.value(c, r as RowId))
            .collect()
    };
    match parent_slot {
        Some(parent_row) => {
            let key: Vec<Value> = parent_cols
                .iter()
                .map(|c| parent.value(c, parent_row))
                .collect();
            if key.iter().any(Value::is_null) {
                return vec![None];
            }
            let matches: Vec<Option<RowId>> = (0..child.num_rows())
                .filter(|&r| child_key(r) == key)
                .map(|r| Some(r as RowId))
                .collect();
            if matches.is_empty() {
                vec![None]
            } else {
                matches
            }
        }
        None => {
            // Parent is ⊥: child rows with no parent match (including NULL-keyed rows),
            // plus the child's own ⊥ so unmatched chains deeper in the tree stay reachable.
            let parent_keys: Vec<Vec<Value>> = (0..parent.num_rows())
                .map(|r| {
                    parent_cols
                        .iter()
                        .map(|c| parent.value(c, r as RowId))
                        .collect()
                })
                .collect();
            let mut out: Vec<Option<RowId>> = (0..child.num_rows())
                .filter(|&r| {
                    let k = child_key(r);
                    k.iter().any(Value::is_null) || !parent_keys.contains(&k)
                })
                .map(|r| Some(r as RowId))
                .collect();
            out.push(None);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_schema::JoinEdge;
    use nc_storage::TableBuilder;

    /// The paper's Figure 4 data.
    fn figure4_db() -> (Database, JoinSchema) {
        let mut db = Database::new();
        let mut a = TableBuilder::new("A", &["x"]);
        a.push_row(vec![Value::Int(1)]);
        a.push_row(vec![Value::Int(2)]);
        db.add_table(a.finish());
        let mut b = TableBuilder::new("B", &["x", "y"]);
        b.push_row(vec![Value::Int(1), Value::from("a")]);
        b.push_row(vec![Value::Int(2), Value::from("b")]);
        b.push_row(vec![Value::Int(2), Value::from("c")]);
        db.add_table(b.finish());
        let mut c = TableBuilder::new("C", &["y"]);
        c.push_row(vec![Value::from("c")]);
        c.push_row(vec![Value::from("c")]);
        c.push_row(vec![Value::from("d")]);
        db.add_table(c.finish());
        let schema = JoinSchema::new(
            vec!["A".into(), "B".into(), "C".into()],
            vec![JoinEdge::parse("A.x", "B.x"), JoinEdge::parse("B.y", "C.y")],
            "A",
        )
        .unwrap();
        (db, schema)
    }

    #[test]
    fn figure4_full_join_has_five_rows() {
        let (db, schema) = figure4_db();
        let rows = enumerate_full_join(&db, &schema);
        // Figure 4c lists exactly 5 rows.
        assert_eq!(rows.len(), 5);
        // |A.x = 2| in the full join is 3 (as the paper notes above Q1).
        let x2 = rows
            .iter()
            .filter(|r| r.value(&db, "A", "x") == Value::Int(2))
            .count();
        assert_eq!(x2, 3);
        // Exactly one row has a NULL A slot (the unmatched C row 'd').
        let null_a = rows.iter().filter(|r| r.indicator("A") == 0).count();
        assert_eq!(null_a, 1);
        // That row also has B = ⊥ and C = the 'd' row.
        let row = rows.iter().find(|r| r.indicator("A") == 0).unwrap();
        assert_eq!(row.indicator("B"), 0);
        assert_eq!(row.value(&db, "C", "y"), Value::from("d"));
        // No all-NULL row exists.
        assert!(rows
            .iter()
            .all(|r| r.assignment.iter().any(|a| a.is_some())));
    }

    #[test]
    fn inner_join_rows_match_indicators() {
        let (db, schema) = figure4_db();
        let rows = enumerate_full_join(&db, &schema);
        // Rows with all indicators = 1 are exactly the inner join (2 rows, per Figure 4d Q1
        // with the filter removed the count over A.x=2 is 2).
        let inner = rows
            .iter()
            .filter(|r| ["A", "B", "C"].iter().all(|t| r.indicator(t) == 1))
            .count();
        assert_eq!(inner, 2);
    }

    #[test]
    fn value_and_row_of_accessors() {
        let (db, schema) = figure4_db();
        let rows = enumerate_full_join(&db, &schema);
        let some_row = &rows[0];
        assert!(some_row.row_of("A").is_some());
        assert!(some_row.row_of("unknown").is_none());
        // Values of a ⊥ slot are NULL.
        let null_a = rows.iter().find(|r| r.indicator("A") == 0).unwrap();
        assert_eq!(null_a.value(&db, "A", "x"), Value::Null);
    }
}
