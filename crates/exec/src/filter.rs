//! Filter evaluation.

use nc_schema::{Query, TableFilter};
use nc_storage::Table;

/// Evaluates the conjunction of `filters` against every row of `table`, returning a mask
/// with `true` for rows that satisfy *all* of them.
///
/// Filters referencing other tables are ignored (callers usually pass
/// [`Query::filters_on`] output, but passing the whole filter list is allowed).
pub fn filter_mask(table: &Table, filters: &[&TableFilter]) -> Vec<bool> {
    let relevant: Vec<&TableFilter> = filters
        .iter()
        .copied()
        .filter(|f| f.table == table.name())
        .collect();
    let mut mask = vec![true; table.num_rows()];
    for f in relevant {
        let col = table
            .column(&f.column)
            .unwrap_or_else(|| panic!("filter references missing column {}.{}", f.table, f.column));
        for (row, keep) in mask.iter_mut().enumerate() {
            if *keep && !f.predicate.matches(&col.value(row)) {
                *keep = false;
            }
        }
    }
    mask
}

/// Convenience: the mask for one table of a query.
pub fn query_filter_mask(table: &Table, query: &Query) -> Vec<bool> {
    filter_mask(table, &query.filters_on(table.name()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_schema::Predicate;
    use nc_storage::{TableBuilder, Value};

    fn table() -> Table {
        let mut b = TableBuilder::new("t", &["id", "year"]);
        for (id, year) in [(1, 1990), (2, 2000), (3, 2010), (4, 2020)] {
            b.push_row(vec![Value::Int(id), Value::Int(year)]);
        }
        b.push_row(vec![Value::Int(5), Value::Null]);
        b.finish()
    }

    #[test]
    fn conjunction_of_filters() {
        let t = table();
        let f1 = TableFilter::new("t", "year", Predicate::ge(2000i64));
        let f2 = TableFilter::new("t", "year", Predicate::lt(2020i64));
        let mask = filter_mask(&t, &[&f1, &f2]);
        assert_eq!(mask, vec![false, true, true, false, false]);
    }

    #[test]
    fn filters_for_other_tables_ignored() {
        let t = table();
        let other = TableFilter::new("u", "year", Predicate::eq(0i64));
        let mask = filter_mask(&t, &[&other]);
        assert!(mask.iter().all(|&m| m));
    }

    #[test]
    fn query_mask_uses_only_matching_table() {
        let t = table();
        let q = nc_schema::Query::join(&["t", "u"])
            .filter("t", "year", Predicate::le(2000i64))
            .filter("u", "x", Predicate::eq(1i64));
        let mask = query_filter_mask(&t, &q);
        assert_eq!(mask, vec![true, true, false, false, false]);
    }

    #[test]
    #[should_panic(expected = "missing column")]
    fn missing_column_panics() {
        let t = table();
        let f = TableFilter::new("t", "nope", Predicate::eq(1i64));
        filter_mask(&t, &[&f]);
    }
}
