//! Exact cardinality of acyclic inner-join queries.
//!
//! Because the join schema (and therefore every query) is a tree, COUNT(*) of
//! `σ(T_a) ⋈ σ(T_b) ⋈ ...` can be computed without materialising any intermediate join:
//! process the query's subtree bottom-up and, for every table, aggregate the *number of
//! join partners in the subtree below it* grouped by its parent-side join key.  This is the
//! same dynamic program the Exact Weight sampler uses (paper §4.1), restricted to the
//! queried tables and to rows passing the filters.

use std::collections::HashMap;

use nc_schema::{JoinSchema, Query};
use nc_storage::{Database, Table, Value};

use crate::filter::query_filter_mask;

/// A composite join-key value (one entry per edge column in a multi-key join condition).
type Key = Vec<Value>;

/// Exact COUNT(*) of the query (inner join over its tables, conjunctive filters applied).
///
/// Panics if the query does not validate against the schema.
pub fn true_cardinality(db: &Database, schema: &JoinSchema, query: &Query) -> u128 {
    query
        .validate(schema)
        .unwrap_or_else(|e| panic!("invalid query {query}: {e}"));
    let root = query_subtree_root(schema, query);
    count_at(db, schema, query, &root, None).into_values().sum()
}

/// Exact row count of the unfiltered inner join over `tables` (used for the selectivity
/// denominator of Figure 6).
pub fn inner_join_count(db: &Database, schema: &JoinSchema, tables: &[&str]) -> u128 {
    let query = Query::join(tables);
    true_cardinality(db, schema, &query)
}

/// The query table that is highest in the schema tree (its schema parent is not part of the
/// query).  A validated connected query has exactly one such table.
pub fn query_subtree_root(schema: &JoinSchema, query: &Query) -> String {
    let mut roots: Vec<&String> = query
        .tables
        .iter()
        .filter(|t| match schema.parent(t) {
            None => true,
            Some(p) => !query.joins(p),
        })
        .collect();
    roots.sort();
    assert_eq!(
        roots.len(),
        1,
        "a connected query subtree has exactly one root; got {roots:?}"
    );
    roots[0].clone()
}

/// Recursively computes, for `table`, a map from its parent-side composite key (projected
/// on `parent_edge_cols`, if given) to the total number of join combinations contributed by
/// the subtree rooted at `table` for rows carrying that key.  When `parent_edge_cols` is
/// `None` (the query root), the map has a single empty-key entry holding the final count.
fn count_at(
    db: &Database,
    schema: &JoinSchema,
    query: &Query,
    table: &str,
    parent_edge_cols: Option<&[String]>,
) -> HashMap<Key, u128> {
    let t: &Table = db.expect_table(table);
    let mask = query_filter_mask(t, query);

    // Child tables of `table` that are part of the query, with this table's edge columns
    // towards each child.
    let mut child_maps: Vec<(Vec<String>, HashMap<Key, u128>)> = Vec::new();
    for child in schema.children(table) {
        if !query.joins(child) {
            continue;
        }
        let edges = schema.edges_between(table, child);
        let my_cols: Vec<String> = edges
            .iter()
            .map(|e| {
                e.endpoint(table)
                    .expect("edge touches table")
                    .column
                    .clone()
            })
            .collect();
        let child_cols: Vec<String> = edges
            .iter()
            .map(|e| {
                e.endpoint(child)
                    .expect("edge touches child")
                    .column
                    .clone()
            })
            .collect();
        let map = count_at(db, schema, query, child, Some(&child_cols));
        child_maps.push((my_cols, map));
    }

    let parent_cols: Option<Vec<&nc_storage::Column>> = parent_edge_cols.map(|cols| {
        cols.iter()
            .map(|c| {
                t.column(c)
                    .unwrap_or_else(|| panic!("missing join column {table}.{c}"))
            })
            .collect()
    });
    let child_key_cols: Vec<Vec<&nc_storage::Column>> = child_maps
        .iter()
        .map(|(cols, _)| {
            cols.iter()
                .map(|c| {
                    t.column(c)
                        .unwrap_or_else(|| panic!("missing join column {table}.{c}"))
                })
                .collect()
        })
        .collect();

    let mut out: HashMap<Key, u128> = HashMap::new();
    'rows: for row in 0..t.num_rows() {
        if !mask[row] {
            continue;
        }
        // Weight of this row = product over query children of the partner count below.
        let mut weight: u128 = 1;
        for ((_, map), cols) in child_maps.iter().zip(&child_key_cols) {
            let key: Key = cols.iter().map(|c| c.value(row)).collect();
            if key.iter().any(Value::is_null) {
                continue 'rows; // NULL keys never match in an inner join
            }
            match map.get(&key) {
                Some(&w) if w > 0 => weight = weight.saturating_mul(w),
                _ => continue 'rows,
            }
        }
        let key: Key = match &parent_cols {
            None => Vec::new(),
            Some(cols) => {
                let key: Key = cols.iter().map(|c| c.value(row)).collect();
                if key.iter().any(Value::is_null) {
                    continue; // cannot join upward with a NULL key
                }
                key
            }
        };
        *out.entry(key).or_insert(0) += weight;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nc_schema::{JoinEdge, Predicate};
    use nc_storage::TableBuilder;

    /// The paper's Figure 4 data: A(x)=[1,2]; B(x,y)=[(1,a),(2,b),(2,c)]; C(y)=[c,c,d].
    fn figure4_db() -> (Database, JoinSchema) {
        let mut db = Database::new();
        let mut a = TableBuilder::new("A", &["x"]);
        a.push_row(vec![Value::Int(1)]);
        a.push_row(vec![Value::Int(2)]);
        db.add_table(a.finish());
        let mut b = TableBuilder::new("B", &["x", "y"]);
        b.push_row(vec![Value::Int(1), Value::from("a")]);
        b.push_row(vec![Value::Int(2), Value::from("b")]);
        b.push_row(vec![Value::Int(2), Value::from("c")]);
        db.add_table(b.finish());
        let mut c = TableBuilder::new("C", &["y"]);
        c.push_row(vec![Value::from("c")]);
        c.push_row(vec![Value::from("c")]);
        c.push_row(vec![Value::from("d")]);
        db.add_table(c.finish());
        let schema = JoinSchema::new(
            vec!["A".into(), "B".into(), "C".into()],
            vec![JoinEdge::parse("A.x", "B.x"), JoinEdge::parse("B.y", "C.y")],
            "A",
        )
        .unwrap();
        (db, schema)
    }

    #[test]
    fn figure4_q1_and_q2() {
        let (db, schema) = figure4_db();
        // Q1: A ⋈ B ⋈ C WHERE A.x = 2  → 2 rows (paper Figure 4d).
        let q1 = Query::join(&["A", "B", "C"]).filter("A", "x", Predicate::eq(2i64));
        assert_eq!(true_cardinality(&db, &schema, &q1), 2);
        // Q2: A WHERE A.x = 2 → 1 row.
        let q2 = Query::join(&["A"]).filter("A", "x", Predicate::eq(2i64));
        assert_eq!(true_cardinality(&db, &schema, &q2), 1);
        // Unfiltered inner join: only B(2,c) has partners on both sides, with 2 C matches.
        assert_eq!(inner_join_count(&db, &schema, &["A", "B", "C"]), 2);
    }

    #[test]
    fn figure4_intermediate_joins() {
        let (db, schema) = figure4_db();
        // A ⋈ B: every B row has an A partner → 3.
        assert_eq!(inner_join_count(&db, &schema, &["A", "B"]), 3);
        // B ⋈ C: only (2,c) matches, twice → 2.
        assert_eq!(inner_join_count(&db, &schema, &["B", "C"]), 2);
        // Single tables.
        assert_eq!(inner_join_count(&db, &schema, &["A"]), 2);
        assert_eq!(inner_join_count(&db, &schema, &["B"]), 3);
        assert_eq!(inner_join_count(&db, &schema, &["C"]), 3);
    }

    #[test]
    fn filters_on_leaf_tables() {
        let (db, schema) = figure4_db();
        let q = Query::join(&["B", "C"]).filter("C", "y", Predicate::eq("c"));
        assert_eq!(true_cardinality(&db, &schema, &q), 2);
        let q = Query::join(&["B", "C"]).filter("C", "y", Predicate::eq("d"));
        assert_eq!(true_cardinality(&db, &schema, &q), 0);
    }

    #[test]
    fn multi_key_composite_join() {
        // A(x, y) joins B on both x and y.
        let mut db = Database::new();
        let mut a = TableBuilder::new("A", &["x", "y"]);
        a.push_row(vec![Value::Int(1), Value::Int(10)]);
        a.push_row(vec![Value::Int(1), Value::Int(20)]);
        db.add_table(a.finish());
        let mut b = TableBuilder::new("B", &["x", "y", "v"]);
        b.push_row(vec![Value::Int(1), Value::Int(10), Value::Int(7)]);
        b.push_row(vec![Value::Int(1), Value::Int(10), Value::Int(8)]);
        b.push_row(vec![Value::Int(1), Value::Int(30), Value::Int(9)]);
        db.add_table(b.finish());
        let schema = JoinSchema::new(
            vec!["A".into(), "B".into()],
            vec![JoinEdge::parse("A.x", "B.x"), JoinEdge::parse("A.y", "B.y")],
            "A",
        )
        .unwrap();
        // Only (1,10) matches, with 2 B rows.
        assert_eq!(inner_join_count(&db, &schema, &["A", "B"]), 2);
        let q = Query::join(&["A", "B"]).filter("B", "v", Predicate::eq(8i64));
        assert_eq!(true_cardinality(&db, &schema, &q), 1);
    }

    #[test]
    fn null_join_keys_never_match() {
        let mut db = Database::new();
        let mut a = TableBuilder::new("A", &["x"]);
        a.push_row(vec![Value::Null]);
        a.push_row(vec![Value::Int(1)]);
        db.add_table(a.finish());
        let mut b = TableBuilder::new("B", &["x"]);
        b.push_row(vec![Value::Null]);
        b.push_row(vec![Value::Int(1)]);
        db.add_table(b.finish());
        let schema = JoinSchema::new(
            vec!["A".into(), "B".into()],
            vec![JoinEdge::parse("A.x", "B.x")],
            "A",
        )
        .unwrap();
        assert_eq!(inner_join_count(&db, &schema, &["A", "B"]), 1);
    }

    #[test]
    fn query_root_detection() {
        let (_, schema) = figure4_db();
        assert_eq!(
            query_subtree_root(&schema, &Query::join(&["B", "C"])),
            "B".to_string()
        );
        assert_eq!(
            query_subtree_root(&schema, &Query::join(&["A", "B", "C"])),
            "A".to_string()
        );
        assert_eq!(
            query_subtree_root(&schema, &Query::join(&["C"])),
            "C".to_string()
        );
    }

    #[test]
    #[should_panic(expected = "invalid query")]
    fn invalid_query_panics() {
        let (db, schema) = figure4_db();
        // A and C are not adjacent → not connected without B.
        let q = Query::join(&["A", "C"]);
        true_cardinality(&db, &schema, &q);
    }
}
