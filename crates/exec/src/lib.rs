//! # nc-exec
//!
//! A small, exact query executor used to produce **ground-truth cardinalities** for the
//! benchmark workloads and to cross-check the join sampler.
//!
//! The paper's evaluation needs, for every benchmark query, the *true* cardinality (to
//! compute Q-errors) and the row count of the query's unfiltered inner join (to compute the
//! selectivity spectrum of Figure 6).  Rather than a general-purpose SQL engine, this crate
//! implements exactly what acyclic inner-join counting needs:
//!
//! * [`filter::filter_mask`] — evaluate a conjunction of single-table predicates into a row
//!   mask,
//! * [`cardinality::true_cardinality`] — exact COUNT(*) of an acyclic join query via the
//!   same bottom-up dynamic programming the Exact Weight sampler uses (linear in the data
//!   size, no intermediate materialisation),
//! * [`full_join::enumerate_full_join`] — a brute-force enumerator of the augmented full
//!   outer join (with the paper's virtual `⊥` tuples) for *tiny* inputs, used by tests to
//!   validate both the DP and the sampler.

pub mod cardinality;
pub mod filter;
pub mod full_join;

pub use cardinality::{inner_join_count, true_cardinality};
pub use filter::filter_mask;
pub use full_join::{enumerate_full_join, FullJoinRow};
