//! Property-based tests for the storage substrate.

use nc_storage::{read_csv_str, write_csv_string, Column, ColumnDictionary, TableBuilder, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        2 => Just(Value::Null),
        5 => (-1000i64..1000).prop_map(Value::Int),
    ]
}

fn arb_str_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        1 => Just(Value::Null),
        5 => "[a-z]{0,6}".prop_map(|s| if s.is_empty() { Value::Null } else { Value::from(s) }),
    ]
}

proptest! {
    /// Building a column from values and reading it back is the identity.
    #[test]
    fn column_roundtrip_ints(values in prop::collection::vec(arb_value(), 0..200)) {
        let col = Column::from_values("c", &values);
        prop_assert_eq!(col.len(), values.len());
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(&col.value(i), v);
        }
    }

    /// Same round-trip property for string columns.
    #[test]
    fn column_roundtrip_strs(values in prop::collection::vec(arb_str_value(), 0..200)) {
        let col = Column::from_values("c", &values);
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(&col.value(i), v);
        }
    }

    /// Dictionary encode/decode round-trips, and codes preserve the value order.
    #[test]
    fn dictionary_is_order_preserving(values in prop::collection::vec(arb_value(), 1..200)) {
        let col = Column::from_values("c", &values);
        let dict = ColumnDictionary::from_column(&col);
        for v in values.iter() {
            let code = dict.encode(v).expect("present value must encode");
            prop_assert_eq!(&dict.decode(code), v);
        }
        // Order preservation over the dictionary's own values.
        let vals = dict.values().to_vec();
        for w in vals.windows(2) {
            let a = dict.encode(&w[0]).unwrap();
            let b = dict.encode(&w[1]).unwrap();
            prop_assert!(a < b);
        }
    }

    /// `code_range` agrees with a brute-force filter over the dictionary values.
    #[test]
    fn code_range_matches_bruteforce(
        values in prop::collection::vec((-50i64..50).prop_map(Value::Int), 1..100),
        lo in -60i64..60,
        hi in -60i64..60,
    ) {
        let col = Column::from_values("c", &values);
        let dict = ColumnDictionary::from_column(&col);
        let lo_v = Value::Int(lo.min(hi));
        let hi_v = Value::Int(lo.max(hi));
        let expected: Vec<u32> = dict
            .values()
            .iter()
            .filter(|v| **v >= lo_v && **v <= hi_v)
            .map(|v| dict.encode(v).unwrap())
            .collect();
        match dict.code_range(Some(&lo_v), Some(&hi_v)) {
            None => prop_assert!(expected.is_empty()),
            Some((a, b)) => {
                prop_assert_eq!(expected.first().copied(), Some(a));
                prop_assert_eq!(expected.last().copied(), Some(b));
                prop_assert_eq!(expected.len() as u32, b - a + 1);
            }
        }
    }

    /// CSV write → read is lossless for tables of ints and simple strings.
    #[test]
    fn csv_roundtrip(
        rows in prop::collection::vec((arb_value(), arb_str_value()), 0..50)
    ) {
        let mut b = TableBuilder::new("t", &["a", "b"]);
        for (x, y) in &rows {
            b.push_row(vec![x.clone(), y.clone()]);
        }
        let t = b.finish();
        let csv = write_csv_string(&t);
        let t2 = read_csv_str("t", &csv).expect("parse back");
        prop_assert_eq!(t2.num_rows(), t.num_rows());
        for r in 0..t.num_rows() {
            prop_assert_eq!(t2.row(r as u32), t.row(r as u32));
        }
    }
}
