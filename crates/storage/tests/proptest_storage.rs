//! Property-based tests for the storage substrate.

use nc_storage::{read_csv_str, write_csv_string, Column, ColumnDictionary, TableBuilder, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        2 => Just(Value::Null),
        5 => (-1000i64..1000).prop_map(Value::Int),
    ]
}

fn arb_str_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        1 => Just(Value::Null),
        5 => "[a-z]{0,6}".prop_map(|s| if s.is_empty() { Value::Null } else { Value::from(s) }),
    ]
}

/// Strings exercising the CSV dialect's metacharacters (commas, quotes, newlines,
/// spaces). Digits are excluded so values cannot be re-parsed as integers.
fn arb_tricky_str_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        1 => Just(Value::Null),
        6 => "[a-z ,\"\n.]{1,8}".prop_map(Value::from),
    ]
}

proptest! {
    /// Building a column from values and reading it back is the identity.
    #[test]
    fn column_roundtrip_ints(values in prop::collection::vec(arb_value(), 0..200)) {
        let col = Column::from_values("c", &values);
        prop_assert_eq!(col.len(), values.len());
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(&col.value(i), v);
        }
    }

    /// Same round-trip property for string columns.
    #[test]
    fn column_roundtrip_strs(values in prop::collection::vec(arb_str_value(), 0..200)) {
        let col = Column::from_values("c", &values);
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(&col.value(i), v);
        }
    }

    /// Dictionary encode/decode round-trips, and codes preserve the value order.
    #[test]
    fn dictionary_is_order_preserving(values in prop::collection::vec(arb_value(), 1..200)) {
        let col = Column::from_values("c", &values);
        let dict = ColumnDictionary::from_column(&col);
        for v in values.iter() {
            let code = dict.encode(v).expect("present value must encode");
            prop_assert_eq!(&dict.decode(code), v);
        }
        // Order preservation over the dictionary's own values.
        let vals = dict.values().to_vec();
        for w in vals.windows(2) {
            let a = dict.encode(&w[0]).unwrap();
            let b = dict.encode(&w[1]).unwrap();
            prop_assert!(a < b);
        }
    }

    /// `code_range` agrees with a brute-force filter over the dictionary values.
    #[test]
    fn code_range_matches_bruteforce(
        values in prop::collection::vec((-50i64..50).prop_map(Value::Int), 1..100),
        lo in -60i64..60,
        hi in -60i64..60,
    ) {
        let col = Column::from_values("c", &values);
        let dict = ColumnDictionary::from_column(&col);
        let lo_v = Value::Int(lo.min(hi));
        let hi_v = Value::Int(lo.max(hi));
        let expected: Vec<u32> = dict
            .values()
            .iter()
            .filter(|v| **v >= lo_v && **v <= hi_v)
            .map(|v| dict.encode(v).unwrap())
            .collect();
        match dict.code_range(Some(&lo_v), Some(&hi_v)) {
            None => prop_assert!(expected.is_empty()),
            Some((a, b)) => {
                prop_assert_eq!(expected.first().copied(), Some(a));
                prop_assert_eq!(expected.last().copied(), Some(b));
                prop_assert_eq!(expected.len() as u32, b - a + 1);
            }
        }
    }

    /// CSV write → read is lossless for tables of ints and simple strings.
    #[test]
    fn csv_roundtrip(
        rows in prop::collection::vec((arb_value(), arb_str_value()), 0..50)
    ) {
        let mut b = TableBuilder::new("t", &["a", "b"]);
        for (x, y) in &rows {
            b.push_row(vec![x.clone(), y.clone()]);
        }
        let t = b.finish();
        let csv = write_csv_string(&t);
        let t2 = read_csv_str("t", &csv).expect("parse back");
        prop_assert_eq!(t2.num_rows(), t.num_rows());
        for r in 0..t.num_rows() {
            prop_assert_eq!(t2.row(r as u32), t.row(r as u32));
        }
    }

    /// Dictionary codes form a dense bijection: every code in `0..domain_size` decodes to
    /// a value that encodes back to exactly that code (the reverse direction of
    /// `dictionary_is_order_preserving`).
    #[test]
    fn dictionary_codes_are_a_dense_bijection(
        values in prop::collection::vec(arb_value(), 1..150),
    ) {
        let col = Column::from_values("c", &values);
        let dict = ColumnDictionary::from_column(&col);
        // NULL always owns code 0; real values get codes 1..=distinct.
        let distinct_non_null: std::collections::BTreeSet<&Value> =
            values.iter().filter(|v| !v.is_null()).collect();
        prop_assert_eq!(dict.distinct(), distinct_non_null.len());
        prop_assert_eq!(dict.domain_size(), distinct_non_null.len() + 1);
        for code in 0..dict.domain_size() as u32 {
            let v = dict.decode(code);
            prop_assert_eq!(dict.encode(&v), Some(code));
        }
    }

    /// Values absent from the column never encode; present values always do. Holds for
    /// string dictionaries exactly as for integer ones.
    #[test]
    fn dictionary_encodes_exactly_the_column_values(
        values in prop::collection::vec(arb_str_value(), 1..100),
        probe in "[a-z]{0,6}",
    ) {
        let col = Column::from_values("c", &values);
        let dict = ColumnDictionary::from_column(&col);
        // NULL always encodes (to the reserved code 0); a non-NULL probe encodes iff it
        // occurs in the column.
        prop_assert_eq!(dict.encode(&Value::Null), Some(0));
        if !probe.is_empty() {
            let probe = Value::from(probe);
            prop_assert_eq!(dict.encode(&probe).is_some(), values.contains(&probe));
        }
        for v in &values {
            prop_assert!(dict.encode(v).is_some());
        }
    }

    /// CSV survives strings full of dialect metacharacters: commas, double quotes,
    /// embedded newlines, dots and spaces all round-trip through quoting.
    #[test]
    fn csv_roundtrip_with_metacharacters(
        rows in prop::collection::vec((arb_value(), arb_tricky_str_value()), 1..40),
    ) {
        let mut b = TableBuilder::new("t", &["n", "s"]);
        for (x, y) in &rows {
            b.push_row(vec![x.clone(), y.clone()]);
        }
        let t = b.finish();
        let csv = write_csv_string(&t);
        let t2 = read_csv_str("t", &csv).expect("parse back");
        prop_assert_eq!(t2.num_rows(), t.num_rows());
        for r in 0..t.num_rows() {
            prop_assert_eq!(t2.row(r as u32), t.row(r as u32));
        }
    }

    /// write → read → write is a fixpoint: re-serialising a parsed table reproduces the
    /// byte-identical CSV text (the serialised form is canonical).
    #[test]
    fn csv_write_read_write_is_fixpoint(
        rows in prop::collection::vec(
            (arb_value(), arb_tricky_str_value(), arb_str_value()),
            0..30,
        ),
    ) {
        let mut b = TableBuilder::new("t", &["a", "b", "c"]);
        for (x, y, z) in &rows {
            b.push_row(vec![x.clone(), y.clone(), z.clone()]);
        }
        let csv1 = write_csv_string(&b.finish());
        let reparsed = read_csv_str("t", &csv1).expect("parse back");
        let csv2 = write_csv_string(&reparsed);
        prop_assert_eq!(csv1, csv2);
    }
}
