//! Join-key indexes.
//!
//! The join sampler (paper §4) and the IBJS baseline both assume an index per join key:
//! given a key value, return the row ids of all matching tuples.  The paper notes this
//! assumption "impacts the efficiency but not correctness of the design".

use std::collections::HashMap;

use crate::table::Table;
use crate::value::Value;
use crate::RowId;

/// A hash index from join-key value to the row ids holding that value.
///
/// NULL keys are tracked separately (they never participate in equi-joins but are needed
/// for full-outer-join bookkeeping).
#[derive(Debug, Clone, Default)]
pub struct KeyIndex {
    map: HashMap<Value, Vec<RowId>>,
    null_rows: Vec<RowId>,
}

impl KeyIndex {
    /// Builds an index over `table.column`.
    ///
    /// Panics if the column does not exist.
    pub fn build(table: &Table, column: &str) -> Self {
        let col = table
            .column(column)
            .unwrap_or_else(|| panic!("no column {column:?} in table {:?}", table.name()));
        let mut map: HashMap<Value, Vec<RowId>> = HashMap::new();
        let mut null_rows = Vec::new();
        for row in 0..col.len() {
            let v = col.value(row);
            if v.is_null() {
                null_rows.push(row as RowId);
            } else {
                map.entry(v).or_default().push(row as RowId);
            }
        }
        KeyIndex { map, null_rows }
    }

    /// Row ids whose key equals `value`.  Empty slice if no match (or if `value` is NULL).
    pub fn lookup(&self, value: &Value) -> &[RowId] {
        if value.is_null() {
            return &[];
        }
        self.map.get(value).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of rows whose key equals `value` — the per-key fanout used for the paper's
    /// virtual fanout columns.
    pub fn fanout(&self, value: &Value) -> u64 {
        self.lookup(value).len() as u64
    }

    /// Whether any row carries this key value.
    pub fn contains(&self, value: &Value) -> bool {
        !self.lookup(value).is_empty()
    }

    /// Row ids whose key is NULL.
    pub fn null_rows(&self) -> &[RowId] {
        &self.null_rows
    }

    /// Number of distinct non-NULL key values.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Iterator over `(key, row ids)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Value, &[RowId])> {
        self.map.iter().map(|(k, v)| (k, v.as_slice()))
    }

    /// All distinct non-NULL key values, in arbitrary order.
    pub fn keys(&self) -> impl Iterator<Item = &Value> {
        self.map.keys()
    }
}

/// Caches [`KeyIndex`]es by `(table, column)` so repeated sampler / baseline constructions
/// reuse the same physical index, as a DBMS would.
#[derive(Debug, Default)]
pub struct IndexCache {
    built: parking_lot::RwLock<HashMap<(String, String), std::sync::Arc<KeyIndex>>>,
}

impl IndexCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the index for `table.column`, building it on first use.
    pub fn get_or_build(&self, table: &Table, column: &str) -> std::sync::Arc<KeyIndex> {
        let key = (table.name().to_string(), column.to_string());
        if let Some(idx) = self.built.read().get(&key) {
            return idx.clone();
        }
        let idx = std::sync::Arc::new(KeyIndex::build(table, column));
        self.built.write().insert(key, idx.clone());
        idx
    }

    /// Drops cached indexes for a table (needed when the update experiments replace it).
    pub fn invalidate_table(&self, table_name: &str) {
        self.built.write().retain(|(t, _), _| t != table_name);
    }

    /// Number of cached indexes.
    pub fn len(&self) -> usize {
        self.built.read().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn table() -> Table {
        Table::new(
            "b",
            vec![
                Column::from_values(
                    "x",
                    &[Value::Int(1), Value::Int(2), Value::Int(2), Value::Null],
                ),
                Column::from_values(
                    "y",
                    &[
                        Value::from("a"),
                        Value::from("b"),
                        Value::from("c"),
                        Value::from("d"),
                    ],
                ),
            ],
        )
    }

    #[test]
    fn lookup_and_fanout() {
        let idx = KeyIndex::build(&table(), "x");
        assert_eq!(idx.lookup(&Value::Int(2)), &[1, 2]);
        assert_eq!(idx.lookup(&Value::Int(1)), &[0]);
        assert!(idx.lookup(&Value::Int(99)).is_empty());
        assert_eq!(idx.fanout(&Value::Int(2)), 2);
        assert_eq!(idx.fanout(&Value::Int(99)), 0);
        assert!(idx.contains(&Value::Int(1)));
        assert!(!idx.contains(&Value::Int(99)));
        assert_eq!(idx.null_rows(), &[3]);
        assert_eq!(idx.distinct_keys(), 2);
        assert_eq!(idx.lookup(&Value::Null), &[] as &[RowId]);
    }

    #[test]
    fn iteration_covers_all_keys() {
        let idx = KeyIndex::build(&table(), "x");
        let mut keys: Vec<i64> = idx.keys().map(|v| v.as_int().unwrap()).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![1, 2]);
        let total: usize = idx.iter().map(|(_, rows)| rows.len()).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn cache_reuses_and_invalidates() {
        let t = table();
        let cache = IndexCache::new();
        assert!(cache.is_empty());
        let a = cache.get_or_build(&t, "x");
        let b = cache.get_or_build(&t, "x");
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        let _ = cache.get_or_build(&t, "y");
        assert_eq!(cache.len(), 2);
        cache.invalidate_table("b");
        assert!(cache.is_empty());
    }
}
