//! Order-preserving per-column dictionaries.
//!
//! The autoregressive model (and several baselines) operate on dense integer codes rather
//! than raw values.  A [`ColumnDictionary`] assigns code `i` to the `i`-th smallest distinct
//! non-NULL value of a column; NULL gets the dedicated code `0` and real values start at 1.
//! Because codes are order-preserving, a range predicate on raw values translates directly
//! into a contiguous code range — the property the lossless column factorization of the
//! paper (§5) relies on when turning original-column filters into subcolumn filters.

use serde::{Deserialize, Serialize};

use crate::column::Column;
use crate::value::Value;

/// Code reserved for NULL.
pub const NULL_CODE: u32 = 0;

/// An order-preserving dictionary for one column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColumnDictionary {
    /// Distinct non-NULL values in ascending order; value `values[i]` has code `i + 1`.
    values: Vec<Value>,
}

impl ColumnDictionary {
    /// Builds a dictionary from a column's distinct values.
    pub fn from_column(column: &Column) -> Self {
        ColumnDictionary {
            values: column.distinct_values(),
        }
    }

    /// Builds a dictionary from pre-sorted distinct values (asserts ordering in debug).
    pub fn from_sorted_values(values: Vec<Value>) -> Self {
        debug_assert!(
            values.windows(2).all(|w| w[0] < w[1]),
            "values must be strictly sorted"
        );
        ColumnDictionary { values }
    }

    /// Domain size including the NULL code (i.e. `distinct + 1`).
    pub fn domain_size(&self) -> usize {
        self.values.len() + 1
    }

    /// Number of distinct non-NULL values.
    pub fn distinct(&self) -> usize {
        self.values.len()
    }

    /// Encodes a value to its code.  Returns `None` for non-NULL values absent from the
    /// dictionary (e.g. a filter literal that does not occur in the data).
    pub fn encode(&self, value: &Value) -> Option<u32> {
        if value.is_null() {
            return Some(NULL_CODE);
        }
        self.values
            .binary_search(value)
            .ok()
            .map(|i| (i + 1) as u32)
    }

    /// Decodes a code back to its value.  Code 0 is NULL.
    pub fn decode(&self, code: u32) -> Value {
        if code == NULL_CODE {
            Value::Null
        } else {
            self.values[(code - 1) as usize].clone()
        }
    }

    /// All codes whose value satisfies `pred` (codes are contiguous for range predicates,
    /// but this helper supports arbitrary predicates).
    pub fn codes_matching(&self, mut pred: impl FnMut(&Value) -> bool) -> Vec<u32> {
        let mut out = Vec::new();
        if pred(&Value::Null) {
            out.push(NULL_CODE);
        }
        for (i, v) in self.values.iter().enumerate() {
            if pred(v) {
                out.push((i + 1) as u32);
            }
        }
        out
    }

    /// Inclusive code range `[lo, hi]` covering all values `v` with `lower <= v <= upper`
    /// (either bound may be `None` = unbounded).  Returns `None` if no dictionary value
    /// falls in the range.  NULL is never part of a range.
    pub fn code_range(&self, lower: Option<&Value>, upper: Option<&Value>) -> Option<(u32, u32)> {
        if self.values.is_empty() {
            return None;
        }
        let lo_idx = match lower {
            None => 0,
            Some(lv) => self.values.partition_point(|v| v < lv),
        };
        let hi_idx = match upper {
            None => self.values.len(),
            Some(uv) => self.values.partition_point(|v| v <= uv),
        };
        if lo_idx >= hi_idx {
            None
        } else {
            Some((lo_idx as u32 + 1, hi_idx as u32))
        }
    }

    /// Code of the greatest dictionary value `<= value`, if any (used to snap range filter
    /// literals that are not themselves present in the data).
    pub fn floor_code(&self, value: &Value) -> Option<u32> {
        let idx = self.values.partition_point(|v| v <= value);
        if idx == 0 {
            None
        } else {
            Some(idx as u32)
        }
    }

    /// Code of the smallest dictionary value `>= value`, if any.
    pub fn ceil_code(&self, value: &Value) -> Option<u32> {
        let idx = self.values.partition_point(|v| v < value);
        if idx == self.values.len() {
            None
        } else {
            Some(idx as u32 + 1)
        }
    }

    /// The underlying sorted distinct values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict() -> ColumnDictionary {
        let col = Column::from_values(
            "c",
            &[
                Value::Int(10),
                Value::Int(30),
                Value::Null,
                Value::Int(20),
                Value::Int(30),
            ],
        );
        ColumnDictionary::from_column(&col)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let d = dict();
        assert_eq!(d.domain_size(), 4);
        assert_eq!(d.distinct(), 3);
        assert_eq!(d.encode(&Value::Null), Some(NULL_CODE));
        assert_eq!(d.encode(&Value::Int(10)), Some(1));
        assert_eq!(d.encode(&Value::Int(20)), Some(2));
        assert_eq!(d.encode(&Value::Int(30)), Some(3));
        assert_eq!(d.encode(&Value::Int(25)), None);
        for code in 0..4 {
            assert_eq!(d.encode(&d.decode(code)), Some(code));
        }
    }

    #[test]
    fn codes_are_order_preserving() {
        let d = dict();
        let c10 = d.encode(&Value::Int(10)).unwrap();
        let c20 = d.encode(&Value::Int(20)).unwrap();
        let c30 = d.encode(&Value::Int(30)).unwrap();
        assert!(c10 < c20 && c20 < c30);
    }

    #[test]
    fn code_range_bounds() {
        let d = dict();
        assert_eq!(d.code_range(None, None), Some((1, 3)));
        assert_eq!(
            d.code_range(Some(&Value::Int(15)), Some(&Value::Int(30))),
            Some((2, 3))
        );
        assert_eq!(
            d.code_range(Some(&Value::Int(10)), Some(&Value::Int(10))),
            Some((1, 1))
        );
        assert_eq!(d.code_range(Some(&Value::Int(31)), None), None);
        assert_eq!(d.code_range(None, Some(&Value::Int(5))), None);
    }

    #[test]
    fn floor_and_ceil() {
        let d = dict();
        assert_eq!(d.floor_code(&Value::Int(25)), Some(2));
        assert_eq!(d.floor_code(&Value::Int(5)), None);
        assert_eq!(d.ceil_code(&Value::Int(25)), Some(3));
        assert_eq!(d.ceil_code(&Value::Int(35)), None);
        assert_eq!(d.floor_code(&Value::Int(30)), Some(3));
        assert_eq!(d.ceil_code(&Value::Int(10)), Some(1));
    }

    #[test]
    fn codes_matching_predicate() {
        let d = dict();
        let codes = d.codes_matching(|v| matches!(v, Value::Int(x) if *x >= 20));
        assert_eq!(codes, vec![2, 3]);
        let with_null = d.codes_matching(|v| v.is_null());
        assert_eq!(with_null, vec![NULL_CODE]);
    }

    #[test]
    fn empty_dictionary() {
        let col = Column::from_values("c", &[Value::Null]);
        let d = ColumnDictionary::from_column(&col);
        assert_eq!(d.domain_size(), 1);
        assert_eq!(d.code_range(None, None), None);
        assert_eq!(d.encode(&Value::Int(1)), None);
    }

    #[test]
    fn string_dictionary_lexicographic() {
        let col = Column::from_values(
            "s",
            &[Value::from("N612"), Value::from("A100"), Value::from("Z9")],
        );
        let d = ColumnDictionary::from_column(&col);
        let range = d
            .code_range(Some(&Value::from("N612")), None)
            .expect("range");
        // 'N612' and 'Z9' are >= 'N612'.
        assert_eq!(range.1 - range.0 + 1, 2);
    }
}
