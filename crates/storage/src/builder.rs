//! Row-oriented table construction.

use crate::column::Column;
use crate::table::Table;
use crate::value::Value;

/// Accumulates rows and produces an immutable [`Table`].
///
/// ```
/// use nc_storage::{TableBuilder, Value};
/// let mut b = TableBuilder::new("movies", &["id", "year"]);
/// b.push_row(vec![Value::Int(1), Value::Int(1994)]);
/// let t = b.finish();
/// assert_eq!(t.num_rows(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TableBuilder {
    name: String,
    column_names: Vec<String>,
    rows: Vec<Vec<Value>>,
}

impl TableBuilder {
    /// Creates a builder for a table with the given column names.
    pub fn new(name: impl Into<String>, column_names: &[&str]) -> Self {
        TableBuilder {
            name: name.into(),
            column_names: column_names.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Creates a builder with pre-allocated capacity for `rows` rows.
    pub fn with_capacity(name: impl Into<String>, column_names: &[&str], rows: usize) -> Self {
        let mut b = Self::new(name, column_names);
        b.rows.reserve(rows);
        b
    }

    /// Appends a row.  Panics if the arity does not match the declared columns.
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(
            row.len(),
            self.column_names.len(),
            "row arity {} does not match declared columns {}",
            row.len(),
            self.column_names.len()
        );
        self.rows.push(row);
    }

    /// Number of rows accumulated so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows have been accumulated.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Converts the accumulated rows into a columnar [`Table`].
    pub fn finish(self) -> Table {
        let n_cols = self.column_names.len();
        let mut per_column: Vec<Vec<Value>> = vec![Vec::with_capacity(self.rows.len()); n_cols];
        for row in self.rows {
            for (i, v) in row.into_iter().enumerate() {
                per_column[i].push(v);
            }
        }
        let columns = self
            .column_names
            .iter()
            .zip(per_column)
            .map(|(name, vals)| Column::from_values(name.clone(), &vals))
            .collect();
        Table::new(self.name, columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_round_trip() {
        let mut b = TableBuilder::with_capacity("t", &["a", "b"], 4);
        assert!(b.is_empty());
        b.push_row(vec![Value::Int(1), Value::from("x")]);
        b.push_row(vec![Value::Int(2), Value::Null]);
        assert_eq!(b.len(), 2);
        let t = b.finish();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.value("a", 1), Value::Int(2));
        assert_eq!(t.value("b", 1), Value::Null);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut b = TableBuilder::new("t", &["a", "b"]);
        b.push_row(vec![Value::Int(1)]);
    }

    #[test]
    fn empty_table() {
        let t = TableBuilder::new("t", &["a"]).finish();
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.num_columns(), 1);
    }
}
