//! # nc-storage
//!
//! Columnar storage substrate used by the NeuroCard reproduction.
//!
//! The paper assumes an existing DBMS storage layer that provides:
//!
//! * base tables with typed columns (integers and strings, both nullable),
//! * per-column **dictionaries** mapping raw values to dense integer codes (the
//!   autoregressive model and the histogram baselines both operate on codes),
//! * **join-key indexes** (`value -> row ids`) used by the join sampler to gather
//!   content columns and by the IBJS baseline to walk joins,
//! * a catalog of tables.
//!
//! This crate implements all of that from scratch.  Tables are immutable once built
//! (the update experiments of the paper append whole partitions, which is modelled by
//! building a new [`Table`] and re-registering it in the [`Database`]).
//!
//! ```
//! use nc_storage::{TableBuilder, Value, Database};
//!
//! let mut b = TableBuilder::new("t", &["id", "name"]);
//! b.push_row(vec![Value::Int(1), Value::from("alice")]);
//! b.push_row(vec![Value::Int(2), Value::from("bob")]);
//! let table = b.finish();
//! assert_eq!(table.num_rows(), 2);
//!
//! let mut db = Database::new();
//! db.add_table(table);
//! assert_eq!(db.table("t").unwrap().num_rows(), 2);
//! ```

pub mod binio;
pub mod builder;
pub mod catalog;
pub mod column;
pub mod csv;
pub mod dict;
pub mod index;
pub mod table;
pub mod value;

pub use binio::{BinError, BinReader};
pub use builder::TableBuilder;
pub use catalog::Database;
pub use column::{Column, ColumnData};
pub use csv::{read_csv_str, write_csv_string};
pub use dict::ColumnDictionary;
pub use index::KeyIndex;
pub use table::Table;
pub use value::Value;

/// Row identifier within a single table.
pub type RowId = u32;
