//! The database catalog: a named collection of tables plus a shared index cache.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::index::{IndexCache, KeyIndex};
use crate::table::Table;

/// A database: tables by name plus lazily-built join-key indexes.
#[derive(Debug, Default)]
pub struct Database {
    tables: BTreeMap<String, Arc<Table>>,
    indexes: IndexCache,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a table.  Replacing a table invalidates its cached indexes,
    /// mirroring what the update experiments (§7.6) require after a partition ingest.
    pub fn add_table(&mut self, table: Table) {
        self.indexes.invalidate_table(table.name());
        self.tables
            .insert(table.name().to_string(), Arc::new(table));
    }

    /// Looks up a table by name.
    pub fn table(&self, name: &str) -> Option<&Arc<Table>> {
        self.tables.get(name)
    }

    /// Looks up a table, panicking with a readable message if missing.
    pub fn expect_table(&self, name: &str) -> &Arc<Table> {
        self.table(name)
            .unwrap_or_else(|| panic!("table {name:?} not registered in database"))
    }

    /// All table names in sorted order.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Number of registered tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Returns (building on first use) the join-key index for `table.column`.
    pub fn index(&self, table: &str, column: &str) -> Arc<KeyIndex> {
        let t = self.expect_table(table);
        self.indexes.get_or_build(t, column)
    }

    /// Total row count across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.num_rows()).sum()
    }

    /// Total approximate size in bytes across all tables.
    pub fn approx_bytes(&self) -> usize {
        self.tables.values().map(|t| t.approx_bytes()).sum()
    }

    /// Iterator over tables in name order.
    pub fn tables(&self) -> impl Iterator<Item = &Arc<Table>> {
        self.tables.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TableBuilder;
    use crate::value::Value;

    fn small_table(name: &str, n: i64) -> Table {
        let mut b = TableBuilder::new(name, &["id"]);
        for i in 0..n {
            b.push_row(vec![Value::Int(i)]);
        }
        b.finish()
    }

    #[test]
    fn add_lookup_and_totals() {
        let mut db = Database::new();
        db.add_table(small_table("a", 3));
        db.add_table(small_table("b", 5));
        assert_eq!(db.num_tables(), 2);
        assert_eq!(db.table_names(), vec!["a", "b"]);
        assert_eq!(db.total_rows(), 8);
        assert!(db.approx_bytes() > 0);
        assert!(db.table("a").is_some());
        assert!(db.table("zz").is_none());
        assert_eq!(db.tables().count(), 2);
    }

    #[test]
    fn replacing_table_invalidates_indexes() {
        let mut db = Database::new();
        db.add_table(small_table("a", 3));
        let idx1 = db.index("a", "id");
        assert_eq!(idx1.distinct_keys(), 3);
        db.add_table(small_table("a", 10));
        let idx2 = db.index("a", "id");
        assert_eq!(idx2.distinct_keys(), 10);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn expect_missing_table_panics() {
        Database::new().expect_table("nope");
    }
}
