//! Scalar values stored in table cells.
//!
//! Only the types actually needed by the IMDB-style workloads are supported:
//! 64-bit integers, UTF-8 strings, and NULL.  Values have a total order (used by the
//! dictionary to assign order-preserving codes, which in turn makes range predicates on
//! dictionary codes equivalent to range predicates on raw values): `Null < Int(_) < Str(_)`,
//! integers by numeric order, strings lexicographically.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// A single scalar cell value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// UTF-8 string.  `Arc<str>` keeps row materialisation cheap.
    Str(Arc<str>),
}

impl Value {
    /// Returns `true` if this value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the integer payload if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the string payload if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parses a CSV field into a value.
    ///
    /// An empty field becomes NULL, a field that parses as `i64` becomes an integer and
    /// everything else a string.  This mirrors how the IMDB CSV exports are typically
    /// ingested.
    pub fn parse(field: &str) -> Value {
        if field.is_empty() {
            Value::Null
        } else if let Ok(i) = field.parse::<i64>() {
            Value::Int(i)
        } else {
            Value::from(field)
        }
    }

    /// Rank of the variant used by the total order: NULL < Int < Str.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Str(_) => 2,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.as_ref().cmp(b.as_ref()),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.type_rank().hash(state);
        match self {
            Value::Null => {}
            Value::Int(v) => v.hash(state),
            Value::Str(s) => s.as_bytes().hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(Arc::from(s))
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl From<Option<i64>> for Value {
    fn from(v: Option<i64>) -> Self {
        match v {
            Some(v) => Value::Int(v),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn ordering_null_int_str() {
        assert!(Value::Null < Value::Int(-100));
        assert!(Value::Int(5) < Value::Int(6));
        assert!(Value::Int(i64::MAX) < Value::from("a"));
        assert!(Value::from("a") < Value::from("b"));
        assert_eq!(Value::Int(3), Value::Int(3));
    }

    #[test]
    fn parse_rules() {
        assert_eq!(Value::parse(""), Value::Null);
        assert_eq!(Value::parse("42"), Value::Int(42));
        assert_eq!(Value::parse("-7"), Value::Int(-7));
        assert_eq!(Value::parse("N612"), Value::from("N612"));
        assert_eq!(Value::parse("3.5"), Value::from("3.5"));
    }

    #[test]
    fn eq_and_hash_consistent() {
        let a = Value::from("movie");
        let b = Value::from(String::from("movie"));
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        assert_ne!(Value::Int(1), Value::from("1"));
    }

    #[test]
    fn display_roundtrip_for_ints() {
        let v = Value::Int(12345);
        assert_eq!(Value::parse(&v.to_string()), v);
        assert_eq!(Value::Null.to_string(), "");
    }

    #[test]
    fn accessors() {
        assert!(Value::Null.is_null());
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_str(), None);
        assert_eq!(Value::from("x").as_str(), Some("x"));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3u32), Value::Int(3));
        assert_eq!(Value::from(3usize), Value::Int(3));
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(9i64)), Value::Int(9));
    }
}
