//! Tables: named collections of equal-length columns.

use std::collections::HashMap;

use crate::column::Column;
use crate::value::Value;
use crate::RowId;

/// An immutable table.
///
/// Rows are addressed positionally by [`RowId`].  All columns have the same length.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    columns: Vec<Column>,
    by_name: HashMap<String, usize>,
    num_rows: usize,
}

impl Table {
    /// Creates a table from columns.  Panics if column lengths differ or names repeat.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        let num_rows = columns.first().map(|c| c.len()).unwrap_or(0);
        assert!(
            columns.iter().all(|c| c.len() == num_rows),
            "all columns of a table must have the same number of rows"
        );
        let mut by_name = HashMap::with_capacity(columns.len());
        for (i, c) in columns.iter().enumerate() {
            let prev = by_name.insert(c.name().to_string(), i);
            assert!(prev.is_none(), "duplicate column name {:?}", c.name());
        }
        Table {
            name: name.into(),
            columns,
            by_name,
            num_rows,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// All columns in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column names in declaration order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name()).collect()
    }

    /// Looks up a column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.by_name.get(name).map(|&i| &self.columns[i])
    }

    /// Positional index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Value of `column` at `row`.  Panics if the column does not exist.
    pub fn value(&self, column: &str, row: RowId) -> Value {
        self.column(column)
            .unwrap_or_else(|| panic!("no column {column:?} in table {:?}", self.name))
            .value(row as usize)
    }

    /// Materialises one row as a `Vec<Value>` in column declaration order.
    pub fn row(&self, row: RowId) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(row as usize)).collect()
    }

    /// Builds a new table containing only the given rows (in the given order), preserving
    /// column structure.  Used by the update experiments to form partitions.
    pub fn select_rows(&self, rows: &[RowId]) -> Table {
        let columns = self
            .columns
            .iter()
            .map(|c| {
                let vals: Vec<Value> = rows.iter().map(|&r| c.value(r as usize)).collect();
                Column::from_values(c.name(), &vals)
            })
            .collect();
        Table::new(self.name.clone(), columns)
    }

    /// Concatenates another table with an identical schema below this one.
    pub fn concat(&self, other: &Table) -> Table {
        assert_eq!(
            self.column_names(),
            other.column_names(),
            "concat requires identical schemas"
        );
        let columns = self
            .columns
            .iter()
            .zip(other.columns.iter())
            .map(|(a, b)| {
                let mut vals: Vec<Value> = a.iter().collect();
                vals.extend(b.iter());
                Column::from_values(a.name(), &vals)
            })
            .collect();
        Table::new(self.name.clone(), columns)
    }

    /// Approximate in-memory footprint in bytes (used for the "model size vs data size"
    /// reporting in the JOB-M experiment).
    pub fn approx_bytes(&self) -> usize {
        use crate::column::ColumnData;
        self.columns
            .iter()
            .map(|c| match c.data() {
                ColumnData::Int { values, validity } => values.len() * 8 + validity.len(),
                ColumnData::Str {
                    codes,
                    pool,
                    validity,
                } => codes.len() * 4 + validity.len() + pool.iter().map(|s| s.len()).sum::<usize>(),
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                Column::from_values("id", &[Value::Int(1), Value::Int(2), Value::Int(3)]),
                Column::from_values("name", &[Value::from("a"), Value::Null, Value::from("c")]),
            ],
        )
    }

    #[test]
    fn basic_accessors() {
        let t = table();
        assert_eq!(t.name(), "t");
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.column_names(), vec!["id", "name"]);
        assert_eq!(t.value("id", 2), Value::Int(3));
        assert_eq!(t.row(1), vec![Value::Int(2), Value::Null]);
        assert_eq!(t.column_index("name"), Some(1));
        assert!(t.column("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "same number of rows")]
    fn mismatched_lengths_panic() {
        Table::new(
            "bad",
            vec![
                Column::from_values("a", &[Value::Int(1)]),
                Column::from_values("b", &[Value::Int(1), Value::Int(2)]),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_columns_panic() {
        Table::new(
            "bad",
            vec![
                Column::from_values("a", &[Value::Int(1)]),
                Column::from_values("a", &[Value::Int(2)]),
            ],
        );
    }

    #[test]
    fn select_rows_and_concat() {
        let t = table();
        let head = t.select_rows(&[0, 1]);
        let tail = t.select_rows(&[2]);
        assert_eq!(head.num_rows(), 2);
        assert_eq!(tail.num_rows(), 1);
        let whole = head.concat(&tail);
        assert_eq!(whole.num_rows(), 3);
        assert_eq!(whole.row(2), t.row(2));
    }

    #[test]
    fn approx_bytes_positive() {
        assert!(table().approx_bytes() > 0);
    }
}
