//! Checked little-endian binary encoding of storage types.
//!
//! Used by the model-artifact format to persist column dictionaries (and the [`Value`]s
//! inside them) without going through JSON.  Reads are fully validated: a truncated or
//! corrupt stream yields a [`BinError`] instead of a panic, which is what an artifact
//! loader needs when handed arbitrary bytes.

use crate::dict::ColumnDictionary;
use crate::value::Value;

/// Why a binary decode failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinError {
    /// The stream ended before the value was complete.
    Truncated,
    /// An unknown type tag was encountered.
    BadTag(u8),
    /// A string payload was not valid UTF-8.
    BadUtf8,
    /// A length prefix exceeds the remaining input (corrupt or hostile stream).
    BadLength(u64),
}

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinError::Truncated => write!(f, "binary stream ended early"),
            BinError::BadTag(t) => write!(f, "unknown type tag {t:#04x}"),
            BinError::BadUtf8 => write!(f, "string payload is not valid UTF-8"),
            BinError::BadLength(n) => write!(f, "length prefix {n} exceeds remaining input"),
        }
    }
}

impl std::error::Error for BinError {}

/// A checked read cursor over a byte slice.
#[derive(Debug)]
pub struct BinReader<'a> {
    buf: &'a [u8],
}

impl<'a> BinReader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        BinReader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Whether the whole input was consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        if self.buf.len() < n {
            return Err(BinError::Truncated);
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, BinError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, BinError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, BinError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, BinError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, BinError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads a `u64` length prefix, validated against the remaining input so corrupt
    /// prefixes cannot trigger huge allocations.
    pub fn len(&mut self) -> Result<usize, BinError> {
        let n = self.u64()?;
        if n > self.buf.len() as u64 {
            return Err(BinError::BadLength(n));
        }
        Ok(n as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, BinError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        std::str::from_utf8(bytes)
            .map(str::to_string)
            .map_err(|_| BinError::BadUtf8)
    }
}

/// Writes a length-prefixed UTF-8 string.
pub fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u64).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_STR: u8 = 2;

impl Value {
    /// Appends the tagged binary encoding of this value.
    pub fn write_binary(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(TAG_NULL),
            Value::Int(i) => {
                out.push(TAG_INT);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(TAG_STR);
                put_string(out, s);
            }
        }
    }

    /// Reads a value written by [`Value::write_binary`].
    pub fn read_binary(r: &mut BinReader<'_>) -> Result<Value, BinError> {
        match r.u8()? {
            TAG_NULL => Ok(Value::Null),
            TAG_INT => Ok(Value::Int(r.i64()?)),
            TAG_STR => Ok(Value::from(r.string()?)),
            tag => Err(BinError::BadTag(tag)),
        }
    }
}

impl ColumnDictionary {
    /// Binary encoding: value count then each distinct value in code order.
    pub fn to_binary(&self) -> Vec<u8> {
        let values = self.values();
        let mut out = Vec::with_capacity(8 + values.len() * 9);
        out.extend_from_slice(&(values.len() as u64).to_le_bytes());
        for v in values {
            v.write_binary(&mut out);
        }
        out
    }

    /// Reads a dictionary written by [`ColumnDictionary::to_binary`], revalidating the
    /// strict value ordering the dictionary's binary searches rely on.
    pub fn read_binary(r: &mut BinReader<'_>) -> Result<ColumnDictionary, BinError> {
        let count = r.u64()?;
        let mut values = Vec::with_capacity(count.min(1 << 20) as usize);
        for _ in 0..count {
            values.push(Value::read_binary(r)?);
        }
        if !values.windows(2).all(|w| w[0] < w[1]) {
            return Err(BinError::BadLength(count));
        }
        Ok(ColumnDictionary::from_sorted_values(values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    #[test]
    fn values_round_trip() {
        let values = [
            Value::Null,
            Value::Int(0),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::from(""),
            Value::from("caf\u{e9} \u{1F600}"),
        ];
        let mut out = Vec::new();
        for v in &values {
            v.write_binary(&mut out);
        }
        let mut r = BinReader::new(&out);
        for v in &values {
            assert_eq!(&Value::read_binary(&mut r).unwrap(), v);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn dictionary_round_trips_and_validates() {
        let col = Column::from_values(
            "c",
            &[
                Value::Int(30),
                Value::Null,
                Value::Int(10),
                Value::from("z"),
                Value::Int(10),
            ],
        );
        let dict = ColumnDictionary::from_column(&col);
        let bytes = dict.to_binary();
        let mut r = BinReader::new(&bytes);
        let back = ColumnDictionary::read_binary(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(back.values(), dict.values());
        assert_eq!(back.encode(&Value::Int(10)), dict.encode(&Value::Int(10)));

        // Unsorted payloads are rejected (corrupt stream).
        let mut evil = Vec::new();
        evil.extend_from_slice(&2u64.to_le_bytes());
        Value::Int(5).write_binary(&mut evil);
        Value::Int(3).write_binary(&mut evil);
        assert!(ColumnDictionary::read_binary(&mut BinReader::new(&evil)).is_err());
    }

    #[test]
    fn corrupt_streams_error_cleanly() {
        let mut out = Vec::new();
        Value::from("hello").write_binary(&mut out);
        // Truncations at every prefix length.
        for cut in 0..out.len() {
            assert!(Value::read_binary(&mut BinReader::new(&out[..cut])).is_err());
        }
        // Unknown tag.
        assert_eq!(
            Value::read_binary(&mut BinReader::new(&[9u8])),
            Err(BinError::BadTag(9))
        );
        // Hostile length prefix does not allocate.
        let mut evil = vec![TAG_STR];
        evil.extend_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            Value::read_binary(&mut BinReader::new(&evil)),
            Err(BinError::BadLength(u64::MAX))
        );
        // Invalid UTF-8.
        let mut bad = vec![TAG_STR];
        bad.extend_from_slice(&2u64.to_le_bytes());
        bad.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(
            Value::read_binary(&mut BinReader::new(&bad)),
            Err(BinError::BadUtf8)
        );
        for e in [
            BinError::Truncated,
            BinError::BadTag(1),
            BinError::BadUtf8,
            BinError::BadLength(2),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
