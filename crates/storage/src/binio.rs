//! Checked little-endian binary encoding of storage types.
//!
//! Used by the model-artifact format to persist column dictionaries (and the [`Value`]s
//! inside them) without going through JSON.  Reads are fully validated: a truncated or
//! corrupt stream yields a [`BinError`] instead of a panic, which is what an artifact
//! loader needs when handed arbitrary bytes.

use crate::dict::ColumnDictionary;
use crate::value::Value;

/// Why a binary decode failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinError {
    /// The stream ended before the value was complete.
    Truncated,
    /// An unknown type tag was encountered.
    BadTag(u8),
    /// A string payload was not valid UTF-8.
    BadUtf8,
    /// A length prefix exceeds the remaining input (corrupt or hostile stream).
    BadLength(u64),
}

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinError::Truncated => write!(f, "binary stream ended early"),
            BinError::BadTag(t) => write!(f, "unknown type tag {t:#04x}"),
            BinError::BadUtf8 => write!(f, "string payload is not valid UTF-8"),
            BinError::BadLength(n) => write!(f, "length prefix {n} exceeds remaining input"),
        }
    }
}

impl std::error::Error for BinError {}

/// A checked read cursor over a byte slice.
#[derive(Debug)]
pub struct BinReader<'a> {
    buf: &'a [u8],
}

impl<'a> BinReader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        BinReader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Whether the whole input was consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        if self.buf.len() < n {
            return Err(BinError::Truncated);
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, BinError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, BinError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, BinError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, BinError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, BinError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads a `u64` length prefix, validated against the remaining input so corrupt
    /// prefixes cannot trigger huge allocations.
    pub fn len(&mut self) -> Result<usize, BinError> {
        let n = self.u64()?;
        if n > self.buf.len() as u64 {
            return Err(BinError::BadLength(n));
        }
        Ok(n as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, BinError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        std::str::from_utf8(bytes)
            .map(str::to_string)
            .map_err(|_| BinError::BadUtf8)
    }
}

/// Writes a length-prefixed UTF-8 string.
pub fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u64).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Converts an `f32` to bfloat16 (the upper 16 bits of the IEEE 754 single layout: 1 sign
/// bit, 8 exponent bits, 7 mantissa bits) with round-to-nearest-even on the truncated
/// mantissa.
///
/// bf16 keeps the full f32 exponent range, so no finite weight over- or underflows; the
/// mantissa truncation bounds the relative error of any finite normal value by `2⁻⁸`.
/// NaNs are canonicalised (quiet bit forced) so a NaN never rounds into the infinity bit
/// pattern.
pub fn f32_to_bf16(v: f32) -> u16 {
    let bits = v.to_bits();
    if v.is_nan() {
        // Preserve sign, force a quiet NaN payload that survives truncation.
        return ((bits >> 16) as u16) | 0x0040;
    }
    // Round to nearest, ties to even: add 0x7FFF plus the lowest kept bit.
    let round = 0x7FFF + ((bits >> 16) & 1);
    ((bits + round) >> 16) as u16
}

/// Expands a bfloat16 (as produced by [`f32_to_bf16`]) back to `f32` — exact, since every
/// bf16 value is representable in f32.
pub fn bf16_to_f32(h: u16) -> f32 {
    f32::from_bits((h as u32) << 16)
}

/// Appends a slice of `f32`s as little-endian bf16 values (2 bytes each, no length
/// prefix — callers frame the slice themselves).
pub fn put_bf16_slice(out: &mut Vec<u8>, values: &[f32]) {
    out.reserve(values.len() * 2);
    for &v in values {
        out.extend_from_slice(&f32_to_bf16(v).to_le_bytes());
    }
}

impl<'a> BinReader<'a> {
    /// Reads `count` little-endian bf16 values, expanded to `f32`.  A truncated stream
    /// yields [`BinError::Truncated`] before anything is allocated beyond the checked
    /// count.
    pub fn bf16_slice(&mut self, count: usize) -> Result<Vec<f32>, BinError> {
        let bytes = self.take(count.checked_mul(2).ok_or(BinError::Truncated)?)?;
        Ok(bytes
            .chunks_exact(2)
            .map(|c| bf16_to_f32(u16::from_le_bytes([c[0], c[1]])))
            .collect())
    }
}

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_STR: u8 = 2;

impl Value {
    /// Appends the tagged binary encoding of this value.
    pub fn write_binary(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(TAG_NULL),
            Value::Int(i) => {
                out.push(TAG_INT);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(TAG_STR);
                put_string(out, s);
            }
        }
    }

    /// Reads a value written by [`Value::write_binary`].
    pub fn read_binary(r: &mut BinReader<'_>) -> Result<Value, BinError> {
        match r.u8()? {
            TAG_NULL => Ok(Value::Null),
            TAG_INT => Ok(Value::Int(r.i64()?)),
            TAG_STR => Ok(Value::from(r.string()?)),
            tag => Err(BinError::BadTag(tag)),
        }
    }
}

impl ColumnDictionary {
    /// Binary encoding: value count then each distinct value in code order.
    pub fn to_binary(&self) -> Vec<u8> {
        let values = self.values();
        let mut out = Vec::with_capacity(8 + values.len() * 9);
        out.extend_from_slice(&(values.len() as u64).to_le_bytes());
        for v in values {
            v.write_binary(&mut out);
        }
        out
    }

    /// Reads a dictionary written by [`ColumnDictionary::to_binary`], revalidating the
    /// strict value ordering the dictionary's binary searches rely on.
    pub fn read_binary(r: &mut BinReader<'_>) -> Result<ColumnDictionary, BinError> {
        let count = r.u64()?;
        let mut values = Vec::with_capacity(count.min(1 << 20) as usize);
        for _ in 0..count {
            values.push(Value::read_binary(r)?);
        }
        if !values.windows(2).all(|w| w[0] < w[1]) {
            return Err(BinError::BadLength(count));
        }
        Ok(ColumnDictionary::from_sorted_values(values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    #[test]
    fn values_round_trip() {
        let values = [
            Value::Null,
            Value::Int(0),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::from(""),
            Value::from("caf\u{e9} \u{1F600}"),
        ];
        let mut out = Vec::new();
        for v in &values {
            v.write_binary(&mut out);
        }
        let mut r = BinReader::new(&out);
        for v in &values {
            assert_eq!(&Value::read_binary(&mut r).unwrap(), v);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn dictionary_round_trips_and_validates() {
        let col = Column::from_values(
            "c",
            &[
                Value::Int(30),
                Value::Null,
                Value::Int(10),
                Value::from("z"),
                Value::Int(10),
            ],
        );
        let dict = ColumnDictionary::from_column(&col);
        let bytes = dict.to_binary();
        let mut r = BinReader::new(&bytes);
        let back = ColumnDictionary::read_binary(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(back.values(), dict.values());
        assert_eq!(back.encode(&Value::Int(10)), dict.encode(&Value::Int(10)));

        // Unsorted payloads are rejected (corrupt stream).
        let mut evil = Vec::new();
        evil.extend_from_slice(&2u64.to_le_bytes());
        Value::Int(5).write_binary(&mut evil);
        Value::Int(3).write_binary(&mut evil);
        assert!(ColumnDictionary::read_binary(&mut BinReader::new(&evil)).is_err());
    }

    #[test]
    fn bf16_codec_round_trips_within_bound() {
        // Exactly representable values survive unchanged.
        for v in [
            0.0f32,
            -0.0,
            1.0,
            -2.5,
            0.15625,
            f32::INFINITY,
            f32::NEG_INFINITY,
        ] {
            assert_eq!(bf16_to_f32(f32_to_bf16(v)).to_bits(), v.to_bits(), "{v}");
        }
        assert!(bf16_to_f32(f32_to_bf16(f32::NAN)).is_nan());
        // Relative error of any finite normal value is ≤ 2⁻⁸ (7 mantissa bits +
        // round-to-nearest halves the truncation error).
        let mut s = 0x1234_5678_u32;
        for _ in 0..10_000 {
            s = s.wrapping_mul(747796405).wrapping_add(2891336453);
            let v = f32::from_bits((s % 0x7F7F_FFFF) | (s & 0x8000_0000));
            if !v.is_finite() || v.abs() < f32::MIN_POSITIVE {
                continue;
            }
            let back = bf16_to_f32(f32_to_bf16(v));
            assert!(
                (back - v).abs() <= v.abs() / 256.0,
                "{v} -> {back} exceeds 2^-8 relative error"
            );
        }
        // The round trip is idempotent: re-quantising a quantised value is the identity.
        for v in [3.14159f32, -1e-20, 1e20, 0.1] {
            let q = bf16_to_f32(f32_to_bf16(v));
            assert_eq!(f32_to_bf16(q), f32_to_bf16(v));
            assert_eq!(bf16_to_f32(f32_to_bf16(q)).to_bits(), q.to_bits());
        }
        // Ties round to even.
        assert_eq!(f32_to_bf16(f32::from_bits(0x3F80_8000)), 0x3F80); // 1.00390625 -> 1.0
        assert_eq!(f32_to_bf16(f32::from_bits(0x3F81_8000)), 0x3F82); // next tie rounds up
    }

    #[test]
    fn bf16_slices_round_trip_and_validate() {
        let values = [1.5f32, -0.25, 1e10, -3.0e-12, 0.0];
        let mut out = Vec::new();
        put_bf16_slice(&mut out, &values);
        assert_eq!(out.len(), values.len() * 2);
        let mut r = BinReader::new(&out);
        let back = r.bf16_slice(values.len()).unwrap();
        assert!(r.is_empty());
        for (v, b) in values.iter().zip(&back) {
            assert_eq!(b.to_bits(), bf16_to_f32(f32_to_bf16(*v)).to_bits());
        }
        // Reading more than the stream holds is a typed error, not a panic.
        assert_eq!(
            BinReader::new(&out).bf16_slice(values.len() + 1),
            Err(BinError::Truncated)
        );
        assert_eq!(
            BinReader::new(&out).bf16_slice(usize::MAX),
            Err(BinError::Truncated)
        );
    }

    #[test]
    fn corrupt_streams_error_cleanly() {
        let mut out = Vec::new();
        Value::from("hello").write_binary(&mut out);
        // Truncations at every prefix length.
        for cut in 0..out.len() {
            assert!(Value::read_binary(&mut BinReader::new(&out[..cut])).is_err());
        }
        // Unknown tag.
        assert_eq!(
            Value::read_binary(&mut BinReader::new(&[9u8])),
            Err(BinError::BadTag(9))
        );
        // Hostile length prefix does not allocate.
        let mut evil = vec![TAG_STR];
        evil.extend_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            Value::read_binary(&mut BinReader::new(&evil)),
            Err(BinError::BadLength(u64::MAX))
        );
        // Invalid UTF-8.
        let mut bad = vec![TAG_STR];
        bad.extend_from_slice(&2u64.to_le_bytes());
        bad.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(
            Value::read_binary(&mut BinReader::new(&bad)),
            Err(BinError::BadUtf8)
        );
        for e in [
            BinError::Truncated,
            BinError::BadTag(1),
            BinError::BadUtf8,
            BinError::BadLength(2),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
