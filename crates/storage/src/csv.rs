//! Minimal CSV import/export.
//!
//! The real NeuroCard ingests the IMDB CSV exports.  Our synthetic datasets are generated
//! in-process, but a CSV round-trip is provided so example programs can persist and reload
//! generated data and so users can point the library at their own small CSV files.
//!
//! The dialect is deliberately simple: comma separator, double-quote quoting with `""`
//! escapes, first line is the header, empty unquoted fields are NULL.

use std::fmt::Write as _;

use crate::builder::TableBuilder;
use crate::table::Table;
use crate::value::Value;

/// Errors produced by the CSV reader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The input had no header line.
    MissingHeader,
    /// A data line had a different number of fields than the header.
    ArityMismatch {
        /// 1-based line number of the offending row.
        line: usize,
        /// Fields found on that line.
        found: usize,
        /// Fields declared by the header.
        expected: usize,
    },
    /// A quoted field was not terminated before end of input.
    UnterminatedQuote {
        /// 1-based line number where the field started.
        line: usize,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::MissingHeader => write!(f, "CSV input has no header line"),
            CsvError::ArityMismatch {
                line,
                found,
                expected,
            } => write!(
                f,
                "CSV line {line}: found {found} fields, expected {expected}"
            ),
            CsvError::UnterminatedQuote { line } => {
                write!(f, "CSV line {line}: unterminated quoted field")
            }
        }
    }
}

impl std::error::Error for CsvError {}

/// Parses CSV text into a [`Table`] named `table_name`.
pub fn read_csv_str(table_name: &str, input: &str) -> Result<Table, CsvError> {
    let mut lines = split_records(input)?;
    if lines.is_empty() {
        return Err(CsvError::MissingHeader);
    }
    let header = lines.remove(0);
    let names: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut builder = TableBuilder::new(table_name, &names);
    for (i, record) in lines.into_iter().enumerate() {
        if record.len() != names.len() {
            return Err(CsvError::ArityMismatch {
                line: i + 2,
                found: record.len(),
                expected: names.len(),
            });
        }
        builder.push_row(record.iter().map(|f| Value::parse(f)).collect());
    }
    Ok(builder.finish())
}

/// Serialises a table to CSV text (header + rows).
pub fn write_csv_string(table: &Table) -> String {
    let mut out = String::new();
    let names = table.column_names();
    out.push_str(&names.join(","));
    out.push('\n');
    for row in 0..table.num_rows() {
        let mut first = true;
        for col in table.columns() {
            if !first {
                out.push(',');
            }
            first = false;
            let v = col.value(row);
            write_field(&mut out, &v);
        }
        out.push('\n');
    }
    out
}

fn write_field(out: &mut String, v: &Value) {
    match v {
        Value::Null => {}
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Str(s) => {
            if s.contains(',') || s.contains('"') || s.contains('\n') || s.is_empty() {
                out.push('"');
                out.push_str(&s.replace('"', "\"\""));
                out.push('"');
            } else {
                out.push_str(s);
            }
        }
    }
}

/// Splits CSV text into records of fields, honouring quotes across newlines.
fn split_records(input: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut records = Vec::new();
    let mut field = String::new();
    let mut record: Vec<String> = Vec::new();
    let mut in_quotes = false;
    let mut was_quoted = false;
    let mut line = 1usize;
    let mut chars = input.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    in_quotes = true;
                    was_quoted = true;
                }
                ',' => {
                    push_field(&mut record, &mut field, &mut was_quoted);
                }
                '\n' => {
                    line += 1;
                    push_field(&mut record, &mut field, &mut was_quoted);
                    if !(record.len() == 1 && record[0].is_empty()) {
                        records.push(std::mem::take(&mut record));
                    } else {
                        record.clear();
                    }
                }
                '\r' => {}
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote { line });
    }
    if !field.is_empty() || !record.is_empty() {
        push_field(&mut record, &mut field, &mut was_quoted);
        records.push(record);
    }
    Ok(records)
}

fn push_field(record: &mut Vec<String>, field: &mut String, was_quoted: &mut bool) {
    // A quoted empty field is an empty string; an unquoted empty field is NULL. The Value
    // parser treats "" as NULL either way, which is acceptable for our workloads.
    let _ = was_quoted;
    record.push(std::mem::take(field));
    *was_quoted = false;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TableBuilder;

    #[test]
    fn roundtrip_simple() {
        let csv = "id,name,year\n1,alpha,1994\n2,,2001\n3,\"has, comma\",\n";
        let t = read_csv_str("t", csv).unwrap();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.value("id", 0), Value::Int(1));
        assert_eq!(t.value("name", 1), Value::Null);
        assert_eq!(t.value("name", 2), Value::from("has, comma"));
        assert_eq!(t.value("year", 2), Value::Null);

        let back = write_csv_string(&t);
        let t2 = read_csv_str("t", &back).unwrap();
        assert_eq!(t2.num_rows(), t.num_rows());
        for r in 0..t.num_rows() {
            assert_eq!(t.row(r as u32), t2.row(r as u32));
        }
    }

    #[test]
    fn quoted_quotes_and_newlines() {
        let csv = "a,b\n\"say \"\"hi\"\"\",\"line1\nline2\"\n";
        let t = read_csv_str("t", csv).unwrap();
        assert_eq!(t.value("a", 0), Value::from("say \"hi\""));
        assert_eq!(t.value("b", 0), Value::from("line1\nline2"));
        let back = write_csv_string(&t);
        let t2 = read_csv_str("t", &back).unwrap();
        assert_eq!(t2.row(0), t.row(0));
    }

    #[test]
    fn errors_reported() {
        assert!(matches!(
            read_csv_str("t", ""),
            Err(CsvError::MissingHeader)
        ));
        let err = read_csv_str("t", "a,b\n1\n").unwrap_err();
        assert!(matches!(err, CsvError::ArityMismatch { line: 2, .. }));
        let err = read_csv_str("t", "a\n\"oops\n").unwrap_err();
        assert!(matches!(err, CsvError::UnterminatedQuote { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn write_handles_special_strings() {
        let mut b = TableBuilder::new("t", &["s"]);
        b.push_row(vec![Value::from("")]);
        b.push_row(vec![Value::from("plain")]);
        let t = b.finish();
        let csv = write_csv_string(&t);
        assert!(csv.contains("\"\""));
        assert!(csv.contains("plain"));
    }

    #[test]
    fn trailing_newline_optional() {
        let t = read_csv_str("t", "a,b\n1,2").unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.value("b", 0), Value::Int(2));
    }
}
