//! Typed columnar storage.
//!
//! Two physical layouts are supported:
//!
//! * [`ColumnData::Int`] — a dense `Vec<i64>` plus a validity mask (NULLs),
//! * [`ColumnData::Str`] — dictionary-encoded strings: a `Vec<u32>` of codes into a
//!   per-column string pool plus a validity mask.
//!
//! Both layouts expose a uniform [`Value`]-based accessor so higher layers (the executor,
//! the sampler, the estimators) never need to branch on physical type, while hot paths
//! (join-key hashing, fanout counting) can go through the typed accessors.

use std::collections::HashMap;
use std::sync::Arc;

use crate::value::Value;

/// Physical data of one column.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Dense 64-bit integers with a validity mask (`false` = NULL; the slot in `values`
    /// is then meaningless but kept so indexes stay positional).
    Int {
        values: Vec<i64>,
        validity: Vec<bool>,
    },
    /// Dictionary-encoded strings. `codes[i]` indexes into `pool`; validity as above.
    Str {
        codes: Vec<u32>,
        pool: Vec<Arc<str>>,
        validity: Vec<bool>,
    },
}

/// A named column of a table.
#[derive(Debug, Clone)]
pub struct Column {
    name: String,
    data: ColumnData,
}

impl Column {
    /// Builds a column from an iterator of values.
    ///
    /// The physical layout is chosen from the first non-NULL value; mixing integers and
    /// strings in one column falls back to the string layout (integers are formatted).
    pub fn from_values(name: impl Into<String>, values: &[Value]) -> Self {
        let is_int = values
            .iter()
            .find(|v| !v.is_null())
            .map(|v| matches!(v, Value::Int(_)))
            .unwrap_or(true);
        let all_typed_ok = values
            .iter()
            .all(|v| v.is_null() || matches!(v, Value::Int(_)) == is_int);
        if is_int && all_typed_ok {
            let mut vals = Vec::with_capacity(values.len());
            let mut validity = Vec::with_capacity(values.len());
            for v in values {
                match v {
                    Value::Int(i) => {
                        vals.push(*i);
                        validity.push(true);
                    }
                    _ => {
                        vals.push(0);
                        validity.push(false);
                    }
                }
            }
            Column {
                name: name.into(),
                data: ColumnData::Int {
                    values: vals,
                    validity,
                },
            }
        } else {
            let mut codes = Vec::with_capacity(values.len());
            let mut validity = Vec::with_capacity(values.len());
            let mut pool: Vec<Arc<str>> = Vec::new();
            let mut pool_lookup: HashMap<Arc<str>, u32> = HashMap::new();
            for v in values {
                match v {
                    Value::Null => {
                        codes.push(0);
                        validity.push(false);
                    }
                    other => {
                        let s: Arc<str> = match other {
                            Value::Str(s) => s.clone(),
                            Value::Int(i) => Arc::from(i.to_string().as_str()),
                            Value::Null => unreachable!(),
                        };
                        let code = *pool_lookup.entry(s.clone()).or_insert_with(|| {
                            pool.push(s.clone());
                            (pool.len() - 1) as u32
                        });
                        codes.push(code);
                        validity.push(true);
                    }
                }
            }
            Column {
                name: name.into(),
                data: ColumnData::Str {
                    codes,
                    pool,
                    validity,
                },
            }
        }
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::Int { values, .. } => values.len(),
            ColumnData::Str { codes, .. } => codes.len(),
        }
    }

    /// Whether the column has zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Physical data.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Value at `row` (NULL-aware).
    ///
    /// Panics if `row` is out of bounds.
    pub fn value(&self, row: usize) -> Value {
        match &self.data {
            ColumnData::Int { values, validity } => {
                if validity[row] {
                    Value::Int(values[row])
                } else {
                    Value::Null
                }
            }
            ColumnData::Str {
                codes,
                pool,
                validity,
            } => {
                if validity[row] {
                    Value::Str(pool[codes[row] as usize].clone())
                } else {
                    Value::Null
                }
            }
        }
    }

    /// Whether the value at `row` is NULL.
    pub fn is_null(&self, row: usize) -> bool {
        match &self.data {
            ColumnData::Int { validity, .. } | ColumnData::Str { validity, .. } => !validity[row],
        }
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        match &self.data {
            ColumnData::Int { validity, .. } | ColumnData::Str { validity, .. } => {
                validity.iter().filter(|v| !**v).count()
            }
        }
    }

    /// Distinct non-NULL values, sorted by the [`Value`] total order.
    pub fn distinct_values(&self) -> Vec<Value> {
        let mut out: Vec<Value> = match &self.data {
            ColumnData::Int { values, validity } => {
                let mut v: Vec<i64> = values
                    .iter()
                    .zip(validity)
                    .filter(|(_, ok)| **ok)
                    .map(|(v, _)| *v)
                    .collect();
                v.sort_unstable();
                v.dedup();
                v.into_iter().map(Value::Int).collect()
            }
            ColumnData::Str { pool, .. } => {
                let mut v: Vec<Arc<str>> = pool.clone();
                v.sort();
                v.dedup();
                v.into_iter().map(Value::Str).collect()
            }
        };
        out.dedup();
        out
    }

    /// Number of distinct non-NULL values.
    pub fn distinct_count(&self) -> usize {
        self.distinct_values().len()
    }

    /// Occurrence count of each non-NULL value in this column (the per-key *fanout* of the
    /// paper's virtual fanout columns when this column is a join key).
    pub fn value_counts(&self) -> HashMap<Value, u64> {
        let mut out: HashMap<Value, u64> = HashMap::new();
        for row in 0..self.len() {
            let v = self.value(row);
            if !v.is_null() {
                *out.entry(v).or_insert(0) += 1;
            }
        }
        out
    }

    /// Iterator over all values (NULL-aware).
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |r| self.value(r))
    }

    /// Returns the minimum and maximum non-NULL value, if any.
    pub fn min_max(&self) -> Option<(Value, Value)> {
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        for v in self.iter().filter(|v| !v.is_null()) {
            match &mut min {
                None => min = Some(v.clone()),
                Some(m) if v < *m => *m = v.clone(),
                _ => {}
            }
            match &mut max {
                None => max = Some(v),
                Some(m) => {
                    if *m < v {
                        *m = v;
                    }
                }
            }
        }
        min.zip(max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_col() -> Column {
        Column::from_values(
            "c",
            &[
                Value::Int(3),
                Value::Null,
                Value::Int(1),
                Value::Int(3),
                Value::Int(2),
            ],
        )
    }

    fn str_col() -> Column {
        Column::from_values(
            "s",
            &[
                Value::from("b"),
                Value::from("a"),
                Value::Null,
                Value::from("b"),
            ],
        )
    }

    #[test]
    fn int_column_roundtrip() {
        let c = int_col();
        assert_eq!(c.len(), 5);
        assert_eq!(c.value(0), Value::Int(3));
        assert_eq!(c.value(1), Value::Null);
        assert!(c.is_null(1));
        assert_eq!(c.null_count(), 1);
        assert!(matches!(c.data(), ColumnData::Int { .. }));
    }

    #[test]
    fn str_column_roundtrip() {
        let c = str_col();
        assert_eq!(c.len(), 4);
        assert_eq!(c.value(0), Value::from("b"));
        assert_eq!(c.value(2), Value::Null);
        assert_eq!(c.distinct_count(), 2);
        assert!(matches!(c.data(), ColumnData::Str { .. }));
    }

    #[test]
    fn mixed_column_falls_back_to_strings() {
        let c = Column::from_values("m", &[Value::Int(1), Value::from("x")]);
        assert!(matches!(c.data(), ColumnData::Str { .. }));
        assert_eq!(c.value(0), Value::from("1"));
        assert_eq!(c.value(1), Value::from("x"));
    }

    #[test]
    fn distinct_values_sorted() {
        let c = int_col();
        assert_eq!(
            c.distinct_values(),
            vec![Value::Int(1), Value::Int(2), Value::Int(3)]
        );
        let s = str_col();
        assert_eq!(
            s.distinct_values(),
            vec![Value::from("a"), Value::from("b")]
        );
    }

    #[test]
    fn value_counts_and_minmax() {
        let c = int_col();
        let counts = c.value_counts();
        assert_eq!(counts[&Value::Int(3)], 2);
        assert_eq!(counts[&Value::Int(1)], 1);
        assert_eq!(counts.len(), 3);
        assert_eq!(c.min_max(), Some((Value::Int(1), Value::Int(3))));

        let empty = Column::from_values("e", &[Value::Null]);
        assert_eq!(empty.min_max(), None);
        assert!(!empty.is_empty());
    }

    #[test]
    fn all_null_column_defaults_to_int_layout() {
        let c = Column::from_values("n", &[Value::Null, Value::Null]);
        assert!(matches!(c.data(), ColumnData::Int { .. }));
        assert_eq!(c.null_count(), 2);
        assert_eq!(c.distinct_count(), 0);
    }
}
