//! Offline, API-compatible subset of `serde`.
//!
//! The workspace builds without a crate registry, so this shim supplies the pieces the
//! reproduction actually uses: `#[derive(Serialize, Deserialize)]` on plain structs and
//! enums, plus enough of a data model for `serde_json::to_string_pretty` to render them
//! and `serde_json::from_str` to parse them back.
//!
//! Instead of serde's visitor-based data model, [`Serialize`] lowers values directly into
//! an owned [`Json`] tree that `serde_json` then formats, and [`Deserialize`] lifts values
//! back out of a parsed [`Json`] tree via [`Deserialize::from_json`].  The derive macros
//! generate both directions, so `#[derive(Serialize, Deserialize)]` types round-trip
//! through JSON text (the artifact manifest and `HarnessConfig` rely on this).

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON tree — the (de)serialisation data model of this shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    /// Insertion-ordered object (matches struct field order).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Short description of the node kind, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) | Json::UInt(_) => "integer",
            Json::Float(_) => "float",
            Json::Str(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }
}

/// Types that can be lowered to a [`Json`] tree.
pub trait Serialize {
    fn to_json(&self) -> Json;
}

/// Error produced by [`Deserialize::from_json`] (and `serde_json::from_str`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// An error with a rendered message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can be lifted back out of a [`Json`] tree.
///
/// The `'de` lifetime exists only for signature compatibility with real serde (this shim
/// always deserialises from an owned tree).
pub trait Deserialize<'de>: Sized {
    /// Reconstructs a value from a parsed [`Json`] node.
    fn from_json(v: &Json) -> Result<Self, DeError>;
}

/// Helper functions the `#[derive(Deserialize)]` expansion calls into.
pub mod de {
    use super::{DeError, Json};

    static NULL: Json = Json::Null;

    /// A "found X, expected Y while reading Z" error.
    pub fn unexpected(ty: &str, expected: &str, v: &Json) -> DeError {
        DeError(format!("{ty}: expected {expected}, found {}", v.kind()))
    }

    /// An unknown enum variant error.
    pub fn unknown_variant(ty: &str, variant: &str) -> DeError {
        DeError(format!("{ty}: unknown variant {variant:?}"))
    }

    /// Looks up a struct field inside an object node.  Missing fields resolve to `null`
    /// so `Option<T>` fields default to `None`.
    pub fn field<'a>(v: &'a Json, ty: &str, name: &str) -> Result<&'a Json, DeError> {
        match v {
            Json::Object(entries) => Ok(entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL)),
            other => Err(unexpected(ty, "an object", other)),
        }
    }

    /// Expects an array of exactly `arity` elements (tuple structs / tuple variants).
    pub fn tuple<'a>(v: &'a Json, ty: &str, arity: usize) -> Result<&'a [Json], DeError> {
        match v {
            Json::Array(items) if items.len() == arity => Ok(items),
            Json::Array(items) => Err(DeError(format!(
                "{ty}: expected an array of {arity} elements, found {}",
                items.len()
            ))),
            other => Err(unexpected(ty, "an array", other)),
        }
    }

    /// Expects an array of any length.
    pub fn array<'a>(v: &'a Json, ty: &str) -> Result<&'a [Json], DeError> {
        match v {
            Json::Array(items) => Ok(items),
            other => Err(unexpected(ty, "an array", other)),
        }
    }

    /// Expects an object node and returns its entries.
    pub fn object<'a>(v: &'a Json, ty: &str) -> Result<&'a [(String, Json)], DeError> {
        match v {
            Json::Object(entries) => Ok(entries),
            other => Err(unexpected(ty, "an object", other)),
        }
    }

    /// Signed integer payload of a numeric node (floats must be integral).
    pub fn as_i64(v: &Json, ty: &str) -> Result<i64, DeError> {
        match v {
            Json::Int(i) => Ok(*i),
            Json::UInt(u) => {
                i64::try_from(*u).map_err(|_| DeError(format!("{ty}: integer {u} overflows i64")))
            }
            Json::Float(f) if f.fract() == 0.0 && f.abs() < 9.22e18 => Ok(*f as i64),
            other => Err(unexpected(ty, "an integer", other)),
        }
    }

    /// Unsigned integer payload of a numeric node.
    pub fn as_u64(v: &Json, ty: &str) -> Result<u64, DeError> {
        match v {
            Json::UInt(u) => Ok(*u),
            Json::Int(i) => {
                u64::try_from(*i).map_err(|_| DeError(format!("{ty}: integer {i} is negative")))
            }
            // `u64::MAX as f64` rounds up to 2^64 exactly; requiring f < 2^64 keeps the
            // cast lossless instead of letting Rust's saturating cast hide an overflow.
            Json::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f < u64::MAX as f64 => {
                Ok(*f as u64)
            }
            other => Err(unexpected(ty, "an unsigned integer", other)),
        }
    }

    /// Float payload of any numeric node.
    pub fn as_f64(v: &Json, ty: &str) -> Result<f64, DeError> {
        match v {
            Json::Float(f) => Ok(*f),
            Json::Int(i) => Ok(*i as f64),
            Json::UInt(u) => Ok(*u as f64),
            other => Err(unexpected(ty, "a number", other)),
        }
    }
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json { Json::Int(*self as i64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_json(v: &Json) -> Result<Self, DeError> {
                let i = de::as_i64(v, stringify!($t))?;
                <$t>::try_from(i).map_err(|_| {
                    DeError(format!(concat!("value {} does not fit in ", stringify!($t)), i))
                })
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json { Json::UInt(*self as u64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_json(v: &Json) -> Result<Self, DeError> {
                let u = de::as_u64(v, stringify!($t))?;
                <$t>::try_from(u).map_err(|_| {
                    DeError(format!(concat!("value {} does not fit in ", stringify!($t)), u))
                })
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}
impl<'de> Deserialize<'de> for f64 {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        de::as_f64(v, "f64")
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Json {
        Json::Float(*self as f64)
    }
}
impl<'de> Deserialize<'de> for f32 {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        // Serialisation widened the f32 exactly; narrowing back is lossless for values
        // that originated as f32 and rounds to nearest otherwise.
        Ok(de::as_f64(v, "f32")? as f32)
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}
impl<'de> Deserialize<'de> for bool {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => Err(de::unexpected("bool", "a boolean", other)),
        }
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}
impl<'de> Deserialize<'de> for String {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            other => Err(de::unexpected("String", "a string", other)),
        }
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for std::sync::Arc<str> {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        match v {
            Json::Str(s) => Ok(std::sync::Arc::from(s.as_str())),
            other => Err(de::unexpected("Arc<str>", "a string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            None => Json::Null,
            Some(v) => v.to_json(),
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        match v {
            Json::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json).collect())
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        de::array(v, "Vec")?.iter().map(T::from_json).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        let items = de::tuple(v, "tuple", 2)?;
        Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
    fn from_json(v: &Json) -> Result<Self, DeError> {
        let items = de::tuple(v, "tuple", 3)?;
        Ok((
            A::from_json(&items[0])?,
            B::from_json(&items[1])?,
            C::from_json(&items[2])?,
        ))
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }
}
impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: std::str::FromStr + Ord,
    V: Deserialize<'de>,
{
    fn from_json(v: &Json) -> Result<Self, DeError> {
        de::object(v, "BTreeMap")?
            .iter()
            .map(|(k, val)| {
                let key = k
                    .parse::<K>()
                    .map_err(|_| DeError(format!("BTreeMap: unparsable key {k:?}")))?;
                Ok((key, V::from_json(val)?))
            })
            .collect()
    }
}

impl<K: ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_json(&self) -> Json {
        // Deterministic output: sort by rendered key.
        let mut entries: Vec<(String, Json)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_json()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Json::Object(entries)
    }
}
impl<'de, K, V, S> Deserialize<'de> for HashMap<K, V, S>
where
    K: std::str::FromStr + std::hash::Hash + Eq,
    V: Deserialize<'de>,
    S: std::hash::BuildHasher + Default,
{
    fn from_json(v: &Json) -> Result<Self, DeError> {
        de::object(v, "HashMap")?
            .iter()
            .map(|(k, val)| {
                let key = k
                    .parse::<K>()
                    .map_err(|_| DeError(format!("HashMap: unparsable key {k:?}")))?;
                Ok((key, V::from_json(val)?))
            })
            .collect()
    }
}

impl Serialize for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}
impl<'de> Deserialize<'de> for Json {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_nodes() {
        assert_eq!(3i64.to_json(), Json::Int(3));
        assert_eq!(3u32.to_json(), Json::UInt(3));
        assert_eq!(true.to_json(), Json::Bool(true));
        assert_eq!("x".to_string().to_json(), Json::Str("x".into()));
        assert_eq!(None::<i64>.to_json(), Json::Null);
        assert_eq!(
            vec![1i64, 2].to_json(),
            Json::Array(vec![Json::Int(1), Json::Int(2)])
        );
    }

    #[test]
    fn hashmap_output_is_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 1i64);
        m.insert("a".to_string(), 2i64);
        match m.to_json() {
            Json::Object(entries) => {
                assert_eq!(entries[0].0, "a");
                assert_eq!(entries[1].0, "b");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn primitives_round_trip_through_from_json() {
        assert_eq!(i64::from_json(&3i64.to_json()), Ok(3));
        assert_eq!(u32::from_json(&7u32.to_json()), Ok(7));
        // Cross-kind coercions: UInt -> i64, Int -> u64, integers -> floats.
        assert_eq!(i64::from_json(&Json::UInt(9)), Ok(9));
        assert_eq!(u64::from_json(&Json::Int(9)), Ok(9));
        assert_eq!(f64::from_json(&Json::Int(2)), Ok(2.0));
        assert_eq!(f32::from_json(&Json::Float(2e-3f32 as f64)), Ok(2e-3f32));
        assert!(u8::from_json(&Json::Int(300)).is_err());
        assert!(u64::from_json(&Json::Int(-1)).is_err());
        assert_eq!(bool::from_json(&Json::Bool(true)), Ok(true));
        assert_eq!(String::from_json(&Json::Str("s".into())), Ok("s".into()));
        assert!(String::from_json(&Json::Int(1)).is_err());
    }

    #[test]
    fn containers_round_trip_through_from_json() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_json(&v.to_json()), Ok(v));
        assert_eq!(Option::<u32>::from_json(&Json::Null), Ok(None));
        assert_eq!(Option::<u32>::from_json(&Json::UInt(4)), Ok(Some(4)));
        let pair = ("x".to_string(), 9u64);
        assert_eq!(
            <(String, u64)>::from_json(&pair.to_json()),
            Ok(pair.clone())
        );
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), (pair.0.clone(), vec![1usize, 2]));
        assert_eq!(
            BTreeMap::<String, (String, Vec<usize>)>::from_json(&m.to_json()),
            Ok(m)
        );
        let a: std::sync::Arc<str> = std::sync::Arc::from("hello");
        assert_eq!(
            std::sync::Arc::<str>::from_json(&Json::Str("hello".into())),
            Ok(a)
        );
    }

    #[test]
    fn errors_carry_messages() {
        let e = Vec::<u32>::from_json(&Json::Int(1)).unwrap_err();
        assert!(e.to_string().contains("expected an array"));
        let e = de::unknown_variant("Op", "Nope");
        assert!(e.to_string().contains("unknown variant"));
    }
}
