//! Offline, API-compatible subset of `serde`.
//!
//! The workspace builds without a crate registry, so this shim supplies the pieces the
//! reproduction actually uses: `#[derive(Serialize, Deserialize)]` on plain structs and
//! enums, plus enough of a data model for `serde_json::to_string_pretty` to render them.
//!
//! Instead of serde's visitor-based data model, [`Serialize`] lowers values directly into
//! an owned [`Json`] tree that `serde_json` then formats. [`Deserialize`] is a marker
//! trait only — nothing in the workspace deserialises yet; the derive keeps source
//! compatibility so real deserialisation can be added later without touching call sites.

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON tree — the serialisation data model of this shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    /// Insertion-ordered object (matches struct field order).
    Object(Vec<(String, Json)>),
}

/// Types that can be lowered to a [`Json`] tree.
pub trait Serialize {
    fn to_json(&self) -> Json;
}

/// Marker trait: the type participates in `#[derive(Deserialize)]`.
///
/// No workspace code deserialises; deriving it documents intent and keeps the
/// source compatible with the real `serde` crate.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json { Json::Int(*self as i64) }
        }
        impl<'de> Deserialize<'de> for $t {}
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json { Json::UInt(*self as u64) }
        }
        impl<'de> Deserialize<'de> for $t {}
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json { Json::Float(*self as f64) }
        }
        impl<'de> Deserialize<'de> for $t {}
    )*};
}
impl_ser_float!(f32, f64);

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}
impl<'de> Deserialize<'de> for bool {}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}
impl<'de> Deserialize<'de> for String {}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            None => Json::Null,
            Some(v) => v.to_json(),
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json).collect())
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }
}

impl<K: ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_json(&self) -> Json {
        // Deterministic output: sort by rendered key.
        let mut entries: Vec<(String, Json)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_json()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Json::Object(entries)
    }
}

impl Serialize for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_nodes() {
        assert_eq!(3i64.to_json(), Json::Int(3));
        assert_eq!(3u32.to_json(), Json::UInt(3));
        assert_eq!(true.to_json(), Json::Bool(true));
        assert_eq!("x".to_string().to_json(), Json::Str("x".into()));
        assert_eq!(None::<i64>.to_json(), Json::Null);
        assert_eq!(
            vec![1i64, 2].to_json(),
            Json::Array(vec![Json::Int(1), Json::Int(2)])
        );
    }

    #[test]
    fn hashmap_output_is_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 1i64);
        m.insert("a".to_string(), 2i64);
        match m.to_json() {
            Json::Object(entries) => {
                assert_eq!(entries[0].0, "a");
                assert_eq!(entries[1].0, "b");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }
}
