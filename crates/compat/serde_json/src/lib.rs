//! Offline, API-compatible subset of `serde_json`: renders the shim's [`serde::Json`]
//! tree as JSON text. Only the serialisation direction is implemented.

use std::fmt;

use serde::{Json, Serialize};

/// Error type kept for signature compatibility; rendering owned trees cannot fail.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&value.to_json(), None, 0, &mut out);
    Ok(out)
}

/// Pretty-printed JSON (two-space indent, like real `serde_json`).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&value.to_json(), Some(2), 0, &mut out);
    Ok(out)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(v: f64, out: &mut String) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            out.push_str(&format!("{:.1}", v));
        } else {
            out.push_str(&format!("{}", v));
        }
    } else {
        // Real serde_json errors on non-finite floats; the reports this shim feeds
        // only need something readable and parse-safe.
        out.push_str("null");
    }
}

fn write_json(v: &Json, indent: Option<usize>, depth: usize, out: &mut String) {
    let (nl, pad, pad_close, colon) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * (depth + 1)),
            " ".repeat(w * depth),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::UInt(u) => out.push_str(&u.to_string()),
        Json::Float(f) => write_float(*f, out),
        Json::Str(s) => write_escaped(s, out),
        Json::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_json(item, indent, depth + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Json::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(colon);
                write_json(val, indent, depth + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_agree_on_structure() {
        let v = Json::Object(vec![
            ("a".to_string(), Json::Int(1)),
            (
                "b".to_string(),
                Json::Array(vec![Json::Str("x\"y".to_string()), Json::Null]),
            ),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":["x\"y",null]}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"));
        assert!(pretty.ends_with('}'));
    }

    #[test]
    fn floats_render_readably() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn derived_shapes_serialize_like_serde() {
        #[derive(Serialize)]
        struct Named {
            id: u32,
            label: String,
        }

        #[derive(Serialize)]
        struct Newtype(f64);

        #[derive(Serialize)]
        struct Pair(i64, String);

        #[derive(Serialize)]
        enum Mixed {
            Unit,
            One(i64),
            Two(i64, i64),
            Fields { x: i64 },
        }

        #[derive(Serialize)]
        struct Unit;

        let named = Named {
            id: 7,
            label: "t".into(),
        };
        assert_eq!(to_string(&named).unwrap(), r#"{"id":7,"label":"t"}"#);
        // Newtype structs serialise transparently, wider tuple structs as arrays.
        assert_eq!(to_string(&Newtype(1.5)).unwrap(), "1.5");
        assert_eq!(to_string(&Pair(3, "x".into())).unwrap(), r#"[3,"x"]"#);
        assert_eq!(to_string(&Mixed::Unit).unwrap(), r#""Unit""#);
        assert_eq!(to_string(&Mixed::One(4)).unwrap(), r#"{"One":4}"#);
        assert_eq!(to_string(&Mixed::Two(4, 5)).unwrap(), r#"{"Two":[4,5]}"#);
        assert_eq!(
            to_string(&Mixed::Fields { x: 9 }).unwrap(),
            r#"{"Fields":{"x":9}}"#
        );
        assert_eq!(to_string(&Unit).unwrap(), "{}");
    }
}
