//! Offline, API-compatible subset of `serde_json`: renders the shim's [`serde::Json`]
//! tree as JSON text and parses JSON text back into the tree ([`from_str`]).

use std::fmt;

use serde::{Deserialize, Json, Serialize};

/// Serialisation of owned trees cannot fail; parsing reports a message and the byte
/// offset it failed at.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn at(msg: impl Into<String>, pos: usize) -> Self {
        Error(format!("{} at byte {pos}", msg.into()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&value.to_json(), None, 0, &mut out);
    Ok(out)
}

/// Pretty-printed JSON (two-space indent, like real `serde_json`).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&value.to_json(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into a [`Json`] tree.
pub fn parse(s: &str) -> Result<Json, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::at("trailing characters after JSON value", pos));
    }
    Ok(v)
}

/// Parses JSON text and deserialises it into `T` via [`serde::Deserialize::from_json`].
pub fn from_str<T: for<'de> Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let tree = parse(s)?;
    T::from_json(&tree).map_err(|e| Error(e.to_string()))
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error::at(format!("expected {lit:?}"), *pos))
    }
}

/// Nesting ceiling: parsing is recursive, and section payloads come from disk, so a
/// hostile `[[[[...` must fail with an Error instead of overflowing the stack.
const MAX_DEPTH: usize = 128;

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, Error> {
    if depth > MAX_DEPTH {
        return Err(Error::at("JSON nesting too deep", *pos));
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error::at("unexpected end of input", *pos)),
        Some(b'n') => expect(b, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(b, pos, depth + 1)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(Error::at("expected ',' or ']'", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(Error::at("expected ':'", *pos));
                }
                *pos += 1;
                let value = parse_value(b, pos, depth + 1)?;
                entries.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(entries));
                    }
                    _ => return Err(Error::at("expected ',' or '}'", *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error::at("expected a string", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error::at("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| Error::at("truncated \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::at("invalid \\u escape", *pos))?;
                        // Surrogate pairs are not produced by the writer; reject them.
                        let c = char::from_u32(code)
                            .ok_or_else(|| Error::at("non-scalar \\u escape", *pos))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(Error::at("invalid escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (the input is a &str, so boundaries are
                // valid).  Only look at the next <= 4 bytes: validating the whole tail
                // per character would make string parsing quadratic.
                let end = (*pos + 4).min(b.len());
                let s = std::str::from_utf8(&b[*pos..end])
                    .or_else(|e| std::str::from_utf8(&b[*pos..*pos + e.valid_up_to()]))
                    .expect("input was a str");
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii");
    if text.is_empty() || text == "-" {
        return Err(Error::at("expected a number", start));
    }
    if !is_float {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(if i >= 0 {
                // Mirror the writer: unsigned sources emit UInt.  Either node
                // deserialises into any numeric type, so the distinction is cosmetic.
                Json::UInt(i as u64)
            } else {
                Json::Int(i)
            });
        }
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Json::UInt(u));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| Error::at(format!("invalid number {text:?}"), start))
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(v: f64, out: &mut String) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            out.push_str(&format!("{:.1}", v));
        } else {
            out.push_str(&format!("{}", v));
        }
    } else {
        // Real serde_json errors on non-finite floats; the reports this shim feeds
        // only need something readable and parse-safe.
        out.push_str("null");
    }
}

fn write_json(v: &Json, indent: Option<usize>, depth: usize, out: &mut String) {
    let (nl, pad, pad_close, colon) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * (depth + 1)),
            " ".repeat(w * depth),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::UInt(u) => out.push_str(&u.to_string()),
        Json::Float(f) => write_float(*f, out),
        Json::Str(s) => write_escaped(s, out),
        Json::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_json(item, indent, depth + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Json::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(colon);
                write_json(val, indent, depth + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_agree_on_structure() {
        let v = Json::Object(vec![
            ("a".to_string(), Json::Int(1)),
            (
                "b".to_string(),
                Json::Array(vec![Json::Str("x\"y".to_string()), Json::Null]),
            ),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":["x\"y",null]}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"));
        assert!(pretty.ends_with('}'));
    }

    #[test]
    fn floats_render_readably() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = Json::Object(vec![
            ("a".to_string(), Json::UInt(1)),
            (
                "b".to_string(),
                Json::Array(vec![
                    Json::Str("x\"y\n".to_string()),
                    Json::Null,
                    Json::Bool(false),
                    Json::Float(2.5),
                    Json::Int(-3),
                ]),
            ),
            ("c".to_string(), Json::Object(vec![])),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(parse(&text).unwrap(), v);
        }
        // Unicode escapes and large integers.
        assert_eq!(
            parse("\"\\u00e9\"").unwrap(),
            Json::Str("\u{e9}".to_string())
        );
        assert_eq!(parse("18446744073709551615").unwrap(), Json::UInt(u64::MAX));
        assert_eq!(parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 1").is_err());
    }

    #[test]
    fn hostile_inputs_fail_without_crashing() {
        // Deep nesting errors out instead of overflowing the stack.
        let deep = "[".repeat(100_000);
        match parse(&deep) {
            Err(e) => assert!(e.to_string().contains("nesting too deep")),
            Ok(_) => panic!("unterminated deep nesting must not parse"),
        }
        // Nesting at the limit still works.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&ok).is_ok());
        // Long strings with multi-byte characters parse correctly (and in linear time).
        let long: String = "caf\u{e9}\u{1F600}".repeat(2_000);
        let text = to_string(&Json::Str(long.clone())).unwrap();
        assert_eq!(parse(&text).unwrap(), Json::Str(long));
    }

    #[test]
    fn from_str_deserialises_derived_types() {
        #[derive(Serialize, Deserialize, Debug, PartialEq)]
        struct Inner {
            label: String,
            weight: Option<f64>,
        }

        #[derive(Serialize, Deserialize, Debug, PartialEq)]
        enum Kind {
            Plain,
            Tagged(u32),
            Pair(i64, i64),
            Named { x: u8 },
        }

        #[derive(Serialize, Deserialize, Debug, PartialEq)]
        struct Outer {
            id: u64,
            inner: Inner,
            kinds: Vec<Kind>,
        }

        let value = Outer {
            id: 9,
            inner: Inner {
                label: "caf\u{e9}".into(),
                weight: None,
            },
            kinds: vec![
                Kind::Plain,
                Kind::Tagged(7),
                Kind::Pair(-1, 2),
                Kind::Named { x: 3 },
            ],
        };
        let text = to_string_pretty(&value).unwrap();
        let back: Outer = from_str(&text).unwrap();
        assert_eq!(back, value);
        // Missing optional fields deserialise to None; unknown variants error.
        let partial: Inner = from_str("{\"label\":\"x\"}").unwrap();
        assert_eq!(partial.weight, None);
        assert!(from_str::<Kind>("\"Nope\"").is_err());
        assert!(from_str::<Outer>("{\"id\":\"not a number\"}").is_err());
    }

    #[test]
    fn serde_default_fields_tolerate_old_documents() {
        // A "new" struct with fields an old writer did not know about: the
        // `#[serde(default)]` fields must fill in, the mandatory ones must still error
        // when absent.
        #[derive(Serialize, Deserialize, Debug, PartialEq)]
        struct Versioned {
            id: u64,
            #[serde(default)]
            fingerprint: String,
            #[serde(default)]
            retries: u32,
            label: String,
        }

        // Old document: neither `fingerprint` nor `retries` present.
        let old: Versioned = from_str("{\"id\":1,\"label\":\"x\"}").unwrap();
        assert_eq!(old.fingerprint, "");
        assert_eq!(old.retries, 0);
        // Explicit null also resolves to the default.
        let nulled: Versioned =
            from_str("{\"id\":1,\"label\":\"x\",\"fingerprint\":null}").unwrap();
        assert_eq!(nulled.fingerprint, "");
        // Present values still win, and the full round trip is unchanged.
        let value = Versioned {
            id: 2,
            fingerprint: "abcd".into(),
            retries: 3,
            label: "y".into(),
        };
        let back: Versioned = from_str(&to_string_pretty(&value).unwrap()).unwrap();
        assert_eq!(back, value);
        // Mandatory fields keep erroring when missing.
        assert!(from_str::<Versioned>("{\"id\":1}").is_err());
    }

    #[test]
    fn derived_shapes_serialize_like_serde() {
        #[derive(Serialize)]
        struct Named {
            id: u32,
            label: String,
        }

        #[derive(Serialize)]
        struct Newtype(f64);

        #[derive(Serialize)]
        struct Pair(i64, String);

        #[derive(Serialize)]
        enum Mixed {
            Unit,
            One(i64),
            Two(i64, i64),
            Fields { x: i64 },
        }

        #[derive(Serialize)]
        struct Unit;

        let named = Named {
            id: 7,
            label: "t".into(),
        };
        assert_eq!(to_string(&named).unwrap(), r#"{"id":7,"label":"t"}"#);
        // Newtype structs serialise transparently, wider tuple structs as arrays.
        assert_eq!(to_string(&Newtype(1.5)).unwrap(), "1.5");
        assert_eq!(to_string(&Pair(3, "x".into())).unwrap(), r#"[3,"x"]"#);
        assert_eq!(to_string(&Mixed::Unit).unwrap(), r#""Unit""#);
        assert_eq!(to_string(&Mixed::One(4)).unwrap(), r#"{"One":4}"#);
        assert_eq!(to_string(&Mixed::Two(4, 5)).unwrap(), r#"{"Two":[4,5]}"#);
        assert_eq!(
            to_string(&Mixed::Fields { x: 9 }).unwrap(),
            r#"{"Fields":{"x":9}}"#
        );
        assert_eq!(to_string(&Unit).unwrap(), "{}");
    }
}
