//! Offline, API-compatible subset of the `rand` crate (0.9 naming).
//!
//! The workspace must build without network access to a crate registry, so this shim
//! provides exactly the surface the NeuroCard reproduction uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded with SplitMix64,
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::random`], [`Rng::random_range`], [`Rng::random_bool`],
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! The streams are high-quality and fully deterministic for a given seed, but are NOT the
//! same streams as the real `rand` crate produces — any test asserting on exact sampled
//! values is calibrated against this implementation.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from their "standard" distribution
/// (floats in `[0, 1)`, integers over their full range).
pub trait StandardUniform: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform sampler over an interval. Mirroring the real `rand` crate,
/// [`SampleRange`] has exactly one impl per range shape, blanket over `T: SampleUniform`,
/// so type inference can unify a range literal's element type with the result type.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $unsigned:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $unsigned).wrapping_sub(lo as $unsigned);
                let v = reject_sample(rng, span as u64) as $unsigned;
                (lo as $unsigned).wrapping_add(v) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $unsigned).wrapping_sub(lo as $unsigned);
                if span as u64 == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let v = reject_sample(rng, span as u64 + 1) as $unsigned;
                (lo as $unsigned).wrapping_add(v) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! impl_sample_uniform_128 {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u128).wrapping_sub(lo as u128);
                (lo as u128).wrapping_add(reject_sample_u128(rng, span)) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u128).wrapping_sub(lo as u128);
                if span == u128::MAX {
                    let full = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    return full as $t;
                }
                (lo as u128).wrapping_add(reject_sample_u128(rng, span + 1)) as $t
            }
        }
    )*};
}
impl_sample_uniform_128!(u128, i128);

/// Uniform draw from `[0, bound)` for 128-bit spans via bitmask rejection.
fn reject_sample_u128<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    assert!(bound > 0, "cannot sample empty range");
    if bound <= u64::MAX as u128 {
        return reject_sample(rng, bound as u64) as u128;
    }
    let mask = u128::MAX >> (bound - 1).leading_zeros();
    loop {
        let v = (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) & mask;
        if v < bound {
            return v;
        }
    }
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let unit = <$t as StandardUniform>::sample_standard(rng);
                let v = lo + (hi - lo) * unit;
                // `lo + span * unit` can round up to `hi`; keep the half-open contract.
                if v < hi { v } else { hi.next_down().max(lo) }
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let unit = <$t as StandardUniform>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Unbiased uniform draw from `[0, bound)` (`bound == 0` means the full u64 range)
/// via multiply-shift with rejection (Lemire's method).
fn reject_sample<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    if bound == 0 {
        return rng.next_u64();
    }
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let low = m as u64;
        if low >= bound && low < bound.wrapping_neg() {
            return (m >> 64) as u64;
        }
        // Exact rejection check.
        let threshold = bound.wrapping_neg() % bound;
        if low >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// User-facing random-value methods; blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value from a type's standard distribution (`[0, 1)` for floats).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform value from `range` (half-open or inclusive).
    fn random_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        <f64 as StandardUniform>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (SplitMix64-expanded seed).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers (`shuffle`, `choose`).
    pub trait SliceRandom {
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_and_stream_independence() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random_range(0..1_000_000u64)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random_range(0..1_000_000u64)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random_range(0..1_000_000u64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let w = rng.random_range(3..=6usize);
            assert!((3..=6).contains(&w));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let g = rng.random_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&g));
        }
    }

    #[test]
    fn float_half_open_excludes_upper_bound() {
        // One-ULP-wide ranges make `lo + span * unit` round to `hi` for roughly half of
        // all draws unless the result is clamped.
        let mut rng = StdRng::seed_from_u64(5);
        let lo = 1.0f64;
        let hi = lo.next_up();
        for _ in 0..1000 {
            assert_eq!(rng.random_range(lo..hi), lo);
        }
        let lo32 = 3.5f32;
        let hi32 = lo32.next_up();
        for _ in 0..1000 {
            let v = rng.random_range(lo32..hi32);
            assert!(v >= lo32 && v < hi32);
        }
    }

    #[test]
    fn float_ranges_cover_span() {
        let mut rng = StdRng::seed_from_u64(2);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..10_000 {
            let v = rng.random_range(0.0f64..10.0);
            if v < 1.0 {
                lo_seen = true;
            }
            if v > 9.0 {
                hi_seen = true;
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted); // astronomically unlikely to be identity
    }
}
