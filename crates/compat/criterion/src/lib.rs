//! Offline, API-compatible subset of `criterion`.
//!
//! Supports the bench surface this workspace uses — `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, [`BenchmarkId`] and `Bencher::iter` — with a simple wall-clock
//! measurement loop (fixed warm-up, `sample_size` timed samples, min/mean/max report)
//! instead of criterion's statistical machinery.
//!
//! Passing `--test` (as `cargo test` does for harnessed bench targets) runs every
//! benchmark body exactly once, matching real criterion's test mode.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        self.run_one(None, id.into(), sample_size, f);
        self
    }

    fn run_one<F>(&mut self, group: Option<&str>, id: BenchmarkId, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = match group {
            Some(g) => format!("{g}/{id}"),
            None => id.to_string(),
        };
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test-mode: {label} ... ok");
            return;
        }
        let samples = &bencher.samples;
        if samples.is_empty() {
            println!("{label}: no measurements (Bencher::iter never called)");
            return;
        }
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{label}: [{min:.2?} {mean:.2?} {max:.2?}] ({} samples)",
            samples.len()
        );
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        let name = self.name.clone();
        self.criterion
            .run_one(Some(&name), id.into(), sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Identifier for one benchmark, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.name.is_empty(), &self.parameter) {
            (false, Some(p)) => write!(f, "{}/{}", self.name, p),
            (false, None) => write!(f, "{}", self.name),
            (true, Some(p)) => write!(f, "{p}"),
            (true, None) => Ok(()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] runs and times the payload.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            return;
        }
        // Warm-up.
        std::hint::black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_demo(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 7usize), &7usize, |b, n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, bench_demo);

    #[test]
    fn group_runs_all_targets() {
        benches();
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(
            BenchmarkId::new("job_light", 800).to_string(),
            "job_light/800"
        );
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }
}
