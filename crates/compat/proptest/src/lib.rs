//! Offline, API-compatible subset of `proptest`.
//!
//! Implements the surface the workspace's property tests use — the [`proptest!`],
//! [`prop_oneof!`] and `prop_assert*` macros, [`strategy::Strategy`] with `prop_map` /
//! `boxed`, [`strategy::Just`], numeric-range strategies, a tiny `[c-c]{lo,hi}`
//! character-class string strategy, tuple strategies and [`collection::vec`] — over a
//! deterministic seeded RNG.
//!
//! Differences from real proptest: cases are seeded from the test's module path (stable
//! across runs, no persistence files), and there is **no shrinking** — a failure reports
//! the exact generated inputs instead, which the deterministic seeding makes reproducible.

pub use rand;

pub mod strategy {
    use std::fmt;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        type Value: fmt::Debug;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U: fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + fmt::Debug>(pub T);

    impl<T: Clone + fmt::Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut StdRng) -> T;
    }

    impl<T, S: Strategy<Value = T>> DynStrategy<T> for S {
        fn generate_dyn(&self, rng: &mut StdRng) -> T {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Weighted union of strategies (what [`crate::prop_oneof!`] builds).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! weights must not all be zero");
            Union { arms, total }
        }
    }

    impl<T: fmt::Debug> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            let mut pick = rng.random_range(0..self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// `&str` strategies: a character-class pattern `[<class>]{lo,hi}` (e.g. `"[a-z]{0,6}"`)
    /// or, when the pattern contains no regex metacharacters, the literal string itself.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            let spec = parse_char_class_pattern(self).unwrap_or_else(|| {
                panic!(
                    "proptest shim: unsupported string pattern {self:?} \
                     (supported: literal strings and `[<class>]{{lo,hi}}`)"
                )
            });
            match spec {
                PatternSpec::Literal(s) => s,
                PatternSpec::Class { chars, lo, hi } => {
                    let len = rng.random_range(lo..=hi);
                    (0..len)
                        .map(|_| chars[rng.random_range(0..chars.len())])
                        .collect()
                }
            }
        }
    }

    enum PatternSpec {
        Literal(String),
        Class {
            chars: Vec<char>,
            lo: usize,
            hi: usize,
        },
    }

    fn parse_char_class_pattern(pattern: &str) -> Option<PatternSpec> {
        if !pattern.contains(['[', ']', '{', '}', '*', '+', '?', '(', ')', '|', '\\', '.']) {
            return Some(PatternSpec::Literal(pattern.to_string()));
        }
        let rest = pattern.strip_prefix('[')?;
        let (class, quant) = rest.split_once(']')?;
        let mut chars = Vec::new();
        let cs: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < cs.len() {
            if i + 2 < cs.len() && cs[i + 1] == '-' {
                let (a, b) = (cs[i], cs[i + 2]);
                if a > b {
                    return None;
                }
                chars.extend((a..=b).filter(|c| c.is_ascii()));
                i += 3;
            } else {
                chars.push(cs[i]);
                i += 1;
            }
        }
        if chars.is_empty() {
            return None;
        }
        let quant = quant.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match quant.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
            None => {
                let n = quant.trim().parse().ok()?;
                (n, n)
            }
        };
        if lo > hi {
            return None;
        }
        Some(PatternSpec::Class { chars, lo, hi })
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!(
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5)
    );
}

pub mod collection {
    use std::fmt;
    use std::ops::{Range, RangeInclusive};

    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `elem` values with a size drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Default number of cases per property (override with `PROPTEST_CASES`).
    pub const DEFAULT_CASES: u32 = 256;

    /// Per-block configuration, set with `#![proptest_config(ProptestConfig::with_cases(n))]`.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: DEFAULT_CASES,
            }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed or rejected property-test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
        rejected: bool,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
                rejected: false,
            }
        }

        /// A `prop_assume!` rejection: the case is skipped, not failed.
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
                rejected: true,
            }
        }

        pub fn is_rejection(&self) -> bool {
            self.rejected
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.message)
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Runs `cases` generated cases of the closure; panics with the offending inputs on
    /// the first failure. The RNG seed derives from `test_name`, so runs are stable.
    pub fn run<F>(test_name: &str, cases: u32, mut case: F)
    where
        F: FnMut(&mut StdRng) -> (String, Result<(), TestCaseError>),
    {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(cases);
        let mut rng = StdRng::seed_from_u64(fnv1a(test_name));
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        while accepted < cases {
            let (inputs, result) = case(&mut rng);
            match result {
                Ok(()) => accepted += 1,
                Err(e) if e.is_rejection() => {
                    rejected += 1;
                    // Mirror real proptest's give-up behaviour when assumptions are
                    // too strict to ever produce accepted cases.
                    assert!(
                        rejected <= cases.saturating_mul(8).saturating_add(100),
                        "proptest `{test_name}`: too many prop_assume! rejections ({rejected})"
                    );
                }
                Err(e) => panic!(
                    "proptest case {accepted}/{cases} of `{test_name}` failed: {e}\ninputs:\n{inputs}"
                ),
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of proptest's `prop` prelude module (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: `proptest! { #[test] fn name(x in strat, ...) { body } }`.
/// An optional leading `#![proptest_config(ProptestConfig::with_cases(n))]` sets the
/// case count for every test in the block.
#[macro_export]
macro_rules! proptest {
    (@cases $cases:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(
                    concat!(module_path!(), "::", stringify!($name)),
                    $cases,
                    |__pt_rng| {
                        // Snapshot the RNG so the inputs can be re-generated for the
                        // failure report; the passing path never pays for formatting.
                        let mut __pt_snapshot = __pt_rng.clone();
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), __pt_rng);)+
                        let __pt_result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                            (move || { $body ::std::result::Result::Ok(()) })();
                        let __pt_inputs = if ::std::matches!(
                            &__pt_result,
                            ::std::result::Result::Err(e) if !e.is_rejection()
                        ) {
                            let mut __pt_s = String::new();
                            $(
                                let $arg = $crate::strategy::Strategy::generate(
                                    &($strat), &mut __pt_snapshot,
                                );
                                __pt_s.push_str(&format!(
                                    "  {} = {:?}\n", stringify!($arg), &$arg
                                ));
                            )+
                            __pt_s
                        } else {
                            String::new()
                        };
                        (__pt_inputs, __pt_result)
                    },
                );
            }
        )+
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)+) => {
        $crate::proptest!(@cases ($cfg).cases; $($rest)+);
    };
    ($($rest:tt)+) => {
        $crate::proptest!(@cases $crate::test_runner::DEFAULT_CASES; $($rest)+);
    };
}

/// Weighted (`w => strat`) or unweighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Skips the current case (without failing) when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -10i64..10, y in 0u32..5, f in 0.0f64..1.0) {
            prop_assert!((-10..10).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn mapped_and_union_strategies_compose(
            v in prop::collection::vec(
                prop_oneof![2 => Just(-1i64), 5 => (0i64..100).prop_map(|n| n * 2)],
                0..20,
            )
        ) {
            prop_assert!(v.len() < 20);
            for x in &v {
                prop_assert!(*x == -1 || (*x >= 0 && *x % 2 == 0));
            }
        }

        #[test]
        fn string_patterns_respect_class_and_length(s in "[a-c]{1,4}") {
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let strat = crate::collection::vec(0i64..1000, 5..10);
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(1);
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_inputs() {
        crate::test_runner::run("t", 4, |rng| {
            use crate::strategy::Strategy;
            let x = (0i64..100).generate(rng);
            let r = (move || {
                crate::prop_assert!(x < -1, "x was {}", x);
                Ok(())
            })();
            (format!("  x = {x:?}\n"), r)
        });
    }
}
