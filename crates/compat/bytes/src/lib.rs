//! Offline, API-compatible subset of the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`] and the [`Buf`]/[`BufMut`] traits with the
//! little-endian accessors the model serialiser uses. `Bytes` is a plain owned
//! `Vec<u8>` underneath — the zero-copy slicing of the real crate is not needed here.

use std::ops::Deref;

/// Immutable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes { data: Vec::new() }
    }

    pub fn from_vec(data: Vec<u8>) -> Self {
        Bytes { data }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.data
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source. Implemented for `&[u8]`, which is consumed in place.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn get_u8(&mut self) -> u8;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (first, rest) = self.split_first().expect("buffer underflow");
        let v = *first;
        *self = rest;
        v
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, rest) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = rest;
    }
}

/// Write cursor for growable buffers.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_slice(&mut self, src: &[u8]);

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_f32_le(1.5);
        w.put_u8(7);
        let frozen = w.freeze();
        assert_eq!(frozen.len(), 9);

        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 9);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slicing_via_deref() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        assert_eq!(&b[..2], &[1, 2]);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        r.get_u32_le();
    }
}
