//! Offline, mio-style readiness poller: a minimal `epoll(7)` + `eventfd(2)` subset.
//!
//! This is the `crates/compat` answer to the real `mio` crate: the same vocabulary —
//! [`Poll`], [`Events`], [`Token`], [`Interest`], [`Waker`] — hand-rolled over raw
//! Linux syscalls so the workspace needs no external dependency for a nonblocking
//! multiplexed server.  Divergences from real mio, by design:
//!
//! * registration takes a [`RawFd`] directly (the equivalent of mio's `SourceFd`)
//!   instead of a `&mut impl event::Source`;
//! * readiness is **level-triggered** (real mio is edge-triggered): an event keeps
//!   firing while the condition holds, so dropped wakeups cannot wedge a connection;
//! * [`Waker`] exposes an explicit [`Waker::drain`] the poll loop calls when it sees
//!   the waker's token (eventfd readiness is level-triggered too).
//!
//! Linux-only: the syscalls are declared directly against the C library the binary is
//! linked with anyway, so there is nothing to vendor.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Identifies one registered event source in an [`Events`] batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Which readiness kinds a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Readable readiness (`EPOLLIN`).
    pub const READABLE: Interest = Interest(0b01);
    /// Writable readiness (`EPOLLOUT`).
    pub const WRITABLE: Interest = Interest(0b10);
    /// No readiness (a shim divergence from real mio): the fd stays registered and
    /// still reports hangup/error — how a reactor pauses a backpressured connection
    /// without losing its disconnect notification.
    pub const NONE: Interest = Interest(0b00);

    /// Combines two interests (mio's `Interest::add`).
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Whether readable readiness is requested.
    pub const fn is_readable(self) -> bool {
        self.0 & 0b01 != 0
    }

    /// Whether writable readiness is requested.
    pub const fn is_writable(self) -> bool {
        self.0 & 0b10 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

mod sys {
    //! The raw syscall surface: declared against the libc every Linux Rust binary is
    //! already linked with, so no crate needs vendoring.

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EFD_CLOEXEC: i32 = 0o2000000;
    pub const EFD_NONBLOCK: i32 = 0o4000;

    // The kernel ABI packs epoll_event on x86 so the 64-bit data field is unaligned;
    // every other architecture uses natural alignment.
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
        pub fn close(fd: i32) -> i32;
        pub fn read(fd: i32, buf: *mut core::ffi::c_void, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const core::ffi::c_void, count: usize) -> isize;
    }
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

fn interest_bits(interests: Interest) -> u32 {
    let mut bits = sys::EPOLLRDHUP; // always learn about peer half-close
    if interests.is_readable() {
        bits |= sys::EPOLLIN;
    }
    if interests.is_writable() {
        bits |= sys::EPOLLOUT;
    }
    bits
}

/// One readiness event out of a [`Poll::poll`] batch.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    bits: u32,
}

impl Event {
    /// The token the source was registered with.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Readable (includes peer hangup/error, which a read will surface as EOF/error).
    pub fn is_readable(&self) -> bool {
        self.bits & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLRDHUP | sys::EPOLLERR) != 0
    }

    /// Writable.
    pub fn is_writable(&self) -> bool {
        self.bits & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0
    }

    /// The peer closed its half of the connection (or the socket errored).
    pub fn is_read_closed(&self) -> bool {
        self.bits & (sys::EPOLLHUP | sys::EPOLLRDHUP | sys::EPOLLERR) != 0
    }
}

/// A reusable batch of readiness events.
pub struct Events {
    buf: Vec<sys::EpollEvent>,
    len: usize,
}

impl Events {
    /// A batch that can hold up to `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    /// Events delivered by the last [`Poll::poll`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|e| {
            // Copy out of the (possibly packed) kernel struct before touching fields.
            let (events, data) = (e.events, e.data);
            Event {
                token: Token(data as usize),
                bits: events,
            }
        })
    }

    /// Whether the last poll returned no events (i.e. it timed out).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The readiness selector: an `epoll` instance.
///
/// Registrations are **level-triggered**: while a registered condition holds (unread
/// bytes, writable buffer space), every `poll` reports it again.
#[derive(Debug)]
pub struct Poll {
    epfd: RawFd,
}

impl Poll {
    /// A fresh epoll instance.
    pub fn new() -> io::Result<Poll> {
        let epfd = cvt(unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) })?;
        Ok(Poll { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: Token, interests: Interest) -> io::Result<()> {
        let mut event = sys::EpollEvent {
            events: interest_bits(interests),
            data: token.0 as u64,
        };
        cvt(unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut event) })?;
        Ok(())
    }

    /// Starts watching `fd` for `interests`, reporting readiness under `token`.
    pub fn register(&self, fd: RawFd, token: Token, interests: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interests)
    }

    /// Changes the interests (and/or token) of an already registered `fd`.
    pub fn reregister(&self, fd: RawFd, token: Token, interests: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interests)
    }

    /// Stops watching `fd`.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        cvt(unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, std::ptr::null_mut()) })?;
        Ok(())
    }

    /// Blocks until at least one registered source is ready or `timeout` passes
    /// (`None` blocks indefinitely).  Fills `events` with the ready batch.
    pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms = match timeout {
            // Round up so a 1ns timeout does not busy-spin as 0ms.
            Some(t) => i32::try_from(t.as_millis().max(u128::from(t.subsec_nanos() > 0)))
                .unwrap_or(i32::MAX),
            None => -1,
        };
        loop {
            let n = unsafe {
                sys::epoll_wait(
                    self.epfd,
                    events.buf.as_mut_ptr(),
                    events.buf.len() as i32,
                    timeout_ms,
                )
            };
            if n >= 0 {
                events.len = n as usize;
                return Ok(());
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
            // EINTR: retry (with the full timeout again — good enough for a poll loop
            // that re-checks its own deadlines every iteration).
        }
    }
}

impl Drop for Poll {
    fn drop(&mut self) {
        unsafe { sys::close(self.epfd) };
    }
}

/// Cross-thread wakeup for a [`Poll`] loop: an `eventfd` registered like any other
/// source.  Any thread may call [`Waker::wake`]; the poll loop sees a readable event
/// under the waker's token and calls [`Waker::drain`].
#[derive(Debug)]
pub struct Waker {
    efd: RawFd,
}

impl Waker {
    /// Creates a waker registered on `poll` under `token`.
    pub fn new(poll: &Poll, token: Token) -> io::Result<Waker> {
        let efd = cvt(unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) })?;
        if let Err(e) = poll.register(efd, token, Interest::READABLE) {
            unsafe { sys::close(efd) };
            return Err(e);
        }
        Ok(Waker { efd })
    }

    /// Wakes the poll loop (cheap, async-signal-safe, callable from any thread).
    pub fn wake(&self) -> io::Result<()> {
        let one: u64 = 1;
        let n = unsafe {
            sys::write(
                self.efd,
                (&one as *const u64).cast(),
                std::mem::size_of::<u64>(),
            )
        };
        // A full eventfd counter (EAGAIN) still leaves the fd readable: the loop will
        // wake, which is all this call promises.
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::WouldBlock {
                return Err(err);
            }
        }
        Ok(())
    }

    /// Clears pending wakeups (called by the poll loop when it sees the waker token;
    /// without this, level-triggered readiness would re-fire forever).
    pub fn drain(&self) {
        let mut buf = 0u64;
        unsafe {
            sys::read(
                self.efd,
                (&mut buf as *mut u64).cast(),
                std::mem::size_of::<u64>(),
            )
        };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe { sys::close(self.efd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn polls_tcp_readability_level_triggered() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poll = Poll::new().unwrap();
        poll.register(server.as_raw_fd(), Token(7), Interest::READABLE)
            .unwrap();
        let mut events = Events::with_capacity(8);

        // Nothing to read yet: the poll times out empty.
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        client.write_all(b"ping").unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let event = events.iter().next().expect("readable event");
        assert_eq!(event.token(), Token(7));
        assert!(event.is_readable());

        // Level-triggered: unread bytes re-fire on the next poll.
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(!events.is_empty());

        // Reading everything clears readiness.
        let mut sink = [0u8; 16];
        let mut srv = &server;
        assert_eq!(srv.read(&mut sink).unwrap(), 4);
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        // Peer hangup is reported as read-closed readiness.
        drop(client);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let event = events.iter().next().expect("hangup event");
        assert!(event.is_readable() && event.is_read_closed());
        poll.deregister(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn reregister_switches_interests() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poll = Poll::new().unwrap();
        // An idle socket with writable interest is immediately writable.
        poll.register(server.as_raw_fd(), Token(1), Interest::WRITABLE)
            .unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().next().unwrap().is_writable());

        // Switching to readable-only stops the writable storm...
        poll.reregister(server.as_raw_fd(), Token(2), Interest::READABLE)
            .unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
        // ...and reports reads under the new token.
        client.write_all(b"x").unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let event = events.iter().next().unwrap();
        assert_eq!(event.token(), Token(2));
        assert!(event.is_readable() && !event.is_read_closed());
    }

    #[test]
    fn waker_wakes_across_threads_and_drains() {
        let poll = Poll::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new(&poll, Token(99)).unwrap());
        let mut events = Events::with_capacity(8);

        let remote = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            remote.wake().unwrap();
        });
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.iter().next().unwrap().token(), Token(99));
        t.join().unwrap();

        // Drained wakeups stop firing; fresh wakes fire again.
        waker.drain();
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
        waker.wake().unwrap();
        waker.wake().unwrap(); // coalesced
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(!events.is_empty());
        waker.drain();
    }

    #[test]
    fn interest_combinators() {
        let both = Interest::READABLE | Interest::WRITABLE;
        assert!(both.is_readable() && both.is_writable());
        assert!(!Interest::READABLE.is_writable());
        assert_eq!(Interest::READABLE.add(Interest::WRITABLE), both);
    }
}
