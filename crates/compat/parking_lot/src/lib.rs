//! Offline, API-compatible subset of `parking_lot`, backed by `std::sync`.
//!
//! The parking_lot API differs from std in that `lock()` / `read()` / `write()` return
//! guards directly rather than `Result`s. Poisoning is translated to a panic, which keeps
//! the "a panicked writer aborts the test" semantics the workspace expects.

use std::sync;

/// Mutual exclusion lock with parking_lot's panic-on-poison `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII mutex guard.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|_| panic!("mutex poisoned"))
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|_| panic!("mutex poisoned"))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|_| panic!("mutex poisoned"))
    }
}

/// Reader-writer lock with parking_lot's panic-on-poison signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|_| panic!("rwlock poisoned"))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|_| panic!("rwlock poisoned"))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|_| panic!("rwlock poisoned"))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|_| panic!("rwlock poisoned"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
