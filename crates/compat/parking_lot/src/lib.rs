//! Offline, API-compatible subset of `parking_lot`, backed by `std::sync`.
//!
//! The parking_lot API differs from std in two ways this shim preserves: `lock()` /
//! `read()` / `write()` return guards directly rather than `Result`s, and **locks are
//! never poisoned** — a panic while holding the lock releases it, and the next holder
//! simply sees the data as the panicking thread left it.  That second property is what
//! serving code relies on: one panicking connection or worker must not wedge every
//! other thread that shares a stats map or connection table (std's poisoning would turn
//! the first panic into a cascade of `lock()` panics server-wide).

use std::sync;

/// Mutual exclusion lock with parking_lot's direct-guard, no-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII mutex guard.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// Reader-writer lock with parking_lot's direct-guard, no-poisoning signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn panic_while_locked_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(7u64));
        let victim = m.clone();
        let t = std::thread::spawn(move || {
            let _guard = victim.lock();
            panic!("holder dies mid-critical-section");
        });
        assert!(t.join().is_err());
        // parking_lot semantics: later lockers proceed and see the last written state.
        assert_eq!(*m.lock(), 7);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 8);

        let l = std::sync::Arc::new(RwLock::new(1u64));
        let victim = l.clone();
        let t = std::thread::spawn(move || {
            let _guard = victim.write();
            panic!("writer dies");
        });
        assert!(t.join().is_err());
        assert_eq!(*l.read(), 1);
        assert!(m.try_lock().is_some());
    }
}
