//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the local serde shim.
//!
//! Implemented without `syn`/`quote` (the build must work offline): the input token
//! stream is parsed by hand into just enough shape information — type name, struct
//! fields, enum variants — and the generated impl is rendered as a string and re-parsed.
//!
//! Supported input shapes (all the workspace needs):
//! * structs with named fields (including empty `{}` structs and unit structs),
//! * enums with unit, tuple, and struct variants.
//! Generic types are rejected with a clear compile error.
//!
//! Supported field attributes: `#[serde(default)]` — on deserialisation a missing (or
//! explicitly `null`) field resolves to `Default::default()` instead of erroring, which
//! is how new manifest fields stay loadable from artifacts written before the field
//! existed.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named struct field plus the serde attributes this shim understands.
struct Field {
    name: String,
    /// `#[serde(default)]`: deserialise a missing/null field as `Default::default()`.
    default: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    Struct { fields: Vec<Field> },
    TupleStruct { arity: usize },
    Enum { variants: Vec<Variant> },
}

struct Parsed {
    name: String,
    shape: Shape,
}

/// Skips any number of `#[...]` attribute token pairs starting at `i`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    scan_attrs(tokens, i);
}

/// Skips any number of `#[...]` attribute token pairs starting at `i`, reporting whether
/// a `#[serde(default)]` was among them.
fn scan_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut has_default = false;
    while *i + 1 < tokens.len() {
        match (&tokens[*i], &tokens[*i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                has_default |= attr_is_serde_default(g);
                *i += 2;
            }
            _ => break,
        }
    }
    has_default
}

/// Whether a `[...]` attribute body is `serde(default)`.
fn attr_is_serde_default(group: &proc_macro::Group) -> bool {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)]
            if name.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default"))
        }
        _ => false,
    }
}

/// Skips a `pub` / `pub(...)` visibility qualifier starting at `i`.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Advances `i` past the current item up to (and past) the next comma at angle-bracket
/// depth zero. Groups are single trees, so only `<`/`>` need explicit depth tracking.
fn skip_past_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while *i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*i] {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Counts top-level comma-separated items inside a tuple-variant parenthesis group.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle: i32 = 0;
    let mut trailing_comma = false;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    count += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

/// Extracts named fields (and their serde attributes) from a brace group
/// (`{ a: T, #[serde(default)] pub b: U, ... }`).
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let default = scan_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) => {
                fields.push(Field {
                    name: id.to_string(),
                    default,
                });
                i += 1;
                // Expect `:` then the type.
                skip_past_comma(&tokens, &mut i);
            }
            Some(_) => i += 1,
            None => break,
        }
    }
    fields
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(_) => {
                i += 1;
                continue;
            }
            None => break,
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                VariantKind::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                VariantKind::Struct(parse_named_fields(g))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        skip_past_comma(&tokens, &mut i);
    }
    variants
}

fn parse_input(input: TokenStream, trait_name: &str) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => panic!("derive({trait_name}): expected `struct` or `enum`"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => panic!("derive({trait_name}): expected a type name"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("derive({trait_name}): generic types are not supported by the serde shim (type `{name}`)");
        }
    }
    // A parenthesis group directly after the name means a tuple struct.
    let tuple_body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Some(g.clone()),
        _ => None,
    };
    let body = tokens.iter().skip(i).find_map(|t| match t {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.clone()),
        _ => None,
    });
    let shape = match (keyword.as_str(), body) {
        ("struct", Some(g)) => Shape::Struct {
            fields: parse_named_fields(&g),
        },
        ("struct", None) => match tuple_body {
            Some(g) => Shape::TupleStruct {
                arity: count_tuple_fields(&g),
            },
            None => Shape::Struct { fields: Vec::new() }, // unit struct
        },
        ("enum", Some(g)) => Shape::Enum {
            variants: parse_variants(&g),
        },
        _ => panic!("derive({trait_name}): unsupported input shape for `{name}`"),
    };
    Parsed { name, shape }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input, "Serialize");
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Struct { fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_json(&self.{f}))")
                })
                .collect();
            format!("::serde::Json::Object(vec![{}])", entries.join(", "))
        }
        // Match real serde: a newtype struct serialises as its inner value, a wider
        // tuple struct as an array.
        Shape::TupleStruct { arity: 1 } => "::serde::Serialize::to_json(&self.0)".to_string(),
        Shape::TupleStruct { arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Serialize::to_json(&self.{k})"))
                .collect();
            format!("::serde::Json::Array(vec![{}])", elems.join(", "))
        }
        Shape::Enum { variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Json::Str(\"{vname}\".to_string())"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Json::Object(vec![(\"{vname}\".to_string(), ::serde::Serialize::to_json(f0))])"
                        ),
                        VariantKind::Tuple(n) => {
                            let binders: Vec<String> =
                                (0..*n).map(|k| format!("f{k}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_json(f{k})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Json::Object(vec![(\"{vname}\".to_string(), ::serde::Json::Array(vec![{}]))])",
                                binders.join(", "),
                                elems.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binders: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let binders = binders.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let f = &f.name;
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_json({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binders} }} => ::serde::Json::Object(vec![(\"{vname}\".to_string(), ::serde::Json::Object(vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n    fn to_json(&self) -> ::serde::Json {{ {body} }}\n}}"
    );
    out.parse().expect("serde_derive generated invalid Rust")
}

/// Renders the initialiser expression of one named struct field inside a generated
/// `from_json`.  `#[serde(default)]` fields treat a missing entry (which
/// `::serde::de::field` resolves to `null`) or an explicit `null` as
/// `Default::default()`.
fn field_init(field: &Field, ty: &str, source: &str) -> String {
    let f = &field.name;
    if field.default {
        format!(
            "{f}: match ::serde::de::field({source}, \"{ty}\", \"{f}\")? {{ \
             ::serde::Json::Null => ::core::default::Default::default(), \
             __f => ::serde::Deserialize::from_json(__f)? }}"
        )
    } else {
        format!(
            "{f}: ::serde::Deserialize::from_json(::serde::de::field({source}, \"{ty}\", \"{f}\")?)?"
        )
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input, "Deserialize");
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Struct { fields } if fields.is_empty() => {
            // Unit / empty struct: serialised as `{}`; accept any node.
            format!("let _ = __v; Ok({name} {{}})")
        }
        Shape::Struct { fields } => {
            let inits: Vec<String> = fields.iter().map(|f| field_init(f, name, "__v")).collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        // Match the Serialize direction: a newtype struct is its inner value, a wider
        // tuple struct an array.
        Shape::TupleStruct { arity: 1 } => {
            format!("Ok({name}(::serde::Deserialize::from_json(__v)?))")
        }
        Shape::TupleStruct { arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Deserialize::from_json(&__items[{k}])?"))
                .collect();
            format!(
                "let __items = ::serde::de::tuple(__v, \"{name}\", {arity})?;\n        Ok({name}({}))",
                elems.join(", ")
            )
        }
        Shape::Enum { variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vname}\" => Ok({name}::{vname}(::serde::Deserialize::from_json(__val)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Deserialize::from_json(&__items[{k}])?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{ let __items = ::serde::de::tuple(__val, \"{name}::{vname}\", {n})?; Ok({name}::{vname}({})) }},",
                                elems.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let ty = format!("{name}::{vname}");
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| field_init(f, &ty, "__val"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => Ok({name}::{vname} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n            \
                 ::serde::Json::Str(__s) => match __s.as_str() {{\n                \
                 {unit}\n                \
                 __other => Err(::serde::de::unknown_variant(\"{name}\", __other)),\n            \
                 }},\n            \
                 ::serde::Json::Object(__entries) if __entries.len() == 1 => {{\n                \
                 let (__k, __val) = &__entries[0];\n                \
                 match __k.as_str() {{\n                    \
                 {data}\n                    \
                 __other => Err(::serde::de::unknown_variant(\"{name}\", __other)),\n                \
                 }}\n            \
                 }},\n            \
                 __other => Err(::serde::de::unexpected(\"{name}\", \"an enum value\", __other)),\n        \
                 }}",
                unit = unit_arms.join("\n                "),
                data = data_arms.join("\n                    "),
            )
        }
    };
    let out = format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n    \
         fn from_json(__v: &::serde::Json) -> Result<Self, ::serde::DeError> {{\n        \
         {body}\n    }}\n}}"
    );
    out.parse().expect("serde_derive generated invalid Rust")
}
