//! The versioned model registry: many models, one router, atomic hot swap.
//!
//! A [`ModelRegistry`] maps typed [`ModelKey`]s — `(schema fingerprint, name, version)`
//! — to [`ServingEstimator`]s.  Requests select a model either by exact key or by
//! "latest for this schema" ([`ModelSelector`]); the registry resolves the selector,
//! hands back a [`ModelLease`], and the lease pins that version for the duration of the
//! request.
//!
//! **Hot swap discipline (epoch/refcount drain):** [`ModelRegistry::swap`] atomically
//! publishes a new version under the registry lock — every acquire after the swap sees
//! the new version — while requests already holding a lease keep serving the old one.
//! The superseded version moves to a draining list and is **retired only when its
//! in-flight count reaches zero** (the last lease drop performs the retirement and
//! notifies [`ModelRegistry::wait_drained`] waiters).  A version with no in-flight
//! requests at swap time is retired immediately.  No request is ever dropped or served
//! by a half-installed model.

use std::collections::{BTreeMap, HashMap};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use nc_schema::Query;
use neurocard::infer::SamplerScratch;
use neurocard::{schema_fingerprint, EstimateError, EstimatorCore, Precision};

use crate::lockcheck;
use crate::model::ServingEstimator;
use crate::protocol::{ServeReply, ServeRequest};
use crate::stats::{LatencyLog, MODEL_LATENCY_WINDOW};
use crate::ServeError;

/// Identity of one published model version.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelKey {
    /// [`neurocard::schema_fingerprint`] of the join schema the model answers queries
    /// for — the routing namespace.
    pub schema_fingerprint: u64,
    /// Model name within the schema (e.g. `"neurocard"`, `"postgres"`).
    pub name: String,
    /// Monotonic version, starting at 1 and bumped by every [`ModelRegistry::swap`].
    pub version: u64,
}

impl ModelKey {
    /// Creates a key.
    pub fn new(schema_fingerprint: u64, name: impl Into<String>, version: u64) -> Self {
        ModelKey {
            schema_fingerprint,
            name: name.into(),
            version,
        }
    }
}

impl std::fmt::Display for ModelKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:016x}/{}@v{}",
            self.schema_fingerprint, self.name, self.version
        )
    }
}

/// How a request selects its model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelSelector {
    /// Exactly this version.  Requests for a superseded (or not-yet-published) version
    /// fail with [`ServeError::StaleVersion`] — a client pinning a version learns about
    /// the swap instead of silently being rerouted.
    Exact(ModelKey),
    /// The current version for a schema: of the named model, or — with `name: None` —
    /// of whichever model for that schema was published most recently.
    Latest {
        /// Schema fingerprint to route within.
        schema_fingerprint: u64,
        /// Model name, or `None` for the schema's most recently published model.
        name: Option<String>,
    },
}

impl ModelSelector {
    /// Selects the latest version of `name` under `schema_fingerprint`.
    pub fn latest(schema_fingerprint: u64, name: impl Into<String>) -> Self {
        ModelSelector::Latest {
            schema_fingerprint,
            name: Some(name.into()),
        }
    }

    /// Selects the most recently published model for a schema, whatever its name.
    pub fn latest_for_schema(schema_fingerprint: u64) -> Self {
        ModelSelector::Latest {
            schema_fingerprint,
            name: None,
        }
    }
}

impl std::fmt::Display for ModelSelector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelSelector::Exact(key) => write!(f, "{key}"),
            ModelSelector::Latest {
                schema_fingerprint,
                name: Some(name),
            } => write!(f, "{schema_fingerprint:016x}/{name}@latest"),
            ModelSelector::Latest {
                schema_fingerprint,
                name: None,
            } => write!(f, "{schema_fingerprint:016x}/*@latest"),
        }
    }
}

/// One published version: the model plus its drain bookkeeping.
struct VersionSlot {
    key: ModelKey,
    model: Arc<dyn ServingEstimator>,
    /// Leases currently pinning this version.
    inflight: AtomicU64,
    /// Set (under the registry lock) when a newer version replaced this one.
    superseded: AtomicBool,
    /// Registry-wide publish sequence number (resolves `Latest { name: None }`).
    publish_seq: u64,
}

struct Entry {
    current: Arc<VersionSlot>,
    next_version: u64,
}

struct RegistryState {
    entries: BTreeMap<(u64, String), Entry>,
    /// Superseded versions still pinned by in-flight leases.
    draining: Vec<Arc<VersionSlot>>,
    publish_seq: u64,
}

struct RegistryInner {
    state: Mutex<RegistryState>,
    /// Notified whenever a draining version retires.
    drained: Condvar,
    acquires: AtomicU64,
    swaps: AtomicU64,
    retired: AtomicU64,
    /// Per-model latency split, fed by [`ModelRegistry::handle`] (the entry point every
    /// transport routes through).  A poison-free lock: one panicking request must not
    /// take the whole stats surface down with it.
    model_stats: lockcheck::Mutex<HashMap<ModelKey, ModelLatency>>,
    /// Graceful-degradation estimator consulted when a selector matches no live
    /// model (see [`ModelRegistry::set_fallback`]).
    fallback: lockcheck::Mutex<Option<Arc<dyn ServingEstimator>>>,
    /// Requests answered by the fallback (reply flagged `degraded`).
    degraded: AtomicU64,
}

/// Per-model serving log: bounded latency ring plus the wall-clock span it covers.
struct ModelLatency {
    log: LatencyLog,
    first_serve: Instant,
    last_serve: Instant,
}

/// Per-model latency/throughput split (see [`ModelRegistry::model_stats`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelStats {
    /// The exact version the stats belong to.
    pub key: ModelKey,
    /// Requests this version served through [`ModelRegistry::handle`].
    pub served: u64,
    /// Median serve latency (µs, nearest-rank over the retained window).
    pub p50_us: f64,
    /// 99th-percentile serve latency (µs; the max below 100 samples).
    pub p99_us: f64,
    /// Served requests divided by the first-to-last serve wall-clock span.
    pub queries_per_sec: f64,
}

/// Guard over the registry state: the raw std guard (it must stay `std::sync` — the
/// drain [`Condvar`] needs it) plus the debug-build lock-order tracking token.
struct StateGuard<'a> {
    guard: MutexGuard<'a, RegistryState>,
    _held: lockcheck::Held,
}

impl Deref for StateGuard<'_> {
    type Target = RegistryState;
    fn deref(&self) -> &RegistryState {
        &self.guard
    }
}

impl DerefMut for StateGuard<'_> {
    fn deref_mut(&mut self) -> &mut RegistryState {
        &mut self.guard
    }
}

/// Recovers the registry state even if a past holder panicked: the state is a routing
/// table whose invariants hold between statements, so the std poison bit is noise here —
/// propagating it would turn one panicked request into a server-wide denial of service.
#[track_caller]
fn state_lock(inner: &RegistryInner) -> StateGuard<'_> {
    // The token is taken before blocking on the lock, so an inversion panics instead
    // of deadlocking (debug builds).
    let held = lockcheck::acquire("registry.state");
    StateGuard {
        guard: inner.state.lock().unwrap_or_else(|p| p.into_inner()),
        _held: held,
    }
}

/// Counters and gauges of a registry (see [`ModelRegistry::stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryStats {
    /// Currently published models (one current version each).
    pub models: usize,
    /// Superseded versions still draining in-flight requests.
    pub draining: usize,
    /// Total successful lease acquisitions.
    pub acquires: u64,
    /// Total completed swaps.
    pub swaps: u64,
    /// Total versions retired (dropped after their last in-flight request finished).
    pub retired: u64,
    /// Requests answered by the graceful-degradation fallback.
    pub degraded: u64,
}

/// Receipt of a completed [`ModelRegistry::swap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapReceipt {
    /// The newly published version (now the entry's current).
    pub new: ModelKey,
    /// The superseded version.
    pub old: ModelKey,
    /// Whether the old version had zero in-flight requests and was retired on the spot
    /// (`false` means it is draining and will retire at its last lease drop).
    pub old_retired_immediately: bool,
}

/// A lease pinning one model version for the duration of a request.
///
/// Dropping the lease decrements the version's in-flight count; if the version was
/// superseded meanwhile and this was its last lease, the drop retires it and wakes
/// [`ModelRegistry::wait_drained`] waiters.
pub struct ModelLease {
    slot: Arc<VersionSlot>,
    inner: Arc<RegistryInner>,
}

impl ModelLease {
    /// The key of the pinned version.
    pub fn key(&self) -> &ModelKey {
        &self.slot.key
    }

    /// The pinned model.
    pub fn model(&self) -> &dyn ServingEstimator {
        &*self.slot.model
    }

    /// Serves one query on the pinned model (`samples: None` uses the model's default).
    pub fn estimate(
        &self,
        query: &Query,
        samples: Option<usize>,
        scratch: &mut SamplerScratch,
    ) -> Result<f64, EstimateError> {
        self.estimate_with_precision(query, samples, scratch, Precision::Exact)
    }

    /// [`ModelLease::estimate`] with an explicit inference tier; models without a fast
    /// tier serve exactly regardless.
    pub fn estimate_with_precision(
        &self,
        query: &Query,
        samples: Option<usize>,
        scratch: &mut SamplerScratch,
        precision: Precision,
    ) -> Result<f64, EstimateError> {
        let samples = samples.unwrap_or_else(|| self.slot.model.default_samples());
        self.slot
            .model
            .serve_with_precision(query, samples, scratch, precision)
    }
}

impl Drop for ModelLease {
    fn drop(&mut self) {
        // The last lease of a superseded version performs the retirement: remove it
        // from the draining list (dropping the model) and wake drain waiters.  A
        // superseded slot can gain no new leases (it is unreachable from `entries`),
        // so observing 0 here is final.
        if self.slot.inflight.fetch_sub(1, Ordering::SeqCst) == 1
            && self.slot.superseded.load(Ordering::SeqCst)
        {
            let mut state = state_lock(&self.inner);
            let before = state.draining.len();
            state.draining.retain(|s| !Arc::ptr_eq(s, &self.slot));
            if state.draining.len() < before {
                self.inner.retired.fetch_add(1, Ordering::Relaxed);
            }
            drop(state);
            self.inner.drained.notify_all();
        }
    }
}

/// The versioned, hot-swappable model registry.
///
/// Cheap to clone (`Arc` inside); every transport — the in-process
/// [`crate::RegistryService`], the TCP front-end, the benches — routes through the same
/// instance via [`ModelRegistry::handle`].
#[derive(Clone)]
pub struct ModelRegistry {
    inner: Arc<RegistryInner>,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ModelRegistry {
            inner: Arc::new(RegistryInner {
                state: Mutex::new(RegistryState {
                    entries: BTreeMap::new(),
                    draining: Vec::new(),
                    publish_seq: 0,
                }),
                drained: Condvar::new(),
                acquires: AtomicU64::new(0),
                swaps: AtomicU64::new(0),
                retired: AtomicU64::new(0),
                model_stats: lockcheck::Mutex::new("registry.model_stats", HashMap::new()),
                fallback: lockcheck::Mutex::new("registry.fallback", None),
                degraded: AtomicU64::new(0),
            }),
        }
    }

    /// Installs (or replaces) the graceful-degradation estimator.
    ///
    /// With a fallback installed, [`handle`](Self::handle) answers selectors that
    /// match no live model from it instead of failing: the reply carries the
    /// fallback's name at the synthetic version `0` (a version no registered model
    /// can hold — real versions start at 1) and is flagged
    /// [`degraded`](crate::ServeReply::degraded).  Exact-version requests whose
    /// model *is* registered but superseded still fail with
    /// [`ServeError::StaleVersion`] — the model exists; the client should re-resolve.
    pub fn set_fallback(&self, estimator: Arc<dyn ServingEstimator>) {
        *self.inner.fallback.lock() = Some(estimator);
    }

    /// The installed fallback estimator, if any.
    pub fn fallback(&self) -> Option<Arc<dyn ServingEstimator>> {
        self.inner.fallback.lock().clone()
    }

    /// Registers a new model under `(schema_fingerprint, name)` as version 1.
    ///
    /// Fails with [`ServeError::AlreadyRegistered`] if the name is taken — updating an
    /// existing model is a [`ModelRegistry::swap`], not a re-register.
    pub fn register(
        &self,
        schema_fingerprint: u64,
        name: impl Into<String>,
        model: Arc<dyn ServingEstimator>,
    ) -> Result<ModelKey, ServeError> {
        let name = name.into();
        let mut state = state_lock(&self.inner);
        if let Some(entry) = state.entries.get(&(schema_fingerprint, name.clone())) {
            return Err(ServeError::AlreadyRegistered(entry.current.key.clone()));
        }
        let key = ModelKey::new(schema_fingerprint, name.clone(), 1);
        state.publish_seq += 1;
        let slot = Arc::new(VersionSlot {
            key: key.clone(),
            model,
            inflight: AtomicU64::new(0),
            superseded: AtomicBool::new(false),
            publish_seq: state.publish_seq,
        });
        state.entries.insert(
            (schema_fingerprint, name),
            Entry {
                current: slot,
                next_version: 2,
            },
        );
        Ok(key)
    }

    /// Registers a NeuroCard core under its own schema's fingerprint (computed from the
    /// core, so caller and artifact cannot disagree).
    pub fn register_core(
        &self,
        name: impl Into<String>,
        core: Arc<EstimatorCore>,
    ) -> Result<ModelKey, ServeError> {
        let fingerprint = schema_fingerprint(core.schema());
        self.register(fingerprint, name, core)
    }

    /// Atomically publishes a new version of an existing model.
    ///
    /// Acquires issued after this call resolve to the new version; leases already held
    /// keep serving the old one, which retires when the last of them drops (immediately
    /// if none are in flight).  Fails with [`ServeError::UnknownModel`] if nothing is
    /// registered under `(schema_fingerprint, name)`.
    pub fn swap(
        &self,
        schema_fingerprint: u64,
        name: &str,
        model: Arc<dyn ServingEstimator>,
    ) -> Result<SwapReceipt, ServeError> {
        let mut state = state_lock(&self.inner);
        state.publish_seq += 1;
        let publish_seq = state.publish_seq;
        let entry = state
            .entries
            .get_mut(&(schema_fingerprint, name.to_string()))
            .ok_or_else(|| {
                ServeError::UnknownModel(
                    ModelSelector::latest(schema_fingerprint, name).to_string(),
                )
            })?;
        let key = ModelKey::new(schema_fingerprint, name, entry.next_version);
        entry.next_version += 1;
        let slot = Arc::new(VersionSlot {
            key: key.clone(),
            model,
            inflight: AtomicU64::new(0),
            superseded: AtomicBool::new(false),
            publish_seq,
        });
        let old = std::mem::replace(&mut entry.current, slot);
        old.superseded.store(true, Ordering::SeqCst);
        let old_key = old.key.clone();
        // Retire-at-zero: if requests are still pinning the old version it drains; the
        // last lease drop removes it.  Otherwise it is gone right now.
        let old_retired_immediately = old.inflight.load(Ordering::SeqCst) == 0;
        if old_retired_immediately {
            self.inner.retired.fetch_add(1, Ordering::Relaxed);
        } else {
            state.draining.push(old);
        }
        drop(state);
        self.inner.swaps.fetch_add(1, Ordering::Relaxed);
        self.inner.drained.notify_all();
        Ok(SwapReceipt {
            new: key,
            old: old_key,
            old_retired_immediately,
        })
    }

    /// Register-or-swap: the convenience used by loaders that do not care whether the
    /// name already exists.  Returns the published key.
    pub fn publish(
        &self,
        schema_fingerprint: u64,
        name: &str,
        model: Arc<dyn ServingEstimator>,
    ) -> ModelKey {
        loop {
            match self.register(schema_fingerprint, name, model.clone()) {
                Ok(key) => return key,
                // The name was taken, so update it — but a concurrent `deregister`
                // may remove the entry between the failed register and the swap.
                // Retry the pair instead of panicking on that race; one of the two
                // must succeed on a quiescent name.
                Err(_) => match self.swap(schema_fingerprint, name, model.clone()) {
                    Ok(receipt) => return receipt.new,
                    Err(_) => continue,
                },
            }
        }
    }

    /// Removes a model from routing entirely.
    ///
    /// Acquires issued after this call fail with [`ServeError::UnknownModel`]; requests
    /// already holding a lease drain the removed version exactly like a swapped-out one
    /// (retired at the last lease drop, [`ModelRegistry::wait_drained`]-visible).
    /// Returns the key that was current at removal, or [`ServeError::UnknownModel`].
    pub fn deregister(&self, schema_fingerprint: u64, name: &str) -> Result<ModelKey, ServeError> {
        let mut state = state_lock(&self.inner);
        let entry = state
            .entries
            .remove(&(schema_fingerprint, name.to_string()))
            .ok_or_else(|| {
                ServeError::UnknownModel(
                    ModelSelector::latest(schema_fingerprint, name).to_string(),
                )
            })?;
        let old = entry.current;
        old.superseded.store(true, Ordering::SeqCst);
        let key = old.key.clone();
        if old.inflight.load(Ordering::SeqCst) == 0 {
            self.inner.retired.fetch_add(1, Ordering::Relaxed);
        } else {
            state.draining.push(old);
        }
        drop(state);
        self.inner.drained.notify_all();
        Ok(key)
    }

    /// Re-publishes a model at an **explicit** version — the journal-replay path, where
    /// a restarted server must come back with the exact versions clients had pinned.
    ///
    /// The entry's next swap continues from `key.version + 1`.  Fails with
    /// [`ServeError::AlreadyRegistered`] if the name is already present.
    pub fn restore(
        &self,
        key: ModelKey,
        model: Arc<dyn ServingEstimator>,
    ) -> Result<ModelKey, ServeError> {
        let mut state = state_lock(&self.inner);
        if let Some(entry) = state
            .entries
            .get(&(key.schema_fingerprint, key.name.clone()))
        {
            return Err(ServeError::AlreadyRegistered(entry.current.key.clone()));
        }
        state.publish_seq += 1;
        let slot = Arc::new(VersionSlot {
            key: key.clone(),
            model,
            inflight: AtomicU64::new(0),
            superseded: AtomicBool::new(false),
            publish_seq: state.publish_seq,
        });
        state.entries.insert(
            (key.schema_fingerprint, key.name.clone()),
            Entry {
                current: slot,
                next_version: key.version + 1,
            },
        );
        Ok(key)
    }

    /// Resolves a selector and pins the resulting version.
    pub fn acquire(&self, selector: &ModelSelector) -> Result<ModelLease, ServeError> {
        let state = state_lock(&self.inner);
        let slot = match selector {
            ModelSelector::Exact(key) => {
                let entry = state
                    .entries
                    .get(&(key.schema_fingerprint, key.name.clone()))
                    .ok_or_else(|| ServeError::UnknownModel(selector.to_string()))?;
                if entry.current.key.version != key.version {
                    return Err(ServeError::StaleVersion {
                        requested: key.clone(),
                        current: entry.current.key.clone(),
                    });
                }
                entry.current.clone()
            }
            ModelSelector::Latest {
                schema_fingerprint,
                name: Some(name),
            } => state
                .entries
                .get(&(*schema_fingerprint, name.clone()))
                .map(|e| e.current.clone())
                .ok_or_else(|| ServeError::UnknownModel(selector.to_string()))?,
            ModelSelector::Latest {
                schema_fingerprint,
                name: None,
            } => state
                .entries
                .range((*schema_fingerprint, String::new())..)
                .take_while(|((fp, _), _)| fp == schema_fingerprint)
                .map(|(_, e)| &e.current)
                .max_by_key(|slot| slot.publish_seq)
                .cloned()
                .ok_or_else(|| ServeError::UnknownModel(selector.to_string()))?,
        };
        // Incremented under the lock, so a concurrent swap either sees this lease (and
        // drains) or completes first (and this acquire resolves the new version).
        slot.inflight.fetch_add(1, Ordering::SeqCst);
        drop(state);
        self.inner.acquires.fetch_add(1, Ordering::Relaxed);
        Ok(ModelLease {
            slot,
            inner: self.inner.clone(),
        })
    }

    /// Routes one transport-independent request: resolve, pin, estimate, release.
    ///
    /// This is the single entry point the in-process service, the TCP front-end and the
    /// benches share — they differ only in how [`ServeRequest`]s reach it.
    pub fn handle(
        &self,
        request: &ServeRequest,
        scratch: &mut SamplerScratch,
    ) -> Result<ServeReply, ServeError> {
        let lease = match self.acquire(&request.selector) {
            Ok(lease) => lease,
            Err(ServeError::UnknownModel(rendered)) => {
                // Graceful degradation: no live model — answer from the stats
                // fallback if one is installed, flagged as such.
                return match self.serve_fallback(request, scratch) {
                    Some(result) => result,
                    None => Err(ServeError::UnknownModel(rendered)),
                };
            }
            Err(e) => return Err(e),
        };
        let started = Instant::now();
        let estimate = lease
            .estimate_with_precision(&request.query, request.samples, scratch, request.precision)
            .map_err(ServeError::Estimate)?;
        self.record_serve(lease.key(), started);
        Ok(ServeReply {
            key: lease.key().clone(),
            estimate,
            degraded: false,
        })
    }

    /// Answers `request` from the installed fallback estimator, if any.  The reply
    /// key carries the selector's schema fingerprint, the fallback's name, and the
    /// synthetic version `0`.  Also used by the in-process service when the queue
    /// sheds (see [`crate::RegistryHandle::try_request`]).
    pub(crate) fn serve_fallback(
        &self,
        request: &ServeRequest,
        scratch: &mut SamplerScratch,
    ) -> Option<Result<ServeReply, ServeError>> {
        let fallback = self.inner.fallback.lock().clone()?;
        let samples = request
            .samples
            .unwrap_or_else(|| fallback.default_samples());
        let schema_fingerprint = match &request.selector {
            ModelSelector::Exact(key) => key.schema_fingerprint,
            ModelSelector::Latest {
                schema_fingerprint, ..
            } => *schema_fingerprint,
        };
        let result = fallback
            .serve(&request.query, samples, scratch)
            .map_err(ServeError::Estimate)
            .map(|estimate| {
                self.inner.degraded.fetch_add(1, Ordering::Relaxed);
                ServeReply {
                    key: ModelKey::new(schema_fingerprint, fallback.name(), 0),
                    estimate,
                    degraded: true,
                }
            });
        Some(result)
    }

    /// Feeds the per-model latency split for one completed estimate.
    fn record_serve(&self, key: &ModelKey, started: Instant) {
        let now = Instant::now();
        let us = now.duration_since(started).as_secs_f64() * 1e6;
        let mut stats = self.inner.model_stats.lock();
        let entry = stats.entry(key.clone()).or_insert_with(|| ModelLatency {
            log: LatencyLog::new(MODEL_LATENCY_WINDOW),
            first_serve: started,
            last_serve: now,
        });
        entry.log.push(us);
        entry.last_serve = now;
    }

    /// Blocks until no superseded version with this key is draining (true), or the
    /// timeout passes (false).  A key that never drained returns true immediately.
    pub fn wait_drained(&self, key: &ModelKey, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        // `Condvar::wait_timeout` consumes the raw std guard, so this path manages
        // its lock-order token by hand instead of going through `state_lock`.  The
        // token stays conservatively "held" across the waits (the real lock is
        // released and reacquired by the Condvar) — this thread holds nothing else,
        // so the over-approximation can record no spurious edge.
        let _held = lockcheck::acquire("registry.state");
        let mut state = self.inner.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if !state.draining.iter().any(|s| &s.key == key) {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (next, _) = self
                .inner
                .drained
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            state = next;
        }
    }

    /// Keys of all currently published (current-version) models.
    pub fn keys(&self) -> Vec<ModelKey> {
        let state = state_lock(&self.inner);
        state
            .entries
            .values()
            .map(|e| e.current.key.clone())
            .collect()
    }

    /// The current version of `(schema_fingerprint, name)`, if registered.
    pub fn latest(&self, schema_fingerprint: u64, name: &str) -> Option<ModelKey> {
        let state = state_lock(&self.inner);
        state
            .entries
            .get(&(schema_fingerprint, name.to_string()))
            .map(|e| e.current.key.clone())
    }

    /// Keys of superseded versions still draining.
    pub fn draining_versions(&self) -> Vec<ModelKey> {
        let state = state_lock(&self.inner);
        state.draining.iter().map(|s| s.key.clone()).collect()
    }

    /// Per-model latency/throughput split over every version that served through
    /// [`ModelRegistry::handle`], sorted by key.  Retired versions keep their stats —
    /// the split is a serving history, not a routing table.
    pub fn model_stats(&self) -> Vec<ModelStats> {
        let stats = self.inner.model_stats.lock();
        let mut out: Vec<ModelStats> = stats
            .iter()
            .map(|(key, lat)| {
                let q = lat.log.quantiles();
                let span = lat.last_serve.duration_since(lat.first_serve).as_secs_f64();
                ModelStats {
                    key: key.clone(),
                    served: lat.log.total(),
                    p50_us: q.p50,
                    p99_us: q.p99,
                    // A single-sample span is ~0: report the inverse of its own latency
                    // rather than an infinite/NaN rate.
                    queries_per_sec: if span > 0.0 {
                        lat.log.total() as f64 / span
                    } else {
                        let q_us = q.p50.max(1e-3);
                        1e6 / q_us
                    },
                }
            })
            .collect();
        out.sort_by(|a, b| a.key.cmp(&b.key));
        out
    }

    /// Counters and gauges.
    pub fn stats(&self) -> RegistryStats {
        let state = state_lock(&self.inner);
        RegistryStats {
            models: state.entries.len(),
            draining: state.draining.len(),
            acquires: self.inner.acquires.load(Ordering::Relaxed),
            swaps: self.inner.swaps.load(Ordering::Relaxed),
            retired: self.inner.retired.load(Ordering::Relaxed),
            degraded: self.inner.degraded.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::BaselineModel;
    use nc_baselines::CardinalityEstimator;

    /// A zero-cost estimator whose answer encodes (version marker, sample budget) so
    /// tests can see exactly which model version served a request.
    struct Marker(f64);
    impl CardinalityEstimator for Marker {
        fn name(&self) -> &str {
            "marker"
        }
        fn estimate(&self, _query: &Query) -> f64 {
            self.0
        }
    }

    fn marker(value: f64) -> Arc<dyn ServingEstimator> {
        Arc::new(BaselineModel::new(Marker(value)))
    }

    fn q() -> Query {
        Query::join(&["t"])
    }

    #[test]
    fn register_route_and_latest_selectors() {
        let registry = ModelRegistry::new();
        let mut scratch = SamplerScratch::new();
        let k1 = registry.register(7, "a", marker(1.0)).unwrap();
        assert_eq!(k1, ModelKey::new(7, "a", 1));
        let k2 = registry.register(7, "b", marker(2.0)).unwrap();
        let k3 = registry.register(9, "a", marker(3.0)).unwrap();

        // Exact and named-latest routing.
        for (selector, want) in [
            (ModelSelector::Exact(k1.clone()), 1.0),
            (ModelSelector::latest(7, "a"), 1.0),
            (ModelSelector::latest(7, "b"), 2.0),
            (ModelSelector::Exact(k3.clone()), 3.0),
        ] {
            let lease = registry.acquire(&selector).unwrap();
            assert_eq!(lease.estimate(&q(), None, &mut scratch), Ok(want));
        }
        // Anonymous latest picks the most recently *published* model for the schema.
        let lease = registry
            .acquire(&ModelSelector::latest_for_schema(7))
            .unwrap();
        assert_eq!(lease.key(), &k2);
        drop(lease);

        // Unknown routes are typed errors.
        assert!(matches!(
            registry.acquire(&ModelSelector::latest(7, "zzz")),
            Err(ServeError::UnknownModel(_))
        ));
        assert!(matches!(
            registry.acquire(&ModelSelector::latest_for_schema(8)),
            Err(ServeError::UnknownModel(_))
        ));
        // Duplicate registration is rejected with the existing key.
        assert_eq!(
            registry.register(7, "a", marker(9.0)),
            Err(ServeError::AlreadyRegistered(k1))
        );
        let stats = registry.stats();
        assert_eq!(stats.models, 3);
        assert_eq!(stats.acquires, 5);
        assert_eq!(stats.swaps, 0);
    }

    #[test]
    fn swap_publishes_atomically_and_drains_at_zero() {
        let registry = ModelRegistry::new();
        let mut scratch = SamplerScratch::new();
        let k1 = registry.register(1, "m", marker(10.0)).unwrap();

        // Pin v1, then swap to v2 while the lease is held.
        let lease_v1 = registry.acquire(&ModelSelector::latest(1, "m")).unwrap();
        let receipt = registry.swap(1, "m", marker(20.0)).unwrap();
        assert_eq!(receipt.new, ModelKey::new(1, "m", 2));
        assert_eq!(receipt.old, k1);
        assert!(!receipt.old_retired_immediately, "v1 is pinned");
        assert_eq!(registry.draining_versions(), vec![k1.clone()]);

        // New acquires see v2; the held lease still serves v1.
        let lease_v2 = registry.acquire(&ModelSelector::latest(1, "m")).unwrap();
        assert_eq!(lease_v2.key().version, 2);
        assert_eq!(lease_v2.estimate(&q(), None, &mut scratch), Ok(20.0));
        assert_eq!(lease_v1.estimate(&q(), None, &mut scratch), Ok(10.0));

        // Exact requests for the superseded version are told about the swap.
        assert_eq!(
            registry.acquire(&ModelSelector::Exact(k1.clone())).err(),
            Some(ServeError::StaleVersion {
                requested: k1.clone(),
                current: ModelKey::new(1, "m", 2),
            })
        );

        // v1 is not drained while its lease lives...
        assert!(!registry.wait_drained(&k1, Duration::from_millis(10)));
        assert_eq!(registry.stats().retired, 0);
        // ...and retires exactly when the last lease drops.
        drop(lease_v1);
        assert!(registry.wait_drained(&k1, Duration::from_secs(5)));
        assert!(registry.draining_versions().is_empty());
        let stats = registry.stats();
        assert_eq!(stats.retired, 1);
        assert_eq!(stats.swaps, 1);

        // A swap with nothing in flight retires the old version immediately.
        drop(lease_v2);
        let receipt = registry.swap(1, "m", marker(30.0)).unwrap();
        assert!(receipt.old_retired_immediately);
        assert_eq!(receipt.new.version, 3);
        assert_eq!(registry.stats().retired, 2);
        assert!(registry.wait_drained(&receipt.old, Duration::from_millis(1)));

        // Swapping an unregistered name is an error.
        assert!(matches!(
            registry.swap(1, "ghost", marker(0.0)),
            Err(ServeError::UnknownModel(_))
        ));
        // publish() is register-or-swap.
        assert_eq!(registry.publish(1, "m", marker(40.0)).version, 4);
        assert_eq!(registry.publish(1, "fresh", marker(1.0)).version, 1);
    }

    #[test]
    fn anonymous_latest_follows_publishes_across_names() {
        let registry = ModelRegistry::new();
        registry.register(5, "a", marker(1.0)).unwrap();
        registry.register(5, "b", marker(2.0)).unwrap();
        // b was published last.
        assert_eq!(
            registry
                .acquire(&ModelSelector::latest_for_schema(5))
                .unwrap()
                .key()
                .name,
            "b"
        );
        // Swapping a re-publishes it: it becomes the schema's most recent model.
        registry.swap(5, "a", marker(3.0)).unwrap();
        let lease = registry
            .acquire(&ModelSelector::latest_for_schema(5))
            .unwrap();
        assert_eq!((lease.key().name.as_str(), lease.key().version), ("a", 2));
    }

    #[test]
    fn deregister_removes_routing_and_drains_in_flight() {
        let registry = ModelRegistry::new();
        let k1 = registry.register(3, "m", marker(1.0)).unwrap();

        // Deregistering while a lease is held drains like a swap would.
        let lease = registry.acquire(&ModelSelector::latest(3, "m")).unwrap();
        assert_eq!(registry.deregister(3, "m"), Ok(k1.clone()));
        assert!(matches!(
            registry.acquire(&ModelSelector::latest(3, "m")),
            Err(ServeError::UnknownModel(_))
        ));
        assert_eq!(registry.draining_versions(), vec![k1.clone()]);
        assert!(!registry.wait_drained(&k1, Duration::from_millis(10)));
        drop(lease);
        assert!(registry.wait_drained(&k1, Duration::from_secs(5)));
        assert_eq!(registry.stats().retired, 1);
        assert_eq!(registry.stats().models, 0);

        // Deregistering an unknown name is a typed error.
        assert!(matches!(
            registry.deregister(3, "m"),
            Err(ServeError::UnknownModel(_))
        ));

        // The name is free again: a fresh register starts at v1.
        assert_eq!(
            registry.register(3, "m", marker(2.0)).unwrap(),
            ModelKey::new(3, "m", 1)
        );
        // With no lease in flight, deregister retires immediately.
        assert_eq!(registry.deregister(3, "m").unwrap().version, 1);
        assert!(registry.draining_versions().is_empty());
        assert_eq!(registry.stats().retired, 2);
    }

    #[test]
    fn restore_preserves_versions_across_restart() {
        let registry = ModelRegistry::new();
        registry.register(4, "m", marker(1.0)).unwrap();
        let live = registry.swap(4, "m", marker(2.0)).unwrap().new;
        assert_eq!(live.version, 2);

        // "Restart": a fresh registry restored from the journal keeps v2 current...
        let restarted = ModelRegistry::new();
        assert_eq!(
            restarted.restore(live.clone(), marker(2.0)),
            Ok(live.clone())
        );
        assert_eq!(restarted.latest(4, "m"), Some(live.clone()));
        let mut scratch = SamplerScratch::new();
        let lease = restarted
            .acquire(&ModelSelector::Exact(live.clone()))
            .unwrap();
        assert_eq!(lease.estimate(&q(), None, &mut scratch), Ok(2.0));
        drop(lease);

        // ...double restore is rejected, and the next swap continues the sequence.
        assert_eq!(
            restarted.restore(live, marker(9.0)),
            Err(ServeError::AlreadyRegistered(ModelKey::new(4, "m", 2)))
        );
        assert_eq!(restarted.swap(4, "m", marker(3.0)).unwrap().new.version, 3);
    }

    #[test]
    fn model_stats_split_by_version() {
        let registry = ModelRegistry::new();
        let mut scratch = SamplerScratch::new();
        registry.register(6, "m", marker(1.0)).unwrap();
        let request = ServeRequest::new(ModelSelector::latest(6, "m"), q());
        for _ in 0..3 {
            registry.handle(&request, &mut scratch).unwrap();
        }
        registry.swap(6, "m", marker(2.0)).unwrap();
        registry.handle(&request, &mut scratch).unwrap();

        let stats = registry.model_stats();
        assert_eq!(stats.len(), 2, "retired versions keep their history");
        assert_eq!(stats[0].key, ModelKey::new(6, "m", 1));
        assert_eq!(stats[0].served, 3);
        assert_eq!(stats[1].key, ModelKey::new(6, "m", 2));
        assert_eq!(stats[1].served, 1);
        for s in &stats {
            assert!(s.p50_us >= 0.0 && s.p99_us >= s.p50_us);
            assert!(s.queries_per_sec.is_finite() && s.queries_per_sec > 0.0);
        }
        // Acquire-only paths (no handle) record nothing.
        drop(registry.acquire(&ModelSelector::latest(6, "m")).unwrap());
        assert_eq!(registry.model_stats()[1].served, 1);
    }

    #[test]
    fn keys_and_display_render() {
        let registry = ModelRegistry::new();
        let key = registry.register(0xabcd, "m", marker(1.0)).unwrap();
        assert_eq!(key.to_string(), "000000000000abcd/m@v1");
        assert_eq!(
            ModelSelector::latest(0xabcd, "m").to_string(),
            "000000000000abcd/m@latest"
        );
        assert_eq!(
            ModelSelector::latest_for_schema(0xabcd).to_string(),
            "000000000000abcd/*@latest"
        );
        assert_eq!(registry.keys(), vec![key.clone()]);
        assert_eq!(registry.latest(0xabcd, "m"), Some(key));
        assert_eq!(registry.latest(0xabcd, "nope"), None);
    }
}
