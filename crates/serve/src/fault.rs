//! Seeded, deterministic fault injection for the serving tier.
//!
//! Chaos testing is only useful when a failing run can be replayed: every decision
//! this module makes is a pure function of `(plan seed, point name, hit index)`, via
//! the same SplitMix64 derivation the sampler uses for its RNG streams
//! ([`nc_sampler::seed`]).  Run the serving tier twice under the same [`FaultPlan`]
//! and the same workload, and every fault point fires on the same traversal indices —
//! the injected failures, torn-write lengths and stall durations are bit-identical.
//!
//! A **fault point** is a named site in the serving code (`"journal.fsync-error"`,
//! `"worker.panic"`, ...) that consults its [`FaultInjector`] before doing the real
//! work.  Each point keeps two counters: `hits` (traversals) and `fired` (injected
//! faults), exposed by [`FaultInjector::counts`] so tests can pin exact replay.
//! Only points *named in the plan* are counted — an unconfigured point is a no-op
//! that does not perturb the counters of configured ones.
//!
//! Like [`lockcheck`](crate::lockcheck), the hooks exist only in builds with
//! `debug_assertions` (which includes every `cargo test` run — the workspace test
//! profile keeps them on).  Release builds compile every probe down to nothing:
//! [`FaultInjector`] is a ZST, `fires`/`fail`/`delay` return their "no fault"
//! answers unconditionally.  The one exception is [`FaultInjector::sleep`], the
//! injectable clock used by client backoff — real code needs real sleeping in
//! release builds too, so it always sleeps (tests shrink the durations instead).
//!
//! The catalogue of fault points wired through the serving tier lives in
//! `docs/faults.md`.

use std::time::Duration;

/// SplitMix64 output mix (Stafford Mix13) — the same finalizer as
/// `nc_sampler::seed::splitmix64_mix`, re-exported here so fault decisions and
/// sampler streams share one mixing discipline.
pub use nc_sampler::seed::{splitmix64_mix, GOLDEN_GAMMA};

/// Configuration of one fault point: how often it fires and, for stall-type
/// points, how long the injected delay lasts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPoint {
    /// The point's name (`"<area>.<fault>"`, e.g. `"journal.torn-write"`).
    pub name: &'static str,
    /// Fire probability in 1/1000ths (0 = never, 1000 = every traversal).
    pub rate_per_mille: u32,
    /// Injected stall duration for delay-type points (ignored by the others).
    pub delay: Duration,
}

/// A deterministic fault schedule: a root seed plus the set of points it arms.
///
/// The plan itself is plain data and always compiled; whether its faults can
/// actually fire depends on the build (see [`FaultInjector::compiled_in`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Root seed; every point derives an independent decision stream from it.
    pub seed: u64,
    /// The armed points.  A point not listed here never fires and is not counted.
    pub points: Vec<FaultPoint>,
}

impl FaultPlan {
    /// An empty plan rooted at `seed`: arms nothing until [`point`](Self::point)
    /// is called.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            points: Vec::new(),
        }
    }

    /// Arms `name` to fire on `rate_per_mille`/1000 of traversals.
    pub fn point(mut self, name: &'static str, rate_per_mille: u32) -> Self {
        self.points.push(FaultPoint {
            name,
            rate_per_mille,
            delay: Duration::ZERO,
        });
        self
    }

    /// Arms a stall-type point: on firing traversals the serving code sleeps
    /// `delay` before proceeding.
    pub fn point_with_delay(
        mut self,
        name: &'static str,
        rate_per_mille: u32,
        delay: Duration,
    ) -> Self {
        self.points.push(FaultPoint {
            name,
            rate_per_mille,
            delay,
        });
        self
    }

    /// The canonical all-subsystems chaos plan used by `neurocard-serve
    /// --chaos-seed` and the chaos bench: moderate fault rates at every server-side
    /// point.  Client-side points (`client.*`) are armed by the client's own
    /// injector, not this one.
    pub fn chaos(seed: u64) -> Self {
        FaultPlan::new(seed)
            .point("journal.torn-write", 100)
            .point("journal.write-error", 100)
            .point("journal.fsync-error", 100)
            .point("worker.panic", 40)
            .point_with_delay("worker.delay", 60, Duration::from_millis(2))
            .point("reactor.partial-read", 200)
            .point("reactor.partial-write", 200)
            .point("pipeline.retrain-fail", 100)
            .point("pipeline.shadow-drop", 100)
    }

    /// Builds the runtime injector for this plan.
    pub fn injector(&self) -> FaultInjector {
        FaultInjector::from_plan(self)
    }
}

/// Snapshot of one fault point's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultCount {
    /// The point's name.
    pub point: &'static str,
    /// Traversals of the point (whether or not a fault was injected).
    pub hits: u64,
    /// Traversals on which a fault actually fired.
    pub fired: u64,
}

#[cfg(debug_assertions)]
mod imp {
    use super::{splitmix64_mix, FaultCount, FaultPlan, GOLDEN_GAMMA};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    /// One armed point at runtime: its spec, its decision-stream seed, and its
    /// counters.  The list is immutable after construction; only the atomics move.
    struct PointRuntime {
        name: &'static str,
        rate_per_mille: u32,
        delay: Duration,
        point_seed: u64,
        hits: AtomicU64,
        fired: AtomicU64,
    }

    pub struct Inner {
        points: Vec<PointRuntime>,
    }

    /// Mixes a point name into a u64 the same way the sampler folds seed
    /// components: avalanche after every absorbed byte.
    fn name_code(name: &str) -> u64 {
        name.bytes().fold(0u64, |h, b| {
            splitmix64_mix(h ^ u64::from(b).wrapping_add(GOLDEN_GAMMA))
        })
    }

    impl Inner {
        pub fn from_plan(plan: &FaultPlan) -> Inner {
            let points = plan
                .points
                .iter()
                .map(|p| PointRuntime {
                    name: p.name,
                    rate_per_mille: p.rate_per_mille,
                    delay: p.delay,
                    point_seed: splitmix64_mix(
                        splitmix64_mix(plan.seed.wrapping_add(GOLDEN_GAMMA)) ^ name_code(p.name),
                    ),
                    hits: AtomicU64::new(0),
                    fired: AtomicU64::new(0),
                })
                .collect();
            Inner { points }
        }

        /// Registers a traversal of `point` and returns the fault draw if this
        /// traversal fires: a full-entropy u64 that callers derive torn lengths
        /// etc. from.  Unarmed points return `None` without touching any counter.
        pub fn draw(&self, point: &'static str) -> Option<u64> {
            let p = self.points.iter().find(|p| p.name == point)?;
            let hit = p.hits.fetch_add(1, Ordering::Relaxed);
            let draw = splitmix64_mix(p.point_seed ^ hit.wrapping_add(GOLDEN_GAMMA));
            if draw % 1000 < u64::from(p.rate_per_mille) {
                p.fired.fetch_add(1, Ordering::Relaxed);
                Some(splitmix64_mix(draw))
            } else {
                None
            }
        }

        pub fn delay_of(&self, point: &'static str) -> Duration {
            self.points
                .iter()
                .find(|p| p.name == point)
                .map(|p| p.delay)
                .unwrap_or(Duration::ZERO)
        }

        pub fn counts(&self) -> Vec<FaultCount> {
            self.points
                .iter()
                .map(|p| FaultCount {
                    point: p.name,
                    hits: p.hits.load(Ordering::Relaxed),
                    fired: p.fired.load(Ordering::Relaxed),
                })
                .collect()
        }
    }
}

/// The runtime fault oracle threaded through the serving tier.
///
/// Cheap to clone (an `Arc` in debug builds, a ZST in release builds) and safe to
/// consult from any thread.  The default value is disabled: every probe answers
/// "no fault".
#[derive(Clone, Default)]
pub struct FaultInjector {
    #[cfg(debug_assertions)]
    inner: Option<std::sync::Arc<imp::Inner>>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl FaultInjector {
    /// The inert injector: no point ever fires, nothing is counted.
    pub fn disabled() -> Self {
        FaultInjector::default()
    }

    /// Builds the injector for `plan`.  In release builds the plan is accepted and
    /// ignored — see [`compiled_in`](Self::compiled_in).
    pub fn from_plan(plan: &FaultPlan) -> Self {
        #[cfg(debug_assertions)]
        {
            FaultInjector {
                inner: Some(std::sync::Arc::new(imp::Inner::from_plan(plan))),
            }
        }
        #[cfg(not(debug_assertions))]
        {
            let _ = plan;
            FaultInjector {}
        }
    }

    /// Whether this build can inject faults at all.  `false` in release builds,
    /// where every probe is compiled down to its "no fault" answer.
    pub const fn compiled_in() -> bool {
        cfg!(debug_assertions)
    }

    /// Whether this injector carries an armed plan (always `false` in release
    /// builds).
    pub fn enabled(&self) -> bool {
        #[cfg(debug_assertions)]
        {
            self.inner.is_some()
        }
        #[cfg(not(debug_assertions))]
        {
            false
        }
    }

    /// Registers a traversal of `point` and returns the fault draw if it fires.
    /// The draw is a full-entropy deterministic u64 — derive secondary decisions
    /// (torn lengths, ...) from it rather than consulting the injector again.
    pub fn draw(&self, point: &'static str) -> Option<u64> {
        #[cfg(debug_assertions)]
        {
            self.inner.as_ref()?.draw(point)
        }
        #[cfg(not(debug_assertions))]
        {
            let _ = point;
            None
        }
    }

    /// Traversal probe: does `point` fire this time?
    pub fn fires(&self, point: &'static str) -> bool {
        self.draw(point).is_some()
    }

    /// Error-type probe: `Some(message)` when `point` fires, for sites that turn
    /// the fault into an `Err`.
    pub fn fail(&self, point: &'static str) -> Option<String> {
        self.draw(point).map(|_| format!("injected fault: {point}"))
    }

    /// Torn-write probe: when `point` fires, the deterministic number of bytes
    /// (strictly less than `len`) that "made it to disk / the wire" before the
    /// tear.  `None` when the point does not fire or `len` is zero.
    pub fn torn_len(&self, point: &'static str, len: usize) -> Option<usize> {
        if len == 0 {
            return None;
        }
        self.draw(point).map(|d| (d as usize) % len)
    }

    /// Stall probe: when `point` fires, sleeps the point's configured delay.
    /// Returns whether it fired.
    pub fn stall(&self, point: &'static str) -> bool {
        #[cfg(debug_assertions)]
        {
            if self.draw(point).is_some() {
                if let Some(inner) = self.inner.as_ref() {
                    let delay = inner.delay_of(point);
                    if !delay.is_zero() {
                        self.sleep(delay);
                    }
                }
                return true;
            }
            false
        }
        #[cfg(not(debug_assertions))]
        {
            let _ = point;
            false
        }
    }

    /// Panic probe: when `point` fires, panics with a recognisable message — for
    /// exercising `catch_unwind` recovery in the worker pool.
    pub fn maybe_panic(&self, point: &'static str) {
        if self.fires(point) {
            // nc-lint: allow(panic-in-serving) — the panic IS the injected fault;
            // every call site sits inside the worker pool's catch_unwind boundary,
            // and release builds compile the probe away.
            panic!("injected fault: {point}");
        }
    }

    /// The injectable clock: all real sleeping in serving-tier lib code funnels
    /// through here (enforced by the `sleep-in-serving` lint), so stalls and
    /// backoff stay attributable to one site.  Always sleeps for real — release
    /// builds need working backoff; tests keep durations tiny instead.
    pub fn sleep(&self, dur: Duration) {
        if dur.is_zero() {
            return;
        }
        // nc-lint: allow(sleep-in-serving) — this is the injectable clock itself;
        // the lint exists to force every other serving-tier sleep through it.
        std::thread::sleep(dur);
    }

    /// Counter snapshot for every armed point, in plan order.  Empty when
    /// disabled or in release builds.
    pub fn counts(&self) -> Vec<FaultCount> {
        #[cfg(debug_assertions)]
        {
            self.inner.as_ref().map(|i| i.counts()).unwrap_or_default()
        }
        #[cfg(not(debug_assertions))]
        {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_is_inert() {
        let f = FaultInjector::disabled();
        assert!(!f.enabled());
        for _ in 0..100 {
            assert!(!f.fires("journal.torn-write"));
            assert!(f.fail("journal.write-error").is_none());
            assert!(f.torn_len("journal.torn-write", 64).is_none());
            assert!(!f.stall("worker.delay"));
            f.maybe_panic("worker.panic");
        }
        assert!(f.counts().is_empty());
    }

    #[cfg(debug_assertions)]
    #[test]
    fn same_seed_replays_bit_identically() {
        let plan = FaultPlan::new(42)
            .point("a.x", 250)
            .point("b.y", 500)
            .point("c.z", 0);
        let run = |plan: &FaultPlan| {
            let f = plan.injector();
            let mut trace = Vec::new();
            for i in 0..400u32 {
                // Interleave points so per-point streams must be independent.
                trace.push(("a.x", f.draw("a.x")));
                if i % 3 == 0 {
                    trace.push(("b.y", f.draw("b.y")));
                }
                trace.push(("c.z", f.draw("c.z")));
            }
            (trace, f.counts())
        };
        let (t1, c1) = run(&plan);
        let (t2, c2) = run(&plan);
        assert_eq!(t1, t2, "fault draws must replay bit-identically");
        assert_eq!(c1, c2, "counters must replay identically");
        // Rates are honoured roughly, and hits count every traversal.
        let by_name =
            |cs: &[FaultCount], n: &str| cs.iter().find(|c| c.point == n).cloned().unwrap();
        assert_eq!(by_name(&c1, "a.x").hits, 400);
        assert_eq!(by_name(&c1, "c.z").fired, 0);
        let ax = by_name(&c1, "a.x").fired;
        assert!((50..200).contains(&ax), "rate 250/1000 over 400 hits: {ax}");
        // A different seed gives a different schedule.
        let (t3, _) = run(&FaultPlan::new(43)
            .point("a.x", 250)
            .point("b.y", 500)
            .point("c.z", 0));
        assert_ne!(t1, t3);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn unarmed_points_do_not_perturb_armed_streams() {
        let plan = FaultPlan::new(7).point("armed.p", 300);
        let f1 = plan.injector();
        let f2 = plan.injector();
        let mut d1 = Vec::new();
        let mut d2 = Vec::new();
        for _ in 0..200 {
            d1.push(f1.draw("armed.p"));
            // f2 traverses an unarmed point between armed hits.
            assert!(f2.draw("unarmed.q").is_none());
            d2.push(f2.draw("armed.p"));
        }
        assert_eq!(d1, d2);
        assert_eq!(f1.counts(), f2.counts(), "unarmed points are not counted");
        assert_eq!(f1.counts().len(), 1);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn torn_len_is_strictly_shorter_and_deterministic() {
        let plan = FaultPlan::new(9).point("t.w", 1000);
        let f = plan.injector();
        let lens: Vec<usize> = (0..64).map(|_| f.torn_len("t.w", 40).unwrap()).collect();
        assert!(lens.iter().all(|&l| l < 40));
        assert!(lens.iter().any(|&l| l > 0), "tears should vary");
        let f2 = plan.injector();
        let lens2: Vec<usize> = (0..64).map(|_| f2.torn_len("t.w", 40).unwrap()).collect();
        assert_eq!(lens, lens2);
        assert!(
            f.torn_len("t.w", 0).is_none(),
            "zero-length writes cannot tear"
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    fn maybe_panic_fires_with_recognisable_message() {
        let f = FaultPlan::new(1).point("w.p", 1000).injector();
        let err =
            std::panic::catch_unwind(|| f.maybe_panic("w.p")).expect_err("rate 1000 must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| String::from("<non-string>"));
        assert!(msg.contains("injected fault: w.p"), "got: {msg}");
    }

    #[test]
    fn chaos_plan_arms_the_documented_points() {
        let plan = FaultPlan::chaos(0xC0FFEE);
        let names: Vec<&str> = plan.points.iter().map(|p| p.name).collect();
        for expected in [
            "journal.torn-write",
            "journal.write-error",
            "journal.fsync-error",
            "worker.panic",
            "worker.delay",
            "reactor.partial-read",
            "reactor.partial-write",
            "pipeline.retrain-fail",
            "pipeline.shadow-drop",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }
}
