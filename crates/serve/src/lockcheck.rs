//! Runtime lock-order checking: the dynamic twin of nc-lint's static `lock-order`
//! pass.
//!
//! Debug builds (which includes every `cargo test` run — the workspace test profile
//! keeps `debug_assertions` on) record, per thread, the stack of named locks
//! currently held.  Every acquisition of lock `B` while `A` is held registers the
//! edge `A → B` in a process-global order graph, tagged with both acquisition sites.
//! If the *reverse* edge is already on record — some thread somewhere acquired `A`
//! while holding `B` — the acquire panics immediately, before blocking on the real
//! lock, printing all four sites.  Like kernel lockdep, this flags an inversion the
//! first time both orders are *observed*, not only on the unlucky interleaving that
//! actually deadlocks.
//!
//! Release builds compile all of it to nothing: [`Held`] is a ZST, [`acquire`]
//! returns it without a single instruction of bookkeeping, and [`Mutex`] is a
//! transparent wrapper over the `parking_lot` shim.
//!
//! Two entry points:
//! - [`Mutex`] — a *named* mutex; use it wherever the serving tier would use the
//!   `parking_lot` shim directly.
//! - [`acquire`] — a bare tracking token for locks that cannot be wrapped (the
//!   registry's state mutex must stay `std::sync::Mutex` because a `Condvar` needs
//!   the raw guard).  Acquire the token immediately *before* taking the real lock
//!   and keep it alive exactly as long as the guard.
//!
//! Naming convention: `"<area>.<field>"`, e.g. `"registry.state"`,
//! `"service.latencies"`.  Names are the lock's identity — two `Mutex`es sharing a
//! name are one node in the order graph.

use std::ops::{Deref, DerefMut};

#[cfg(debug_assertions)]
mod imp {
    use std::collections::HashMap;
    use std::panic::Location;
    use std::sync::{Mutex as StdMutex, OnceLock};

    /// Both directions of every observed edge: (held, acquired) → (site holding,
    /// site acquiring).
    fn edges() -> &'static StdMutex<HashMap<(&'static str, &'static str), (String, String)>> {
        static EDGES: OnceLock<StdMutex<HashMap<(&'static str, &'static str), (String, String)>>> =
            OnceLock::new();
        EDGES.get_or_init(|| StdMutex::new(HashMap::new()))
    }

    std::thread_local! {
        /// Locks this thread currently holds, in acquisition order, with sites.
        static HELD: std::cell::RefCell<Vec<(&'static str, String)>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }

    /// Records an acquisition about to happen; panics on a known-inverted order.
    pub fn note_acquire(name: &'static str, site: &Location<'_>) {
        let site = format!("{}:{}", site.file(), site.line());
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            for (h, h_site) in held.iter() {
                if *h == name {
                    // Same name twice on one thread: either a reentrant bug the real
                    // lock will expose, or two instances of one shape — not ordering.
                    continue;
                }
                let mut edges = edges().lock().unwrap_or_else(|p| p.into_inner());
                if let Some((rev_held, rev_acq)) = edges.get(&(name, *h)) {
                    let msg = format!(
                        "lock-order inversion: acquiring \"{name}\" (at {site}) while \
                         holding \"{h}\" (at {h_site}), but the opposite order is on \
                         record: \"{h}\" (at {rev_acq}) was acquired while holding \
                         \"{name}\" (at {rev_held}). Two threads running these paths \
                         concurrently deadlock."
                    );
                    drop(edges);
                    // nc-lint: allow(panic-in-serving) — debug-assertions-only deadlock
                    // detector; aborting the test run loudly IS the feature, and release
                    // builds compile this module away.
                    panic!("{msg}");
                }
                edges
                    .entry((*h, name))
                    .or_insert_with(|| (h_site.clone(), site.clone()));
            }
            held.push((name, site));
        });
    }

    /// Records the matching release (guards drop in any order; remove the newest
    /// entry for `name`).
    pub fn note_release(name: &'static str) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(i) = held.iter().rposition(|(h, _)| *h == name) {
                held.remove(i);
            }
        });
    }
}

/// A token proving a named acquisition is being tracked.  Hold it exactly as long
/// as the real guard; dropping it records the release.
#[must_use = "dropping the token immediately unregisters the acquisition"]
pub struct Held {
    #[cfg(debug_assertions)]
    name: &'static str,
}

/// Registers an acquisition of the lock named `name` and returns its tracking
/// token.  Call immediately before taking the real lock.  Panics (debug builds
/// only) when the acquisition inverts a previously observed order.
#[track_caller]
pub fn acquire(name: &'static str) -> Held {
    #[cfg(debug_assertions)]
    {
        imp::note_acquire(name, std::panic::Location::caller());
        Held { name }
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = name;
        Held {}
    }
}

impl Drop for Held {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        imp::note_release(self.name);
    }
}

/// A named mutex: the `parking_lot` shim plus debug-build lock-order tracking.
pub struct Mutex<T> {
    name: &'static str,
    inner: parking_lot::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates the mutex.  `name` is its identity in the order graph — reuse a name
    /// only for locks that are genuinely interchangeable instances of one shape.
    pub const fn new(name: &'static str, value: T) -> Self {
        Mutex {
            name,
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// Acquires the lock, recording the acquisition first (so an inversion panics
    /// before it can deadlock).
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let held = acquire(self.name);
        MutexGuard {
            guard: self.inner.lock(),
            _held: held,
        }
    }

    /// Mutable access without locking (callers with `&mut` hold exclusivity
    /// statically — no ordering to track).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

/// Guard for [`Mutex`]; releases the order-graph entry together with the lock.
pub struct MutexGuard<'a, T> {
    guard: parking_lot::MutexGuard<'a, T>,
    _held: Held,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_protects_and_releases() {
        let m = Mutex::new("lockcheck-test.basic", 1u32);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn consistent_nesting_is_fine() {
        let a = Mutex::new("lockcheck-test.outer", ());
        let b = Mutex::new("lockcheck-test.inner", ());
        for _ in 0..2 {
            let _ga = a.lock();
            let _gb = b.lock();
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    fn inversion_panics_with_both_sites() {
        let a = Mutex::new("lockcheck-test.a", ());
        let b = Mutex::new("lockcheck-test.b", ());
        {
            // Establish a → b.
            let _ga = a.lock();
            let _gb = b.lock();
        }
        // Now the reverse order must be caught even single-threaded.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _gb = b.lock();
            let _ga = a.lock();
        }))
        .expect_err("inverted acquisition order must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| String::from("<non-string panic>"));
        assert!(msg.contains("lock-order inversion"), "got: {msg}");
        assert!(msg.contains("lockcheck-test.a"), "got: {msg}");
        assert!(msg.contains("lockcheck-test.b"), "got: {msg}");
        // Both acquisition sites are in this file.
        assert!(msg.contains("lockcheck.rs"), "got: {msg}");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn raw_tokens_track_unwrappable_locks() {
        let std_lock = std::sync::Mutex::new(());
        {
            let _t1 = acquire("lockcheck-test.raw1");
            let _g = std_lock.lock().unwrap_or_else(|p| p.into_inner());
            let _t2 = acquire("lockcheck-test.raw2");
        }
        let err = std::panic::catch_unwind(|| {
            let _t2 = acquire("lockcheck-test.raw2");
            let _t1 = acquire("lockcheck-test.raw1");
        })
        .expect_err("inverted token order must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| String::from("<non-string panic>"));
        assert!(msg.contains("lockcheck-test.raw1"), "got: {msg}");
    }

    #[test]
    fn release_order_need_not_mirror_acquisition() {
        let a = Mutex::new("lockcheck-test.rel-a", ());
        let b = Mutex::new("lockcheck-test.rel-b", ());
        let ga = a.lock();
        let gb = b.lock();
        drop(ga);
        drop(gb);
        // And the consistent order still works afterwards.
        let _ga = a.lock();
        let _gb = b.lock();
    }
}
