//! Latency accounting shared by every serving surface: a bounded ring of recent
//! request latencies plus **nearest-rank** quantile estimation.
//!
//! One implementation, used by the service-wide stats, the per-model registry stats and
//! the bench binaries — so the small-window quantile semantics are fixed in exactly one
//! place: the nearest-rank p99 over fewer than 100 samples is the **maximum** (there is
//! no 99th distinct rank yet), and a single sample is every quantile of itself.

/// How many of the most recent request latencies back the service-wide p50/p99
/// estimates.
pub const LATENCY_WINDOW: usize = 1 << 16;

/// How many of the most recent request latencies back each per-model quantile split
/// (smaller than [`LATENCY_WINDOW`]: a registry may serve many models).
pub const MODEL_LATENCY_WINDOW: usize = 1 << 12;

/// Nearest-rank quantile of an ascending-sorted, non-empty sample: the smallest value
/// whose rank is at least `q * n`.
///
/// This is the textbook definition (rank `ceil(q * n)`, 1-based), which a previous
/// round-to-nearest-index implementation got wrong at small windows: p99 over 99
/// samples picked the third-largest value instead of the max, and p50 over 2 samples
/// picked the larger instead of the smaller.
pub fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of an empty sample");
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Summary quantiles of one latency sample (microseconds in this crate's usage, but
/// unit-agnostic).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantiles {
    /// Median (nearest-rank p50).
    pub p50: f64,
    /// Nearest-rank p99 (the max when fewer than 100 samples exist).
    pub p99: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Quantiles {
    /// All-zero quantiles (the empty-sample summary).
    pub const ZERO: Quantiles = Quantiles {
        p50: 0.0,
        p99: 0.0,
        max: 0.0,
        mean: 0.0,
    };

    /// Summarises a sample (order irrelevant; a stray NaN sorts to the end via IEEE
    /// total order instead of panicking the stats path).
    pub fn of(mut samples: Vec<f64>) -> Quantiles {
        if samples.is_empty() {
            return Quantiles::ZERO;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        Quantiles {
            p50: nearest_rank(&samples, 0.50),
            p99: nearest_rank(&samples, 0.99),
            max: samples.last().copied().unwrap_or(0.0),
            mean: samples.iter().sum::<f64>() / samples.len() as f64,
        }
    }
}

/// Bounded per-request latency log: an exact served counter plus a ring of the most
/// recent `window` latencies for quantile estimation — a long-lived service must not
/// grow memory per request.
#[derive(Debug)]
pub struct LatencyLog {
    total: u64,
    ring: Vec<f64>,
    next: usize,
    window: usize,
}

impl LatencyLog {
    /// An empty log keeping at most `window` recent samples.
    pub fn new(window: usize) -> Self {
        LatencyLog {
            total: 0,
            ring: Vec::new(),
            next: 0,
            window: window.max(1),
        }
    }

    /// Records one latency.
    pub fn push(&mut self, v: f64) {
        self.total += 1;
        if self.ring.len() < self.window {
            self.ring.push(v);
        } else {
            self.ring[self.next] = v;
            self.next = (self.next + 1) % self.window;
        }
    }

    /// Exact number of samples ever recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The retained window, unordered.
    pub fn window_samples(&self) -> Vec<f64> {
        self.ring.clone()
    }

    /// Quantiles over the retained window.
    pub fn quantiles(&self) -> Quantiles {
        Quantiles::of(self.ring.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_of(n: usize) -> LatencyLog {
        // Values 1..=n in scrambled insert order: quantiles must not depend on it.
        let mut log = LatencyLog::new(LATENCY_WINDOW);
        for i in 0..n {
            log.push(((i * 7) % n + 1) as f64);
        }
        log
    }

    /// The satellite contract: windows of size 1, 2, 99 and `LATENCY_WINDOW`.
    #[test]
    fn nearest_rank_window_1() {
        let q = log_of(1).quantiles();
        // One sample is every quantile of itself — and must not index out of range or
        // collapse to 0.0.
        assert_eq!((q.p50, q.p99, q.max, q.mean), (1.0, 1.0, 1.0, 1.0));
    }

    #[test]
    fn nearest_rank_window_2() {
        let q = log_of(2).quantiles();
        // Nearest rank of p50 over {1, 2} is the *first* value (rank ceil(0.5·2) = 1).
        assert_eq!(q.p50, 1.0);
        // p99 with fewer than 100 samples is the max.
        assert_eq!(q.p99, 2.0);
        assert_eq!(q.max, 2.0);
        assert_eq!(q.mean, 1.5);
    }

    #[test]
    fn nearest_rank_window_99() {
        let q = log_of(99).quantiles();
        assert_eq!(q.p50, 50.0); // rank ceil(0.5·99) = 50
                                 // There is no 99th distinct percentile rank below the max yet: p99 = max.
        assert_eq!(q.p99, 99.0);
        assert_eq!(q.max, 99.0);
    }

    #[test]
    fn nearest_rank_full_window() {
        let q = log_of(LATENCY_WINDOW).quantiles();
        let n = LATENCY_WINDOW as f64;
        assert_eq!(q.p50, (n / 2.0).ceil());
        assert_eq!(q.p99, (0.99 * n).ceil());
        assert_eq!(q.max, n);
    }

    #[test]
    fn ring_is_bounded_and_keeps_the_most_recent() {
        let mut log = LatencyLog::new(LATENCY_WINDOW);
        for i in 0..(LATENCY_WINDOW + 500) {
            log.push(i as f64);
        }
        assert_eq!(log.total(), (LATENCY_WINDOW + 500) as u64);
        let window = log.window_samples();
        assert_eq!(window.len(), LATENCY_WINDOW);
        // The oldest 500 samples were overwritten.
        assert!(window.iter().all(|&v| v >= 500.0));
    }

    #[test]
    fn empty_quantiles_are_zero() {
        assert_eq!(LatencyLog::new(16).quantiles(), Quantiles::ZERO);
        assert_eq!(Quantiles::of(Vec::new()), Quantiles::ZERO);
    }
}
